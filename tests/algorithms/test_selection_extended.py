"""Tests for random-access-aware and cost-model-aware selection."""


from repro.access.cost import CostModel
from repro.algorithms.disjunction import DisjunctionB0
from repro.algorithms.naive import NaiveAlgorithm
from repro.algorithms.nra import NoRandomAccessAlgorithm
from repro.algorithms.selection import choose_algorithm
from repro.core.aggregation import FunctionAggregation
from repro.core.means import ARITHMETIC_MEAN
from repro.core.tconorms import MAXIMUM
from repro.core.tnorms import MINIMUM


class TestNoRandomAccessSelection:
    def test_monotone_goes_to_nra(self):
        choice = choose_algorithm(MINIMUM, 2, random_access=False)
        assert isinstance(choice.algorithm, NoRandomAccessAlgorithm)
        assert "random access" in choice.reason

    def test_max_still_goes_to_b0(self):
        """B0 is sorted-only already — no downgrade needed."""
        choice = choose_algorithm(MAXIMUM, 2, random_access=False)
        assert isinstance(choice.algorithm, DisjunctionB0)

    def test_non_monotone_goes_to_naive(self):
        bad = FunctionAggregation(lambda *g: 0.5, "flat", monotone=False)
        choice = choose_algorithm(bad, 2, random_access=False)
        assert isinstance(choice.algorithm, NaiveAlgorithm)


class TestCostModelSelection:
    def test_expensive_random_access_prefers_nra(self):
        model = CostModel(sorted_weight=1.0, random_weight=50.0)
        choice = choose_algorithm(MINIMUM, 2, cost_model=model)
        assert isinstance(choice.algorithm, NoRandomAccessAlgorithm)
        assert "c2/c1" in choice.reason

    def test_cheap_random_access_keeps_a0_prime(self):
        model = CostModel(sorted_weight=1.0, random_weight=2.0)
        choice = choose_algorithm(MINIMUM, 2, cost_model=model)
        assert choice.name == "A0-prime"

    def test_threshold_boundary(self):
        at = CostModel(sorted_weight=1.0, random_weight=10.0)
        below = CostModel(sorted_weight=1.0, random_weight=9.99)
        assert choose_algorithm(MINIMUM, 2, cost_model=at).name == "NRA"
        assert (
            choose_algorithm(MINIMUM, 2, cost_model=below).name == "A0-prime"
        )

    def test_applies_to_any_monotone(self):
        model = CostModel(sorted_weight=1.0, random_weight=100.0)
        choice = choose_algorithm(ARITHMETIC_MEAN, 3, cost_model=model)
        assert choice.name == "NRA"

    def test_weighted_cost_actually_favours_nra(self):
        """The heuristic is backed by measurement: at c2 = 50*c1 NRA's
        weighted middleware cost beats A0's on the standard workload."""
        from repro.algorithms.fa import FaginA0
        from repro.workloads.skeletons import independent_database

        model = CostModel(sorted_weight=1.0, random_weight=50.0)
        db = independent_database(2, 1000, seed=3)
        nra = NoRandomAccessAlgorithm().top_k(db.session(), MINIMUM, 10)
        fa = FaginA0().top_k(db.session(), MINIMUM, 10)
        assert nra.stats.middleware_cost(model) < fa.stats.middleware_cost(
            model
        )


class TestPlannerIntegration:
    def _catalog(self, stream_only: bool):
        from repro.middleware.catalog import Catalog
        from repro.subsystems.base import StreamOnlySubsystem
        from repro.subsystems.synthetic import SyntheticSubsystem
        from repro.workloads.distributions import Uniform

        objs = [f"o{i}" for i in range(40)]
        sub_a = SyntheticSubsystem(
            "a", generated={"X": Uniform()}, objects=objs, seed=1
        )
        sub_b = SyntheticSubsystem(
            "b", generated={"Y": Uniform()}, objects=objs, seed=2
        )
        if stream_only:
            sub_b = StreamOnlySubsystem(sub_b)
        cat = Catalog()
        cat.register(sub_a)
        cat.register(sub_b)
        return cat

    def test_planner_picks_nra_for_stream_only_subsystem(self):
        from repro.middleware.parser import parse_query
        from repro.middleware.planner import Planner

        plan = Planner(self._catalog(stream_only=True)).plan(
            parse_query('(X ~ "t") AND (Y ~ "t")')
        )
        assert plan.algorithm.name == "NRA"

    def test_planner_keeps_a0_prime_with_full_capability(self):
        from repro.middleware.parser import parse_query
        from repro.middleware.planner import Planner

        plan = Planner(self._catalog(stream_only=False)).plan(
            parse_query('(X ~ "t") AND (Y ~ "t")')
        )
        assert plan.algorithm.name == "A0-prime"

    def test_executing_the_nra_plan_works_end_to_end(self):
        from repro.core.semantics import STANDARD_FUZZY
        from repro.middleware.executor import Executor
        from repro.middleware.parser import parse_query
        from repro.middleware.planner import Planner

        cat = self._catalog(stream_only=True)
        plan = Planner(cat).plan(parse_query('(X ~ "t") AND (Y ~ "t")'))
        answer = Executor(cat, STANDARD_FUZZY).execute(plan, 5)
        assert answer.result.k == 5
        assert answer.result.stats.random_cost == 0
