"""Tests for correlated workload generation (the Section 7 questions)."""

import pytest

from repro.workloads.correlated import (
    correlated_database,
    correlated_skeleton,
    hard_query_database,
    min_equicorrelation,
    spearman_rho,
)


class TestMinEquicorrelation:
    def test_two_lists(self):
        assert min_equicorrelation(2) == -1.0

    def test_three_lists(self):
        assert min_equicorrelation(3) == pytest.approx(-0.5)

    def test_needs_two(self):
        with pytest.raises(ValueError):
            min_equicorrelation(1)


class TestCorrelatedSkeleton:
    def test_shape(self):
        sk = correlated_skeleton(2, 50, rho=0.5, seed=1)
        assert sk.num_lists == 2
        assert sk.num_objects == 50

    def test_rho_one_identical_lists(self):
        sk = correlated_skeleton(2, 40, rho=1.0, seed=2)
        assert sk.permutations[0] == sk.permutations[1]

    def test_rho_minus_one_reversed_lists(self):
        sk = correlated_skeleton(2, 40, rho=-1.0, seed=3)
        assert sk.permutations[1] == tuple(reversed(sk.permutations[0]))

    def test_realised_correlation_tracks_parameter(self):
        for rho in (-0.8, 0.0, 0.8):
            sk = correlated_skeleton(2, 400, rho=rho, seed=4)
            realised = spearman_rho(sk)
            assert realised == pytest.approx(rho, abs=0.15)

    def test_monotone_in_rho(self):
        values = [
            spearman_rho(correlated_skeleton(2, 300, rho=r, seed=5))
            for r in (-0.9, -0.3, 0.3, 0.9)
        ]
        assert values == sorted(values)

    def test_rho_out_of_range(self):
        with pytest.raises(ValueError, match="valid range"):
            correlated_skeleton(3, 30, rho=-0.9, seed=0)

    def test_reproducible(self):
        a = correlated_skeleton(2, 60, rho=0.4, seed=8)
        b = correlated_skeleton(2, 60, rho=0.4, seed=8)
        assert a == b


class TestCorrelatedDatabase:
    def test_consistent_with_its_skeleton(self):
        db = correlated_database(2, 50, rho=0.5, seed=1)
        assert db.consistent_with(db.skeleton())

    def test_match_depth_decreases_with_correlation(self):
        """Positive correlation helps; negative hurts (Section 7 intro)."""
        import statistics

        def mean_depth(rho):
            return statistics.fmean(
                correlated_database(2, 200, rho=rho, seed=s)
                .skeleton()
                .match_depth(1)
                for s in range(15)
            )

        aligned = mean_depth(0.9)
        independent = mean_depth(0.0)
        opposed = mean_depth(-0.9)
        assert aligned < independent < opposed


class TestHardQueryDatabase:
    def test_structure(self):
        db = hard_query_database(40, seed=2)
        assert db.num_lists == 2
        sk = db.skeleton()
        assert sk.permutations[1] == tuple(reversed(sk.permutations[0]))

    def test_negation_contract(self):
        db = hard_query_database(30, seed=3)
        for obj in db.objects:
            assert db.grade(1, obj) == pytest.approx(1.0 - db.grade(0, obj))

    def test_spearman_is_minus_one(self):
        db = hard_query_database(50, seed=4)
        assert spearman_rho(db.skeleton()) == pytest.approx(-1.0)
