"""Tests for the grade distributions."""

import random
import statistics

import pytest

from repro.workloads.distributions import Beta, Capped, Crisp, PowerLaw, Uniform


@pytest.fixture
def rng():
    return random.Random(77)


ALL = [Uniform(), Capped(0.9), Crisp(0.3), Beta(2, 5), PowerLaw(3.0)]


@pytest.mark.parametrize("dist", ALL, ids=lambda d: d.name)
class TestCommonContract:
    def test_samples_in_unit_interval(self, dist, rng):
        for __ in range(500):
            assert 0.0 <= dist.sample(rng) <= 1.0

    def test_sample_many_length(self, dist, rng):
        assert len(dist.sample_many(rng, 25)) == 25

    def test_name_present(self, dist, rng):
        assert dist.name and dist.name != "distribution"


class TestUniform:
    def test_mean_near_half(self, rng):
        samples = Uniform().sample_many(rng, 4000)
        assert statistics.fmean(samples) == pytest.approx(0.5, abs=0.03)

    def test_custom_range(self, rng):
        dist = Uniform(0.2, 0.4)
        assert all(0.2 <= dist.sample(rng) <= 0.4 for _ in range(200))

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            Uniform(0.5, 0.5)


class TestCapped:
    def test_never_exceeds_cap(self, rng):
        dist = Capped(0.9)
        assert all(dist.sample(rng) <= 0.9 for _ in range(1000))

    def test_positive_cap_required(self):
        with pytest.raises(ValueError):
            Capped(0.0)


class TestCrisp:
    def test_only_zero_or_one(self, rng):
        dist = Crisp(0.5)
        assert set(dist.sample_many(rng, 200)) <= {0.0, 1.0}

    def test_selectivity_respected(self, rng):
        dist = Crisp(0.2)
        ones = sum(dist.sample_many(rng, 5000)) / 5000
        assert ones == pytest.approx(0.2, abs=0.03)

    def test_degenerate_selectivities(self, rng):
        assert set(Crisp(0.0).sample_many(rng, 50)) == {0.0}
        assert set(Crisp(1.0).sample_many(rng, 50)) == {1.0}

    def test_invalid_selectivity(self):
        with pytest.raises(ValueError):
            Crisp(1.5)


class TestBeta:
    def test_mean_matches_theory(self, rng):
        dist = Beta(2, 5)
        mean = statistics.fmean(dist.sample_many(rng, 4000))
        assert mean == pytest.approx(2 / 7, abs=0.03)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Beta(0, 1)


class TestPowerLaw:
    def test_skewed_towards_zero(self, rng):
        dist = PowerLaw(3.0)
        mean = statistics.fmean(dist.sample_many(rng, 4000))
        assert mean == pytest.approx(0.25, abs=0.04)  # E[u^3] = 1/4

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            PowerLaw(0.0)
