"""Tests for the Section 5 independence-model workload generators."""

import random

import pytest

from repro.workloads.distributions import Capped, Uniform
from repro.workloads.skeletons import (
    grades_for_skeleton,
    independent_database,
    random_skeleton,
)


class TestRandomSkeleton:
    def test_shape(self):
        sk = random_skeleton(3, 40, seed=1)
        assert sk.num_lists == 3
        assert sk.num_objects == 40

    def test_reproducible_by_seed(self):
        assert random_skeleton(2, 30, seed=5) == random_skeleton(2, 30, seed=5)
        assert random_skeleton(2, 30, seed=5) != random_skeleton(2, 30, seed=6)

    def test_accepts_rng_instance(self):
        rng = random.Random(9)
        sk = random_skeleton(2, 20, rng)
        assert sk.num_objects == 20

    def test_lists_are_independent_permutations(self):
        """Independent lists almost never coincide for moderate N."""
        sk = random_skeleton(2, 50, seed=2)
        assert sk.permutations[0] != sk.permutations[1]


class TestGradesForSkeleton:
    def test_rows_non_increasing(self):
        sk = random_skeleton(2, 30, seed=3)
        rows = grades_for_skeleton(sk, random.Random(3))
        for row in rows:
            assert all(a >= b for a, b in zip(row, row[1:]))

    def test_per_list_distributions(self):
        sk = random_skeleton(2, 100, seed=4)
        rows = grades_for_skeleton(
            sk, random.Random(4), distributions=[Capped(0.5), Uniform()]
        )
        assert max(rows[0]) <= 0.5
        assert max(rows[1]) > 0.5  # whp for 100 uniform draws

    def test_distribution_count_mismatch(self):
        sk = random_skeleton(2, 10, seed=5)
        with pytest.raises(ValueError):
            grades_for_skeleton(
                sk, random.Random(0), distributions=[Uniform()]
            )


class TestIndependentDatabase:
    def test_shape_and_consistency(self):
        db = independent_database(2, 100, seed=42)
        assert db.num_lists == 2
        assert db.num_objects == 100
        assert db.consistent_with(db.skeleton())

    def test_reproducible(self):
        a = independent_database(2, 50, seed=7)
        b = independent_database(2, 50, seed=7)
        assert a.skeleton() == b.skeleton()
        assert all(
            a.grade(0, o) == b.grade(0, o) for o in a.objects
        )

    def test_uniform_marginals(self):
        """Grades should fill [0,1] roughly uniformly."""
        db = independent_database(1, 2000, seed=11)
        grades = [db.grade(0, o) for o in db.objects]
        below_half = sum(g < 0.5 for g in grades) / len(grades)
        assert 0.42 <= below_half <= 0.58

    def test_match_depth_near_sqrt_n(self):
        """The Section 5 headline at k=1, m=2: T concentrates ~ sqrt(N)."""
        import statistics

        n = 900
        depths = [
            independent_database(2, n, seed=s).skeleton().match_depth(1)
            for s in range(30)
        ]
        mean_depth = statistics.fmean(depths)
        # sqrt(900) = 30; allow wide slack for 30 trials.
        assert 10 <= mean_depth <= 90
