"""Tests for the CD-store dataset (the Section 2 running example)."""

import pytest

from repro.workloads.datasets import NAMED_COLORS, Album, cd_store


class TestCdStore:
    def test_size(self):
        assert len(cd_store(80, seed=1)) == 80

    def test_reproducible(self):
        a = cd_store(50, seed=2)
        b = cd_store(50, seed=2)
        assert a == b

    def test_different_seeds_differ(self):
        assert cd_store(50, seed=1) != cd_store(50, seed=2)

    def test_beatles_albums_pinned(self):
        albums = cd_store(50, seed=3)
        beatles = [a for a in albums if a.artist == "Beatles"]
        assert len(beatles) >= 6
        titles = {a.title for a in beatles}
        assert "Sgt. Pepper" in titles

    def test_red_covers_exist_for_running_example(self):
        """The flagship query needs Beatles albums with reddish covers."""
        albums = cd_store(50, seed=4)
        red = NAMED_COLORS["red"]

        def dist2(a):
            return sum((c - t) ** 2 for c, t in zip(a.cover_rgb, red))

        beatles = [a for a in albums if a.artist == "Beatles"]
        assert any(dist2(a) < 0.1 for a in beatles)

    def test_unique_ids(self):
        albums = cd_store(120, seed=5)
        assert len({a.album_id for a in albums}) == 120

    def test_features_well_formed(self):
        for a in cd_store(60, seed=6):
            assert len(a.cover_rgb) == 3
            assert len(a.cover_texture) == 3
            assert 0.0 <= a.shape_roundness <= 1.0
            assert a.blurb

    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            cd_store(3, seed=0)


class TestAlbumValidation:
    def _kwargs(self, **overrides):
        base = dict(
            album_id="x",
            title="T",
            artist="A",
            year=1970,
            genre="rock",
            cover_rgb=(0.5, 0.5, 0.5),
            cover_texture=(0.5, 0.5, 0.5),
            shape_roundness=0.5,
        )
        base.update(overrides)
        return base

    def test_valid(self):
        assert Album(**self._kwargs()).title == "T"

    def test_rgb_range_checked(self):
        with pytest.raises(ValueError):
            Album(**self._kwargs(cover_rgb=(1.5, 0.0, 0.0)))

    def test_roundness_checked(self):
        with pytest.raises(ValueError):
            Album(**self._kwargs(shape_roundness=-0.1))


class TestNamedColors:
    def test_all_rgb_triples_in_range(self):
        for name, rgb in NAMED_COLORS.items():
            assert len(rgb) == 3, name
            assert all(0.0 <= c <= 1.0 for c in rgb), name

    def test_core_colors_present(self):
        assert {"red", "green", "blue"} <= set(NAMED_COLORS)
