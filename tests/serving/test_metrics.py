"""The serving metrics plane: histograms, qps windows, counters."""

import pytest

from repro.serving.metrics import LatencyHistogram, ServerMetrics


class FakeClock:
    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestLatencyHistogram:
    def test_empty_snapshot_is_all_none(self):
        snap = LatencyHistogram().snapshot()
        assert snap["count"] == 0
        assert snap["p50_ms"] is None
        assert snap["p99_ms"] is None
        assert snap["mean_ms"] is None

    def test_percentiles_are_bucket_upper_bounds(self):
        hist = LatencyHistogram()
        for latency in (0.3, 0.9, 1.7, 3.2, 100.0):
            hist.observe(latency)
        snap = hist.snapshot()
        assert snap["count"] == 5
        # Each observation lands in a doubling bucket; the reported
        # percentile is that bucket's upper bound — conservative,
        # never an underestimate.
        assert snap["p50_ms"] >= 1.7
        assert snap["p99_ms"] >= 100.0

    def test_single_observation(self):
        hist = LatencyHistogram()
        hist.observe(5.0)
        snap = hist.snapshot()
        assert snap["p50_ms"] == snap["p99_ms"]
        assert snap["p50_ms"] >= 5.0

    def test_overflow_bucket_reports_observed_max(self):
        hist = LatencyHistogram()
        hist.observe(1_000_000.0)  # beyond the last bound
        snap = hist.snapshot()
        assert snap["p99_ms"] == pytest.approx(1_000_000.0)
        assert snap["max_ms"] == pytest.approx(1_000_000.0)

    def test_mean_is_exact_not_bucketed(self):
        hist = LatencyHistogram()
        hist.observe(1.0)
        hist.observe(3.0)
        assert hist.snapshot()["mean_ms"] == pytest.approx(2.0)


class TestServerMetrics:
    def test_counts_by_route_and_status(self):
        metrics = ServerMetrics(clock=FakeClock())
        for status in (200, 200, 404):
            metrics.request_started()
            metrics.request_finished("/v1/query", status, 2.0)
        snap = metrics.snapshot()
        assert snap["requests_total"] == 3
        assert snap["by_status"]["200"] == 2
        assert snap["by_status"]["404"] == 1
        assert snap["routes"]["/v1/query"]["requests"] == 3
        assert snap["routes"]["/v1/query"]["by_status"] == {"200": 2, "404": 1}

    def test_qps_window_prunes_old_requests(self):
        clock = FakeClock()
        metrics = ServerMetrics(clock=clock)
        metrics.request_started()
        metrics.request_finished("/v1/query", 200, 1.0)
        clock.advance(30.0)
        metrics.request_started()
        metrics.request_finished("/v1/query", 200, 1.0)
        # Window is min(uptime, 60 s): both requests inside 30 s.
        assert metrics.snapshot()["qps_60s"] == pytest.approx(
            2 / 30.0, abs=1e-3
        )
        clock.advance(45.0)  # first request now outside the window
        assert metrics.snapshot()["qps_60s"] == pytest.approx(
            1 / 60.0, abs=1e-3
        )

    def test_shed_and_deadline_counters(self):
        metrics = ServerMetrics(clock=FakeClock())
        metrics.request_started()
        metrics.request_finished("/v1/query", 503, 0.1)
        metrics.request_started()
        metrics.request_finished("/v1/query", 504, 50.0)
        snap = metrics.snapshot()
        assert snap["shed_total"] == 1
        assert snap["deadline_exceeded_total"] == 1

    def test_in_flight_peak(self):
        metrics = ServerMetrics(clock=FakeClock())
        metrics.request_started()
        metrics.request_started()
        assert metrics.snapshot()["in_flight"] == 2
        metrics.request_finished("/a", 200, 1.0)
        snap = metrics.snapshot()
        assert snap["in_flight"] == 1
        assert snap["peak_in_flight"] == 2
