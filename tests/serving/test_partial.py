"""Certified partial answers over HTTP: allow_partial + deadline_ms.

The contract under test (DESIGN.md "Certified results & anytime
execution"): with ``allow_partial``, a deadline expiry returns **200**
with the pages that landed plus the anytime guarantee block; without
the flag the behaviour is the historical unconditional 504.
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro.access.session import MiddlewareSession
from repro.access.source import MaterializedSource
from repro.core.tnorms import MINIMUM
from repro.engine import Engine
from repro.serving import HttpRequest, ServingApp, ServingConfig
from repro.workloads.skeletons import independent_database

N, M = 300, 3


def make_request(method, path, payload=None, query=None) -> HttpRequest:
    body = b"" if payload is None else json.dumps(payload).encode()
    return HttpRequest(
        method=method, path=path, query=query or {}, headers={}, body=body
    )


def parse(response) -> dict:
    return json.loads(response.body)


@pytest.fixture()
def db():
    return independent_database(M, N, seed=23)


def make_app(backing, **config_kwargs) -> ServingApp:
    return ServingApp(Engine.over(backing), ServingConfig(**config_kwargs))


async def drained(app: ServingApp) -> None:
    await app.shutdown(grace_s=1.0)


class _Gate:
    """Charges accesses; past the free budget each access sleeps.

    The slow phase lasts ``slow_window_s`` of wall clock — long enough
    to guarantee the request deadline (a fraction of it) expires first,
    short enough that the orphaned pool thread finishes its abandoned
    page quickly and shutdown's drain stays fast.
    """

    def __init__(
        self, free: int, delay_s: float, slow_window_s: float = 1.0
    ) -> None:
        self.used = 0
        self.free = free
        self.delay_s = delay_s
        self.slow_window_s = slow_window_s
        self._slow_until: float | None = None

    def charge(self, count: int) -> None:
        self.used += count
        if self.used <= self.free:
            return
        now = time.monotonic()
        if self._slow_until is None:
            self._slow_until = now + self.slow_window_s
        if now < self._slow_until:
            time.sleep(self.delay_s)


class _ThrottledSource(MaterializedSource):
    """A materialised source that turns slow after a gate's budget."""

    def __init__(self, name, ranking, gate: _Gate) -> None:
        super().__init__(name, ranking)
        self._gate = gate

    def next_sorted(self):
        self._gate.charge(1)
        return super().next_sorted()

    def sorted_access_batch(self, count):
        self._gate.charge(count)
        return super().sorted_access_batch(count)

    def random_access(self, obj):
        self._gate.charge(1)
        return super().random_access(obj)

    def random_access_many(self, objs):
        self._gate.charge(len(objs))
        return super().random_access_many(objs)


def throttled_factory(db, free: int, delay_s: float):
    """A session factory: fast for ``free`` accesses, then crawling."""

    def factory() -> MiddlewareSession:
        gate = _Gate(free, delay_s)
        raw = [
            _ThrottledSource(f"list-{i}", db.ranking(i), gate)
            for i in range(db.num_lists)
        ]
        return MiddlewareSession.over_sources(raw, num_objects=db.num_objects)

    return factory


def first_page_cost(db, page_size: int) -> int:
    """The deterministic access cost of the first cursor page."""
    cursor = Engine.over(db).query(MINIMUM).cursor()
    cursor.next_k(page_size)
    return cursor.total_stats().sum_cost


class TestPartialCompletes:
    def test_fast_query_completes_exactly(self, db):
        direct = Engine.over(db).query(MINIMUM).top(10)

        async def scenario():
            app = make_app(db)
            try:
                return await app.handle(
                    make_request(
                        "POST",
                        "/v1/query",
                        {
                            "aggregation": "min",
                            "k": 10,
                            "deadline_ms": 10_000,
                            "allow_partial": True,
                        },
                    )
                )
            finally:
                await drained(app)

        response = asyncio.run(scenario())
        assert response.status == 200
        payload = parse(response)
        assert payload["partial"] is False
        assert payload["guarantee"]["kind"] == "exact"
        assert [(i["obj"], i["grade"]) for i in payload["items"]] == [
            (item.obj, item.grade) for item in direct.items
        ]


class TestPartialExpiry:
    def test_expiry_returns_200_with_certified_prefix(self, db):
        # k=40 pages in fives; the gate budget covers exactly the first
        # page, so page two hits 300 ms sleeps and the 250 ms deadline
        # expires with one certified page in hand.
        free = first_page_cost(db, page_size=5)
        factory = throttled_factory(db, free=free, delay_s=0.1)

        async def scenario():
            app = make_app(factory)
            try:
                return await app.handle(
                    make_request(
                        "POST",
                        "/v1/query",
                        {
                            "aggregation": "min",
                            "k": 40,
                            "deadline_ms": 250,
                            "allow_partial": True,
                        },
                    )
                )
            finally:
                await drained(app)

        response = asyncio.run(scenario())
        assert response.status == 200
        payload = parse(response)
        assert payload["partial"] is True
        assert 0 < len(payload["items"]) < 40
        guarantee = payload["guarantee"]
        assert guarantee["kind"] == "anytime"
        assert guarantee["epsilon"] == 0.0
        assert "threshold" in guarantee
        bounds = payload["bounds"]
        assert bounds["answers_certified"] == len(payload["items"])
        # The prefix really is the exact top-r.
        truth = db.true_top_k(MINIMUM, len(payload["items"]))
        assert [i["grade"] for i in payload["items"]] == [
            item.grade for item in truth
        ]
        # And the certified cap bounds everything withheld.
        hidden = db.true_top_k(MINIMUM, N)[len(payload["items"]) :]
        assert guarantee["threshold"] >= hidden[0].grade - 1e-12

    def test_without_flag_expiry_stays_504(self, db):
        factory = throttled_factory(db, free=0, delay_s=0.1)

        async def scenario():
            app = make_app(factory)
            try:
                return await app.handle(
                    make_request(
                        "POST",
                        "/v1/query",
                        {"aggregation": "min", "k": 10, "deadline_ms": 100},
                    )
                )
            finally:
                await drained(app)

        response = asyncio.run(scenario())
        assert response.status == 504
        assert parse(response)["error"]["code"] == "deadline_exceeded"

    def test_zero_pages_is_still_504(self, db):
        factory = throttled_factory(db, free=0, delay_s=0.1)

        async def scenario():
            app = make_app(factory)
            try:
                return await app.handle(
                    make_request(
                        "POST",
                        "/v1/query",
                        {
                            "aggregation": "min",
                            "k": 10,
                            "deadline_ms": 100,
                            "allow_partial": True,
                        },
                    )
                )
            finally:
                await drained(app)

        response = asyncio.run(scenario())
        assert response.status == 504
        assert parse(response)["error"]["code"] == "deadline_exceeded"


class TestValidation:
    @pytest.mark.parametrize("bad", ["yes", 1, None])
    def test_allow_partial_must_be_boolean(self, db, bad):
        async def scenario():
            app = make_app(db)
            try:
                return await app.handle(
                    make_request(
                        "POST",
                        "/v1/query",
                        {"aggregation": "min", "k": 5, "allow_partial": bad},
                    )
                )
            finally:
                await drained(app)

        response = asyncio.run(scenario())
        assert response.status == 400

    @pytest.mark.parametrize("bad", [-0.5, "a lot", True])
    def test_epsilon_validated(self, db, bad):
        async def scenario():
            app = make_app(db)
            try:
                return await app.handle(
                    make_request(
                        "POST",
                        "/v1/query",
                        {"aggregation": "min", "k": 5, "epsilon": bad},
                    )
                )
            finally:
                await drained(app)

        response = asyncio.run(scenario())
        assert response.status == 400
        assert parse(response)["error"]["code"] == "invalid_epsilon"

    def test_partial_with_forced_strategy_rejected(self, db):
        async def scenario():
            app = make_app(db)
            try:
                return await app.handle(
                    make_request(
                        "POST",
                        "/v1/query",
                        {
                            "aggregation": "min",
                            "k": 5,
                            "strategy": "fagin",
                            "deadline_ms": 1000,
                            "allow_partial": True,
                        },
                    )
                )
            finally:
                await drained(app)

        response = asyncio.run(scenario())
        assert response.status == 400


class TestWireGuarantees:
    def test_query_envelope_reports_guarantee(self, db):
        async def scenario():
            app = make_app(db)
            try:
                exact = await app.handle(
                    make_request(
                        "POST", "/v1/query", {"aggregation": "min", "k": 5}
                    )
                )
                approx = await app.handle(
                    make_request(
                        "POST",
                        "/v1/query",
                        {"aggregation": "min", "k": 5, "epsilon": 0.3},
                    )
                )
                return exact, approx
            finally:
                await drained(app)

        exact, approx = asyncio.run(scenario())
        assert parse(exact)["guarantee"]["kind"] == "exact"
        approx_payload = parse(approx)
        assert approx_payload["guarantee"]["kind"] == "approximate"
        assert approx_payload["guarantee"]["epsilon"] == 0.3

    def test_cursor_session_surfaces_remaining_and_guarantee(self, db):
        async def scenario():
            app = make_app(db)
            try:
                opened = parse(
                    await app.handle(
                        make_request(
                            "POST",
                            "/v1/cursor",
                            {"aggregation": "min", "page_size": 5},
                        )
                    )
                )
                cursor_id = opened["cursor_id"]
                fresh = parse(
                    await app.handle(
                        make_request("GET", f"/v1/cursor/{cursor_id}")
                    )
                )
                page = parse(
                    await app.handle(
                        make_request("GET", f"/v1/cursor/{cursor_id}/next")
                    )
                )
                described = parse(
                    await app.handle(
                        make_request("GET", f"/v1/cursor/{cursor_id}")
                    )
                )
                return fresh, page, described
            finally:
                await drained(app)

        fresh, page, described = asyncio.run(scenario())
        # Before the first page: nothing to certify yet.
        assert fresh["guarantee"] is None and fresh["bounds"] is None
        # The page itself carries its certificate.
        assert page["guarantee"]["kind"] == "anytime"
        assert page["bounds"]["answers_certified"] == 5
        # The satellite fix: describe exposes remaining + the active
        # guarantee after paging.
        assert described["remaining"] == N - 5
        assert described["guarantee"]["kind"] == "anytime"
        assert described["bounds"]["remaining_upper"] == pytest.approx(
            page["guarantee"]["threshold"]
        )
