"""The full stack over a real TCP socket: ServingServer + urllib clients.

Each test boots the server on an ephemeral port inside the test's own
event loop and drives it with blocking urllib calls from executor
threads — exactly the deployment shape (event-loop server, thread-pool
engine, independent HTTP clients).
"""

import asyncio
import json
import socket
import time
import urllib.error
import urllib.request

import pytest

from repro.core.tnorms import MINIMUM
from repro.engine import Engine
from repro.serving import ServingApp, ServingConfig, ServingServer
from repro.workloads.skeletons import independent_database

N, M = 400, 3


@pytest.fixture(scope="module")
def db():
    return independent_database(M, N, seed=23)


def http_json(url, payload=None, method=None, timeout=30.0):
    request = urllib.request.Request(
        url,
        data=None if payload is None else json.dumps(payload).encode(),
        method=method or ("POST" if payload is not None else "GET"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), exc.headers


def serve(engine_factory, config, client):
    """Boot a server, run ``client(base_url)`` off-loop, shut down.

    Returns (client result, shutdown summary).
    """

    async def scenario():
        app = ServingApp(engine_factory(), config)
        server = await ServingServer(app).start()
        base = f"http://127.0.0.1:{server.port}"
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(None, client, base)
        finally:
            summary = await server.shutdown(grace_s=2.0)
        return result, summary

    return asyncio.run(scenario())


class SlowSessionFactory:
    def __init__(self, db, delay_s):
        self.db = db
        self.delay_s = delay_s

    def __call__(self):
        time.sleep(self.delay_s)
        return self.db.session()


class TestEndToEnd:
    def test_concurrent_clients_bit_identical_to_direct_engine(self, db):
        direct = Engine.over(db).query(MINIMUM).top(9)
        expected = [(item.obj, item.grade) for item in direct.items]

        def client(base):
            import concurrent.futures

            def one(_):
                status, body, _headers = http_json(
                    f"{base}/v1/query", {"aggregation": "min", "k": 9}
                )
                assert status == 200
                return [(i["obj"], i["grade"]) for i in body["items"]]

            with concurrent.futures.ThreadPoolExecutor(8) as pool:
                return list(pool.map(one, range(16)))

        answers, summary = serve(
            lambda: Engine.over(db), ServingConfig(port=0), client
        )
        assert all(answer == expected for answer in answers)
        assert summary["forced"] is False
        assert summary["requests_total"] == 16

    def test_shed_has_retry_after_header(self, db):
        slow = SlowSessionFactory(db, delay_s=0.4)

        def client(base):
            import concurrent.futures

            def one(_):
                return http_json(
                    f"{base}/v1/query",
                    {"aggregation": "min", "k": 3},
                    timeout=10.0,
                )

            with concurrent.futures.ThreadPoolExecutor(4) as pool:
                return list(pool.map(one, range(4)))

        results, _ = serve(
            lambda: Engine.over(slow),
            ServingConfig(port=0, max_inflight=1, max_queue=0),
            client,
        )
        statuses = sorted(status for status, _, _ in results)
        assert statuses[0] == 200  # exactly one winner
        assert statuses[1:] == [503] * 3
        for status, body, headers in results:
            if status == 503:
                assert body["error"]["code"] == "overloaded"
                assert headers["Retry-After"] is not None

    def test_deadline_504_then_healthy(self, db):
        slow = SlowSessionFactory(db, delay_s=0.3)

        def client(base):
            timed_out = http_json(
                f"{base}/v1/query",
                {"aggregation": "min", "k": 3, "deadline_ms": 40},
            )
            healthy = http_json(
                f"{base}/v1/query", {"aggregation": "min", "k": 3}
            )
            return timed_out, healthy

        (timed_out, healthy), _ = serve(
            lambda: Engine.over(slow), ServingConfig(port=0), client
        )
        assert timed_out[0] == 504
        assert timed_out[1]["error"]["code"] == "deadline_exceeded"
        assert healthy[0] == 200

    def test_cursor_paging_round_trips(self, db):
        def client(base):
            status, opened, _ = http_json(
                f"{base}/v1/cursor", {"aggregation": "min", "page_size": 15}
            )
            assert status == 201
            cursor_id = opened["cursor_id"]
            pages = []
            for _ in range(3):
                status, page, _ = http_json(
                    f"{base}/v1/cursor/{cursor_id}/next"
                )
                assert status == 200
                pages.append(page)
            return pages

        pages, _ = serve(lambda: Engine.over(db), ServingConfig(port=0), client)
        direct = Engine.over(db).query(MINIMUM).cursor()
        for wire, page in zip(pages, (direct.next_k(15) for _ in range(3))):
            assert [(i["obj"], i["grade"]) for i in wire["items"]] == [
                (item.obj, item.grade) for item in page.items
            ]

    def test_metrics_over_the_wire(self, db):
        def client(base):
            for _ in range(3):
                http_json(f"{base}/v1/query", {"aggregation": "min", "k": 5})
            status, metrics, _ = http_json(f"{base}/metrics")
            assert status == 200
            return metrics

        metrics, _ = serve(
            lambda: Engine.over(db), ServingConfig(port=0), client
        )
        assert metrics["server"]["requests_total"] == 3
        assert metrics["server"]["qps"] > 0
        assert metrics["server"]["latency"]["p99_ms"] is not None
        assert metrics["engine"]["queries"] == 3
        assert metrics["engine"]["access"]["total"] > 0

    def test_drain_closes_live_cursor_sessions(self, db):
        def client(base):
            status, opened, _ = http_json(
                f"{base}/v1/cursor", {"aggregation": "min"}
            )
            assert status == 201

        _, summary = serve(
            lambda: Engine.over(db), ServingConfig(port=0), client
        )
        assert summary["cursors_closed"] == 1


class TestProtocolStrictness:
    """Raw-socket probes of the HTTP reader's rejection paths."""

    def raw(self, config, payload: bytes) -> bytes:
        async def scenario():
            db = independent_database(2, 50, seed=3)
            app = ServingApp(Engine.over(db), config)
            server = await ServingServer(app).start()
            port = server.port

            def send():
                with socket.create_connection(("127.0.0.1", port), 5) as sock:
                    sock.sendall(payload)
                    sock.settimeout(5)
                    chunks = []
                    try:
                        while chunk := sock.recv(4096):
                            chunks.append(chunk)
                    except TimeoutError:
                        pass
                    return b"".join(chunks)

            loop = asyncio.get_running_loop()
            try:
                return await loop.run_in_executor(None, send)
            finally:
                await server.shutdown(grace_s=1.0)

        return asyncio.run(scenario())

    def test_malformed_request_line_400(self):
        response = self.raw(ServingConfig(port=0), b"NONSENSE\r\n\r\n")
        assert response.startswith(b"HTTP/1.1 400")
        assert b"malformed_request_line" in response

    def test_chunked_upload_501(self):
        response = self.raw(
            ServingConfig(port=0),
            b"POST /v1/query HTTP/1.1\r\n"
            b"Transfer-Encoding: chunked\r\n\r\n",
        )
        assert response.startswith(b"HTTP/1.1 501")
        assert b"chunked_unsupported" in response

    def test_oversized_body_413(self):
        response = self.raw(
            ServingConfig(port=0, max_body_bytes=64),
            b"POST /v1/query HTTP/1.1\r\nContent-Length: 100000\r\n\r\n",
        )
        assert response.startswith(b"HTTP/1.1 413")

    def test_bad_http_version_505(self):
        response = self.raw(
            ServingConfig(port=0), b"GET /healthz HTTP/2.0\r\n\r\n"
        )
        assert response.startswith(b"HTTP/1.1 505")

    def test_keep_alive_serves_sequential_requests(self):
        response = self.raw(
            ServingConfig(port=0),
            b"GET /healthz HTTP/1.1\r\n\r\n"
            b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
        )
        assert response.count(b"HTTP/1.1 200") == 2
        assert b"Connection: keep-alive" in response
        assert b"Connection: close" in response
