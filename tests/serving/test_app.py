"""ServingApp driven directly (no sockets): routing, envelopes,
admission, deadlines, cursors, drain.

Each test builds requests as :class:`HttpRequest` values and awaits
``app.handle`` under ``asyncio.run`` — the application layer is the
unit, the transport is covered by test_server_integration.py.
"""

import asyncio
import json
import time

import pytest

from repro.core.tnorms import MINIMUM
from repro.engine import Engine
from repro.serving import HttpRequest, ServingApp, ServingConfig
from repro.workloads.skeletons import independent_database

N, M = 300, 3


def make_request(
    method: str,
    path: str,
    payload: dict | None = None,
    query: dict | None = None,
    body: bytes | None = None,
) -> HttpRequest:
    if body is None:
        body = b"" if payload is None else json.dumps(payload).encode()
    return HttpRequest(
        method=method,
        path=path,
        query=query or {},
        headers={},
        body=body,
    )


def parse(response) -> dict:
    return json.loads(response.body)


@pytest.fixture()
def db():
    return independent_database(M, N, seed=11)


def make_app(db, **config_kwargs) -> ServingApp:
    return ServingApp(Engine.over(db), ServingConfig(**config_kwargs))


async def drained(app: ServingApp) -> None:
    await app.shutdown(grace_s=1.0)


class SlowSessionFactory:
    """A session factory whose minting blocks — queries take >= delay.

    Minting happens inside the engine call on the pool thread, so this
    makes the *engine work* slow without touching the event loop.
    """

    def __init__(self, db, delay_s: float) -> None:
        self.db = db
        self.delay_s = delay_s

    def __call__(self):
        time.sleep(self.delay_s)
        return self.db.session()


class TestQuery:
    def test_answer_bit_identical_to_direct_engine(self, db):
        direct = Engine.over(db).query(MINIMUM).top(7)

        async def scenario():
            app = make_app(db)
            try:
                return await app.handle(
                    make_request(
                        "POST", "/v1/query", {"aggregation": "min", "k": 7}
                    )
                )
            finally:
                await drained(app)

        response = asyncio.run(scenario())
        assert response.status == 200
        payload = parse(response)
        assert [
            (item["obj"], item["grade"]) for item in payload["items"]
        ] == [(item.obj, item.grade) for item in direct.items]
        assert payload["stats"]["sorted"] == direct.stats.sorted_cost
        assert payload["stats"]["random"] == direct.stats.random_cost
        assert payload["algorithm"] == direct.algorithm

    def test_concurrent_queries_all_identical(self, db):
        direct = Engine.over(db).query(MINIMUM).top(5)

        async def scenario():
            app = make_app(db, max_inflight=4, max_queue=16)
            try:
                return await asyncio.gather(
                    *(
                        app.handle(
                            make_request(
                                "POST",
                                "/v1/query",
                                {"aggregation": "min", "k": 5},
                            )
                        )
                        for _ in range(12)
                    )
                )
            finally:
                await drained(app)

        responses = asyncio.run(scenario())
        assert all(r.status == 200 for r in responses)
        expected = [(item.obj, item.grade) for item in direct.items]
        for response in responses:
            payload = parse(response)
            assert [
                (item["obj"], item["grade"]) for item in payload["items"]
            ] == expected

    def test_named_aggregations_resolve(self, db):
        async def scenario():
            app = make_app(db)
            try:
                return [
                    (
                        name,
                        await app.handle(
                            make_request(
                                "POST",
                                "/v1/query",
                                {"aggregation": name, "k": 3},
                            )
                        ),
                    )
                    for name in ("min", "max", "mean", "product")
                ]
            finally:
                await drained(app)

        for name, response in asyncio.run(scenario()):
            assert response.status == 200, (name, response.body)


class TestErrorEnvelopes:
    def run_one(self, db, request) -> tuple[int, dict]:
        async def scenario():
            app = make_app(db)
            try:
                return await app.handle(request)
            finally:
                await drained(app)

        response = asyncio.run(scenario())
        return response.status, parse(response)

    def test_unknown_route_404(self, db):
        status, payload = self.run_one(db, make_request("GET", "/nope"))
        assert status == 404
        assert payload["error"]["code"] == "unknown_route"

    def test_invalid_json_400(self, db):
        status, payload = self.run_one(
            db, make_request("POST", "/v1/query", body=b"{not json")
        )
        assert status == 400
        assert payload["error"]["code"] == "invalid_json"

    def test_missing_spec_400(self, db):
        status, payload = self.run_one(
            db, make_request("POST", "/v1/query", {"k": 3})
        )
        assert status == 400
        assert payload["error"]["code"] == "invalid_request"

    def test_both_query_and_aggregation_400(self, db):
        status, payload = self.run_one(
            db,
            make_request(
                "POST",
                "/v1/query",
                {"query": "x", "aggregation": "min", "k": 3},
            ),
        )
        assert status == 400

    def test_unknown_aggregation_400_lists_catalogue(self, db):
        status, payload = self.run_one(
            db, make_request("POST", "/v1/query", {"aggregation": "median"})
        )
        assert status == 400
        assert payload["error"]["code"] == "unknown_aggregation"
        assert "min" in payload["error"]["message"]

    def test_invalid_k_is_enveloped_400(self, db):
        status, payload = self.run_one(
            db,
            make_request("POST", "/v1/query", {"aggregation": "min", "k": -2}),
        )
        assert status == 400
        assert "error" in payload

    def test_invalid_deadline_400(self, db):
        status, payload = self.run_one(
            db,
            make_request(
                "POST",
                "/v1/query",
                {"aggregation": "min", "k": 3, "deadline_ms": "soon"},
            ),
        )
        assert status == 400
        assert payload["error"]["code"] == "invalid_deadline"

    def test_query_string_on_source_backing_400(self, db):
        status, payload = self.run_one(
            db,
            make_request("POST", "/v1/query", {"query": "Color ~ 'red'"}),
        )
        assert status == 400
        assert "error" in payload

    def test_engine_still_healthy_after_client_errors(self, db):
        async def scenario():
            app = make_app(db)
            try:
                await app.handle(
                    make_request("POST", "/v1/query", body=b"broken")
                )
                await app.handle(
                    make_request(
                        "POST", "/v1/query", {"aggregation": "nope"}
                    )
                )
                return await app.handle(
                    make_request(
                        "POST", "/v1/query", {"aggregation": "min", "k": 3}
                    )
                )
            finally:
                await drained(app)

        assert asyncio.run(scenario()).status == 200


class TestDeadline:
    def test_deadline_exceeded_504_engine_stays_healthy(self, db):
        slow = SlowSessionFactory(db, delay_s=0.25)

        async def scenario():
            app = ServingApp(Engine.over(slow), ServingConfig())
            try:
                timed_out = await app.handle(
                    make_request(
                        "POST",
                        "/v1/query",
                        {"aggregation": "min", "k": 3, "deadline_ms": 30},
                    )
                )
                healthy = await app.handle(
                    make_request(
                        "POST", "/v1/query", {"aggregation": "min", "k": 3}
                    )
                )
                return timed_out, healthy
            finally:
                await drained(app)

        timed_out, healthy = asyncio.run(scenario())
        assert timed_out.status == 504
        envelope = parse(timed_out)["error"]
        assert envelope["code"] == "deadline_exceeded"
        assert envelope["details"]["deadline_ms"] == 30
        assert healthy.status == 200

    def test_default_deadline_from_config(self, db):
        slow = SlowSessionFactory(db, delay_s=0.25)

        async def scenario():
            app = ServingApp(
                Engine.over(slow),
                ServingConfig(default_deadline_ms=30),
            )
            try:
                return await app.handle(
                    make_request(
                        "POST", "/v1/query", {"aggregation": "min", "k": 3}
                    )
                )
            finally:
                await drained(app)

        assert asyncio.run(scenario()).status == 504

    def test_deadline_counted_in_metrics(self, db):
        slow = SlowSessionFactory(db, delay_s=0.25)

        async def scenario():
            app = ServingApp(Engine.over(slow), ServingConfig())
            try:
                await app.handle(
                    make_request(
                        "POST",
                        "/v1/query",
                        {"aggregation": "min", "k": 3, "deadline_ms": 30},
                    )
                )
                return parse(
                    await app.handle(make_request("GET", "/metrics"))
                )
            finally:
                await drained(app)

        metrics = asyncio.run(scenario())
        assert metrics["server"]["deadline_exceeded_total"] == 1


class TestAdmission:
    def test_over_admission_sheds_503_with_retry_after(self, db):
        slow = SlowSessionFactory(db, delay_s=0.3)

        async def scenario():
            app = ServingApp(
                Engine.over(slow),
                ServingConfig(max_inflight=1, max_queue=0),
            )
            try:
                request = make_request(
                    "POST", "/v1/query", {"aggregation": "min", "k": 3}
                )
                first = asyncio.create_task(app.handle(request))
                await asyncio.sleep(0.05)  # first now holds the slot
                second = await app.handle(request)
                return await first, second
            finally:
                await drained(app)

        first, second = asyncio.run(scenario())
        assert first.status == 200
        assert second.status == 503
        assert parse(second)["error"]["code"] == "overloaded"
        assert any(
            name.lower() == "retry-after" for name, _ in second.headers
        )

    def test_shed_counted_in_metrics(self, db):
        slow = SlowSessionFactory(db, delay_s=0.3)

        async def scenario():
            app = ServingApp(
                Engine.over(slow),
                ServingConfig(max_inflight=1, max_queue=0),
            )
            try:
                request = make_request(
                    "POST", "/v1/query", {"aggregation": "min", "k": 3}
                )
                first = asyncio.create_task(app.handle(request))
                await asyncio.sleep(0.05)
                await app.handle(request)
                await first
                return parse(
                    await app.handle(make_request("GET", "/metrics"))
                )
            finally:
                await drained(app)

        metrics = asyncio.run(scenario())
        assert metrics["server"]["shed_total"] == 1
        assert metrics["admission"]["shed_total"] == 1

    def test_queue_admits_after_slot_frees(self, db):
        async def scenario():
            app = make_app(db, max_inflight=1, max_queue=8)
            try:
                request = make_request(
                    "POST", "/v1/query", {"aggregation": "min", "k": 3}
                )
                return await asyncio.gather(
                    *(app.handle(request) for _ in range(6))
                )
            finally:
                await drained(app)

        responses = asyncio.run(scenario())
        assert [r.status for r in responses] == [200] * 6


class TestCursor:
    def open_request(self, page_size=10):
        return make_request(
            "POST",
            "/v1/cursor",
            {"aggregation": "min", "page_size": page_size},
        )

    def test_full_lifecycle(self, db):
        async def scenario():
            app = make_app(db)
            try:
                opened = await app.handle(self.open_request())
                cursor_id = parse(opened)["cursor_id"]
                first = await app.handle(
                    make_request("GET", f"/v1/cursor/{cursor_id}/next")
                )
                described = await app.handle(
                    make_request("GET", f"/v1/cursor/{cursor_id}")
                )
                closed = await app.handle(
                    make_request("DELETE", f"/v1/cursor/{cursor_id}")
                )
                after_close = await app.handle(
                    make_request("GET", f"/v1/cursor/{cursor_id}/next")
                )
                return opened, first, described, closed, after_close
            finally:
                await drained(app)

        opened, first, described, closed, after_close = asyncio.run(
            scenario()
        )
        assert opened.status == 201
        body = parse(opened)
        assert body["next"] == f"/v1/cursor/{body['cursor_id']}/next"
        page = parse(first)
        assert first.status == 200
        assert len(page["items"]) == 10
        assert page["pages_fetched"] == 1
        assert page["remaining"] == N - 10
        assert not page["done"]
        assert parse(described)["pages_served"] == 1
        assert closed.status == 200
        assert after_close.status == 404

    def test_pages_match_direct_cursor(self, db):
        direct = Engine.over(db).query(MINIMUM).cursor()
        direct_pages = [direct.next_k(20) for _ in range(3)]

        async def scenario():
            app = make_app(db)
            try:
                opened = await app.handle(self.open_request(page_size=20))
                cursor_id = parse(opened)["cursor_id"]
                return [
                    parse(
                        await app.handle(
                            make_request(
                                "GET", f"/v1/cursor/{cursor_id}/next"
                            )
                        )
                    )
                    for _ in range(3)
                ]
            finally:
                await drained(app)

        wire_pages = asyncio.run(scenario())
        for wire, page in zip(wire_pages, direct_pages):
            assert [
                (item["obj"], item["grade"]) for item in wire["items"]
            ] == [(item.obj, item.grade) for item in page.items]

    def test_paging_to_exhaustion_reports_done(self, db):
        async def scenario():
            app = make_app(db)
            try:
                opened = await app.handle(self.open_request(page_size=100))
                cursor_id = parse(opened)["cursor_id"]
                pages = []
                for _ in range(N // 100 + 2):
                    page = parse(
                        await app.handle(
                            make_request(
                                "GET", f"/v1/cursor/{cursor_id}/next"
                            )
                        )
                    )
                    pages.append(page)
                    if page["done"]:
                        break
                return pages
            finally:
                await drained(app)

        pages = asyncio.run(scenario())
        assert pages[-1]["done"]
        total = sum(len(page["items"]) for page in pages)
        assert total == N
        # A post-done fetch is an empty done page, not an error.
        assert pages[-1]["remaining"] == 0

    def test_invalid_page_size_400(self, db):
        async def scenario():
            app = make_app(db)
            try:
                return await app.handle(self.open_request(page_size=0))
            finally:
                await drained(app)

        response = asyncio.run(scenario())
        assert response.status == 400
        assert parse(response)["error"]["code"] == "invalid_page_size"

    def test_unknown_cursor_404(self, db):
        async def scenario():
            app = make_app(db)
            try:
                return await app.handle(
                    make_request("GET", "/v1/cursor/ffffffffffffffff/next")
                )
            finally:
                await drained(app)

        response = asyncio.run(scenario())
        assert response.status == 404
        assert parse(response)["error"]["code"] == "unknown_cursor"

    def test_session_limit_503(self, db):
        async def scenario():
            app = make_app(db, max_cursors=2)
            try:
                responses = [
                    await app.handle(self.open_request()) for _ in range(3)
                ]
                return responses
            finally:
                await drained(app)

        responses = asyncio.run(scenario())
        assert [r.status for r in responses] == [201, 201, 503]
        assert parse(responses[2])["error"]["code"] == "too_many_cursors"


class TestControlPlane:
    def test_healthz_ok(self, db):
        async def scenario():
            app = make_app(db)
            try:
                return await app.handle(make_request("GET", "/healthz"))
            finally:
                await drained(app)

        response = asyncio.run(scenario())
        assert response.status == 200
        body = parse(response)
        assert body["status"] == "ok"
        assert body["version"]

    def test_metrics_reports_engine_ledger_and_latency(self, db):
        async def scenario():
            app = make_app(db)
            try:
                await app.handle(
                    make_request(
                        "POST", "/v1/query", {"aggregation": "min", "k": 5}
                    )
                )
                opened = await app.handle(
                    make_request(
                        "POST",
                        "/v1/cursor",
                        {"aggregation": "mean", "page_size": 10},
                    )
                )
                cursor_id = parse(opened)["cursor_id"]
                await app.handle(
                    make_request("GET", f"/v1/cursor/{cursor_id}/next")
                )
                return parse(
                    await app.handle(make_request("GET", "/metrics"))
                )
            finally:
                await drained(app)

        metrics = asyncio.run(scenario())
        assert metrics["server"]["requests_total"] == 3
        assert metrics["server"]["qps"] > 0
        assert metrics["server"]["latency"]["p50_ms"] is not None
        assert metrics["server"]["latency"]["p99_ms"] is not None
        assert metrics["engine"]["queries"] == 1
        assert metrics["engine"]["cursor_pages"] == 1
        assert metrics["engine"]["access"]["total"] > 0
        assert metrics["cursors"]["active"] == 1
        # The adaptive planner block rides along: the one-shot query
        # consulted the chooser; the cursor (by contract) did not.
        planner = metrics["engine"]["planner"]
        assert planner["enabled"] is True
        assert planner["chooser"]["decisions"] == 1


class TestDrain:
    def test_drain_refuses_new_work_control_plane_survives(self, db):
        async def scenario():
            app = make_app(db)
            summary = await app.shutdown(grace_s=1.0)
            refused = await app.handle(
                make_request(
                    "POST", "/v1/query", {"aggregation": "min", "k": 3}
                )
            )
            health = await app.handle(make_request("GET", "/healthz"))
            metrics = await app.handle(make_request("GET", "/metrics"))
            return summary, refused, health, metrics

        summary, refused, health, metrics = asyncio.run(scenario())
        assert summary["forced"] is False
        assert refused.status == 503
        assert parse(refused)["error"]["code"] == "draining"
        assert health.status == 503
        assert parse(health)["status"] == "draining"
        assert metrics.status == 200  # post-drain scrape still works

    def test_drain_closes_live_cursors(self, db):
        async def scenario():
            app = make_app(db)
            opened = await app.handle(
                make_request(
                    "POST", "/v1/cursor", {"aggregation": "min"}
                )
            )
            assert opened.status == 201
            return await app.shutdown(grace_s=1.0)

        summary = asyncio.run(scenario())
        assert summary["cursors_closed"] == 1

    def test_shutdown_idempotent(self, db):
        async def scenario():
            app = make_app(db)
            first = await app.shutdown(grace_s=1.0)
            second = await app.shutdown(grace_s=1.0)
            return first, second

        first, second = asyncio.run(scenario())
        assert "forced" in first
        assert second == {"already_drained": True}
