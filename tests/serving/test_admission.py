"""Admission control: bounded in-flight slots, queue-depth shedding."""

import asyncio

import pytest

from repro.serving import AdmissionController, ServingError


def run(coro):
    return asyncio.run(coro)


class TestAdmit:
    def test_admits_within_capacity(self):
        async def scenario():
            admission = AdmissionController(2, 0)
            async with admission.admit():
                snap = admission.snapshot()
                assert snap["in_flight"] == 1
            assert admission.snapshot()["in_flight"] == 0

        run(scenario())

    def test_sheds_past_queue_bound(self):
        async def scenario():
            admission = AdmissionController(1, 0, retry_after_s=2.5)
            release = asyncio.Event()

            async def occupant():
                async with admission.admit():
                    await release.wait()

            task = asyncio.create_task(occupant())
            await asyncio.sleep(0)  # let the occupant take the slot
            with pytest.raises(ServingError) as excinfo:
                async with admission.admit():
                    pass  # pragma: no cover - never admitted
            release.set()
            await task
            return excinfo.value

        error = run(scenario())
        assert error.status == 503
        assert error.code == "overloaded"
        assert error.retry_after_s == 2.5

    def test_queue_absorbs_burst_before_shedding(self):
        """With max_queue=1 a second request waits instead of shedding;
        a third sheds immediately."""

        async def scenario():
            admission = AdmissionController(1, 1)
            release = asyncio.Event()
            order: list[str] = []

            async def occupant():
                async with admission.admit():
                    order.append("first")
                    await release.wait()

            async def queued():
                async with admission.admit():
                    order.append("second")

            first = asyncio.create_task(occupant())
            await asyncio.sleep(0)
            second = asyncio.create_task(queued())
            await asyncio.sleep(0)  # second is now parked in the queue
            with pytest.raises(ServingError):
                async with admission.admit():
                    pass  # pragma: no cover
            shed_snapshot = admission.snapshot()
            release.set()
            await asyncio.gather(first, second)
            return order, shed_snapshot

        order, snap = run(scenario())
        assert order == ["first", "second"]
        assert snap["shed_total"] == 1
        assert snap["waiting"] == 1

    def test_admitted_total_counts(self):
        async def scenario():
            admission = AdmissionController(4, 0)
            for _ in range(3):
                async with admission.admit():
                    pass
            return admission.snapshot()

        assert run(scenario())["admitted_total"] == 3


class TestDrain:
    def test_drain_waits_for_in_flight(self):
        async def scenario():
            admission = AdmissionController(2, 0)
            release = asyncio.Event()
            done: list[str] = []

            async def occupant():
                async with admission.admit():
                    await release.wait()
                    done.append("work")

            task = asyncio.create_task(occupant())
            await asyncio.sleep(0)
            drain = asyncio.create_task(admission.drain())
            await asyncio.sleep(0)
            assert not drain.done()  # blocked on the live request
            release.set()
            await task
            await drain
            done.append("drained")
            return done

        assert run(scenario())[-1] == "drained"

    def test_drain_immediate_when_idle(self):
        async def scenario():
            admission = AdmissionController(2, 0)
            await asyncio.wait_for(admission.drain(), 1.0)

        run(scenario())


class TestValidation:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            AdmissionController(0, 0)
        with pytest.raises(ValueError):
            AdmissionController(1, -1)
