"""Cursor-session store: TTL eviction, bounds, lifecycle errors."""

import pytest

from repro.serving import CursorSessionStore, ServingError


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class FakeCursor:
    """Stands in for AsyncResultCursor; the store never pages it."""

    pages_fetched = 0
    answers_fetched = 0
    remaining = None


def make_store(**kwargs) -> tuple[CursorSessionStore, FakeClock]:
    clock = FakeClock()
    store = CursorSessionStore(clock=clock, **kwargs)
    return store, clock


class TestLifecycle:
    def test_create_get_close(self):
        store, _ = make_store()
        session = store.create(FakeCursor(), {"aggregation": "min"})
        assert store.get(session.id) is session
        closed = store.close(session.id)
        assert closed is session
        assert len(store) == 0
        assert store.closed_total == 1

    def test_ids_are_unguessable_and_unique(self):
        store, _ = make_store()
        ids = {store.create(FakeCursor(), {}).id for _ in range(50)}
        assert len(ids) == 50
        assert all(len(i) == 16 for i in ids)  # token_hex(8)

    def test_unknown_id_is_404(self):
        store, _ = make_store()
        with pytest.raises(ServingError) as excinfo:
            store.get("deadbeefdeadbeef")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "unknown_cursor"

    def test_describe_reports_paging_state(self):
        store, clock = make_store()
        session = store.create(FakeCursor(), {"aggregation": "min"})
        clock.advance(2.0)
        described = session.describe(clock())
        assert described["age_s"] == pytest.approx(2.0)
        assert described["pages_served"] == 0
        assert described["remaining"] is None


class TestTtl:
    def test_expired_session_is_410_and_deleted(self):
        store, clock = make_store(ttl_s=10.0)
        session = store.create(FakeCursor(), {})
        clock.advance(10.1)
        with pytest.raises(ServingError) as excinfo:
            store.get(session.id)
        assert excinfo.value.status == 410
        assert excinfo.value.code == "cursor_expired"
        assert len(store) == 0
        assert store.expired_total == 1

    def test_touch_refreshes_ttl(self):
        store, clock = make_store(ttl_s=10.0)
        session = store.create(FakeCursor(), {})
        clock.advance(8.0)
        store.get(session.id)  # touch
        clock.advance(8.0)
        assert store.get(session.id) is session  # 16 s old, 8 s idle

    def test_evict_expired_sweeps_only_stale(self):
        store, clock = make_store(ttl_s=10.0)
        stale = store.create(FakeCursor(), {})
        clock.advance(6.0)
        fresh = store.create(FakeCursor(), {})
        clock.advance(5.0)  # stale idle 11 s > ttl; fresh idle 5 s
        assert store.evict_expired() == 1
        assert len(store) == 1
        assert store.get(fresh.id) is fresh
        with pytest.raises(ServingError):
            store.get(stale.id)


class TestBounds:
    def test_sheds_at_session_limit(self):
        store, _ = make_store(max_sessions=2)
        store.create(FakeCursor(), {})
        store.create(FakeCursor(), {})
        with pytest.raises(ServingError) as excinfo:
            store.create(FakeCursor(), {})
        assert excinfo.value.status == 503
        assert excinfo.value.code == "too_many_cursors"
        assert excinfo.value.retry_after_s == store.ttl_s

    def test_expired_sessions_free_capacity(self):
        store, clock = make_store(max_sessions=1, ttl_s=5.0)
        store.create(FakeCursor(), {})
        clock.advance(6.0)
        store.create(FakeCursor(), {})  # eviction makes room
        assert len(store) == 1

    def test_drain_closes_everything(self):
        store, _ = make_store()
        for _ in range(3):
            store.create(FakeCursor(), {})
        assert store.drain() == 3
        assert len(store) == 0

    def test_snapshot_counters(self):
        store, clock = make_store(ttl_s=5.0)
        session = store.create(FakeCursor(), {})
        store.close(session.id)
        store.create(FakeCursor(), {})
        clock.advance(6.0)
        store.evict_expired()
        snap = store.snapshot()
        assert snap["active"] == 0
        assert snap["created_total"] == 2
        assert snap["closed_total"] == 1
        assert snap["expired_total"] == 1


class TestValidation:
    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            CursorSessionStore(ttl_s=0)
        with pytest.raises(ValueError):
            CursorSessionStore(max_sessions=0)
