"""Tests for the mean-family aggregations ([TZZ79], Remark 6.1)."""

import pytest

from repro.core.means import (
    ARITHMETIC_MEAN,
    GEOMETRIC_MEAN,
    HARMONIC_MEAN,
    MEDIAN,
    GymnasticsTrimmedMean,
    WeightedArithmeticMean,
    WeightedGeometricMean,
    median3,
    quasi_arithmetic_mean,
)
from repro.core.properties import check_monotone, check_strict


class TestArithmeticMean:
    def test_value(self):
        assert ARITHMETIC_MEAN(0.2, 0.8) == pytest.approx(0.5)

    def test_not_conservative(self):
        """The paper's point: mean(0, 1) = 1/2, not 0 — not a t-norm."""
        assert ARITHMETIC_MEAN(0.0, 1.0) == pytest.approx(0.5)

    def test_monotone_and_strict(self):
        assert check_monotone(ARITHMETIC_MEAN, 2)
        assert check_strict(ARITHMETIC_MEAN, 2)
        assert ARITHMETIC_MEAN.monotone and ARITHMETIC_MEAN.strict


class TestGeometricMean:
    def test_value(self):
        assert GEOMETRIC_MEAN(0.25, 1.0) == pytest.approx(0.5)

    def test_zero_annihilates(self):
        assert GEOMETRIC_MEAN(0.0, 0.9) == 0.0

    def test_monotone_and_strict(self):
        assert check_monotone(GEOMETRIC_MEAN, 3)
        assert check_strict(GEOMETRIC_MEAN, 3)


class TestHarmonicMean:
    def test_value(self):
        assert HARMONIC_MEAN(0.5, 1.0) == pytest.approx(2 / 3)

    def test_zero_extension(self):
        assert HARMONIC_MEAN(0.0, 0.9) == 0.0

    def test_monotone_and_strict(self):
        assert check_monotone(HARMONIC_MEAN, 2)
        assert check_strict(HARMONIC_MEAN, 2)


class TestWeightedMeans:
    def test_weights_normalised(self):
        wam = WeightedArithmeticMean([2, 2])
        assert wam.weights == [0.5, 0.5]

    def test_weighted_value(self):
        wam = WeightedArithmeticMean([3, 1])
        assert wam(1.0, 0.0) == pytest.approx(0.75)

    def test_arity_enforced(self):
        wam = WeightedArithmeticMean([1, 1])
        with pytest.raises(Exception):
            wam(0.5)

    def test_zero_weight_breaks_strictness(self):
        wam = WeightedArithmeticMean([1, 0])
        assert not wam.strict
        assert wam(1.0, 0.3) == 1.0  # value 1 with an argument below 1

    def test_all_positive_weights_strict(self):
        assert WeightedArithmeticMean([1, 2, 3]).strict

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            WeightedArithmeticMean([1, -1])

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            WeightedGeometricMean([0, 0])

    def test_weighted_geometric_value(self):
        wgm = WeightedGeometricMean([1, 1])
        assert wgm(0.25, 1.0) == pytest.approx(0.5)

    def test_weighted_geometric_zero(self):
        wgm = WeightedGeometricMean([1, 1])
        assert wgm(0.0, 1.0) == 0.0

    def test_weighted_geometric_zero_weight_ignores_argument(self):
        wgm = WeightedGeometricMean([1, 0])
        assert wgm(0.5, 0.0) == pytest.approx(0.5)


class TestMedian:
    def test_odd_median(self):
        assert MEDIAN(0.1, 0.9, 0.5) == 0.5

    def test_even_median_is_lower(self):
        assert MEDIAN(0.1, 0.2, 0.8, 0.9) == 0.2

    def test_monotone_not_strict(self):
        """Remark 6.1: the median is monotone but not strict."""
        assert check_monotone(MEDIAN, 3)
        assert not check_strict(MEDIAN, 3)
        assert MEDIAN(1.0, 1.0, 0.0) == 1.0  # strictness witness

    def test_identity_13(self):
        """median(a1,a2,a3) = max of pairwise mins — the paper's (13)."""
        import itertools

        grid = (0.0, 0.2, 0.5, 0.7, 1.0)
        for a, b, c in itertools.product(grid, repeat=3):
            assert MEDIAN(a, b, c) == pytest.approx(median3(a, b, c))


class TestGymnasticsTrimmedMean:
    def test_three_judges_is_median(self):
        tm = GymnasticsTrimmedMean(3)
        assert tm(0.2, 0.9, 0.5) == 0.5

    def test_five_judges(self):
        tm = GymnasticsTrimmedMean(5)
        # drop 0.1 and 0.9; average 0.2, 0.5, 0.8
        assert tm(0.1, 0.2, 0.5, 0.8, 0.9) == pytest.approx(0.5)

    def test_not_strict(self):
        tm = GymnasticsTrimmedMean(3)
        assert not check_strict(tm, 3)
        assert not tm.strict

    def test_monotone(self):
        assert check_monotone(GymnasticsTrimmedMean(3), 3)

    def test_needs_three_judges(self):
        with pytest.raises(ValueError):
            GymnasticsTrimmedMean(2)

    def test_arity_enforced(self):
        with pytest.raises(Exception):
            GymnasticsTrimmedMean(3)(0.5, 0.6)


class TestQuasiArithmeticMean:
    def test_recovers_arithmetic(self):
        value = quasi_arithmetic_mean([0.2, 0.8], lambda x: x, lambda x: x)
        assert value == pytest.approx(0.5)

    def test_recovers_quadratic_mean(self):
        value = quasi_arithmetic_mean(
            [0.0, 1.0], lambda x: x * x, lambda x: x**0.5
        )
        assert value == pytest.approx((0.5) ** 0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            quasi_arithmetic_mean([], lambda x: x, lambda x: x)
