"""Tests for the aggregation-function base machinery (Section 3)."""

import pytest

from repro.core.aggregation import (
    ConstantAggregation,
    FunctionAggregation,
    iterated,
)
from repro.core.tnorms import ALGEBRAIC_PRODUCT, MINIMUM
from repro.exceptions import AggregationArityError, GradeRangeError


class TestCallValidation:
    def test_validates_grades(self):
        with pytest.raises(GradeRangeError):
            MINIMUM(0.5, 1.5)

    def test_rejects_zero_arguments(self):
        with pytest.raises(AggregationArityError):
            MINIMUM()

    def test_fixed_arity_enforced(self):
        fixed = FunctionAggregation(lambda a, b: a * b, "pair-only", arity=2)
        with pytest.raises(AggregationArityError):
            fixed(0.1, 0.2, 0.3)
        assert fixed(0.5, 0.5) == 0.25

    def test_output_clamped(self):
        overshoot = FunctionAggregation(
            lambda *gs: 1.0 + 1e-15, "overshoot", monotone=True
        )
        assert overshoot(0.5) == 1.0

    def test_on_sequence_mirror(self):
        assert MINIMUM.on_sequence([0.4, 0.2, 0.9]) == 0.2

    def test_repr(self):
        assert "min" in repr(MINIMUM)


class TestBinaryIteration:
    """Section 3: m-ary by iterating the 2-ary function (a left fold)."""

    def test_left_fold_matches_manual(self):
        manual = ALGEBRAIC_PRODUCT.pair(
            ALGEBRAIC_PRODUCT.pair(0.9, 0.8), 0.7
        )
        assert ALGEBRAIC_PRODUCT(0.9, 0.8, 0.7) == pytest.approx(manual)

    def test_fold_order_immaterial_for_associative(self):
        right = ALGEBRAIC_PRODUCT.pair(
            0.9, ALGEBRAIC_PRODUCT.pair(0.8, 0.7)
        )
        assert ALGEBRAIC_PRODUCT(0.9, 0.8, 0.7) == pytest.approx(right)


class TestConstantAggregation:
    def test_always_returns_constant(self):
        const = ConstantAggregation(0.4)
        assert const(0.0) == 0.4
        assert const(1.0, 1.0, 1.0) == 0.4

    def test_monotone_not_strict(self):
        const = ConstantAggregation(0.4)
        assert const.monotone
        assert not const.strict

    def test_validates_constant(self):
        with pytest.raises(GradeRangeError):
            ConstantAggregation(1.4)

    def test_name(self):
        assert "0.4" in ConstantAggregation(0.4).name


class TestFunctionAggregation:
    def test_wraps_callable(self):
        avg = FunctionAggregation(
            lambda *gs: sum(gs) / len(gs), "my-mean", monotone=True, strict=True
        )
        assert avg(0.2, 0.8) == pytest.approx(0.5)
        assert avg.monotone and avg.strict

    def test_iterated_helper(self):
        lukas = iterated(lambda x, y: max(0.0, x + y - 1.0), "lukasiewicz")
        assert lukas(0.9, 0.9, 0.9) == pytest.approx(0.7)
