"""Tests for fuzzy query evaluation (the Section 3 rules)."""

import pytest

from repro.core.graded_set import GradedSet
from repro.core.means import MEDIAN
from repro.core.query import And, Ft, Not, Or, Weighted, atom
from repro.core.semantics import STANDARD_FUZZY, FuzzySemantics
from repro.core.tconorms import ALGEBRAIC_SUM
from repro.core.tnorms import ALGEBRAIC_PRODUCT

A, B, C = atom("A"), atom("B"), atom("C")


class TestStandardRules:
    def test_conjunction_rule_is_min(self):
        assert STANDARD_FUZZY.evaluate(A & B, {A: 0.3, B: 0.8}) == 0.3

    def test_disjunction_rule_is_max(self):
        assert STANDARD_FUZZY.evaluate(A | B, {A: 0.3, B: 0.8}) == 0.8

    def test_negation_rule(self):
        assert STANDARD_FUZZY.evaluate(~A, {A: 0.3}) == pytest.approx(0.7)

    def test_nested_combination(self):
        # min(0.9, max(0.2, 0.6)) = 0.6
        q = And((A, Or((B, C))))
        grades = {A: 0.9, B: 0.2, C: 0.6}
        assert STANDARD_FUZZY.evaluate(q, grades) == pytest.approx(0.6)

    def test_conservative_extension_of_propositional_logic(self):
        """On {0,1} grades the rules reduce to Boolean logic (Section 3)."""
        import itertools

        for va, vb in itertools.product((0.0, 1.0), repeat=2):
            grades = {A: va, B: vb}
            assert STANDARD_FUZZY.evaluate(A & B, grades) == min(va, vb)
            assert STANDARD_FUZZY.evaluate(A | B, grades) == max(va, vb)
            assert STANDARD_FUZZY.evaluate(~A, grades) == 1.0 - va

    def test_missing_atom_is_an_error(self):
        with pytest.raises(KeyError, match="no grade supplied"):
            STANDARD_FUZZY.evaluate(A & B, {A: 0.5})

    def test_hard_query_peak_at_half(self):
        """Section 7: mu_{Q AND NOT Q} peaks at 1/2 when mu_Q = 1/2."""
        q = And((A, Not(A)))
        assert STANDARD_FUZZY.evaluate(q, {A: 0.5}) == pytest.approx(0.5)
        for g in (0.0, 0.2, 0.8, 1.0):
            assert STANDARD_FUZZY.evaluate(q, {A: g}) <= 0.5


class TestAlternativeSemantics:
    def test_product_semantics(self):
        sem = FuzzySemantics(tnorm=ALGEBRAIC_PRODUCT, conorm=ALGEBRAIC_SUM)
        assert sem.evaluate(A & B, {A: 0.5, B: 0.4}) == pytest.approx(0.2)
        assert sem.evaluate(A | B, {A: 0.5, B: 0.4}) == pytest.approx(0.7)

    def test_ft_node_uses_its_own_aggregation(self):
        q = Ft(MEDIAN, (A, B, C))
        grades = {A: 0.1, B: 0.9, C: 0.4}
        assert STANDARD_FUZZY.evaluate(q, grades) == 0.4

    def test_weighted_node(self):
        q = Weighted((A, B), [1, 1])  # equal weights -> plain min
        grades = {A: 0.3, B: 0.8}
        assert STANDARD_FUZZY.evaluate(q, grades) == pytest.approx(0.3)


class TestSetEvaluation:
    def test_evaluate_sets_matches_pointwise(self):
        atom_sets = {
            A: GradedSet({"x": 0.9, "y": 0.1}),
            B: GradedSet({"x": 0.4, "y": 0.7}),
        }
        result = STANDARD_FUZZY.evaluate_sets(A & B, atom_sets, ["x", "y"])
        assert result.grade("x") == pytest.approx(0.4)
        assert result.grade("y") == pytest.approx(0.1)

    def test_missing_objects_grade_zero(self):
        atom_sets = {A: GradedSet({"x": 0.9})}
        result = STANDARD_FUZZY.evaluate_sets(A, atom_sets, ["x", "y"])
        assert result.grade("y") == 0.0

    def test_negation_over_universe(self):
        atom_sets = {A: GradedSet({"x": 0.9})}
        result = STANDARD_FUZZY.evaluate_sets(Not(A), atom_sets, ["x", "y"])
        assert result.grade("y") == 1.0


class TestClassification:
    def test_atom_is_monotone_strict(self):
        c = STANDARD_FUZZY.classify(A)
        assert c.monotone and c.strict

    def test_and_of_atoms(self):
        c = STANDARD_FUZZY.classify(A & B)
        assert c.monotone and c.strict

    def test_or_is_not_strict(self):
        c = STANDARD_FUZZY.classify(A | B)
        assert c.monotone and not c.strict

    def test_not_kills_both(self):
        c = STANDARD_FUZZY.classify(~A)
        assert not c.monotone and not c.strict

    def test_negation_inside_conjunction(self):
        c = STANDARD_FUZZY.classify(A & ~B)
        assert not c.monotone

    def test_ft_median(self):
        c = STANDARD_FUZZY.classify(Ft(MEDIAN, (A, B, C)))
        assert c.monotone and not c.strict

    def test_weighted_all_positive(self):
        c = STANDARD_FUZZY.classify(Weighted((A, B), [2, 1]))
        assert c.monotone and c.strict

    def test_weighted_with_zero_weight_not_strict(self):
        c = STANDARD_FUZZY.classify(Weighted((A, B), [1, 0]))
        assert c.monotone and not c.strict

    def test_nested_and_or(self):
        c = STANDARD_FUZZY.classify(And((A, Or((B, C)))))
        assert c.monotone and not c.strict
