"""Tests for the quality-contract layer (core/certify.py)."""

import math

import pytest

from repro.core.certify import (
    EXACT,
    EXACT_GUARANTEE,
    CertifiedResult,
    GradeBounds,
    Guarantee,
    QualityContract,
    StoppingRule,
    as_contract,
    validate_epsilon,
)


class TestValidateEpsilon:
    def test_accepts_zero_and_positive(self):
        assert validate_epsilon(0) == 0.0
        assert validate_epsilon(0.25) == 0.25

    def test_normalises_to_float(self):
        value = validate_epsilon(1)
        assert isinstance(value, float) and value == 1.0

    @pytest.mark.parametrize("bad", [-0.1, float("nan"), float("inf"), "x", None])
    def test_rejects_invalid(self, bad):
        with pytest.raises(ValueError):
            validate_epsilon(bad)


class TestQualityContract:
    def test_default_is_exact(self):
        contract = QualityContract()
        assert contract.kind == "exact" and contract.epsilon == 0.0

    def test_approximate_zero_is_exact_singleton(self):
        assert QualityContract.approximate(0.0) is EXACT

    def test_approximate_carries_epsilon(self):
        contract = QualityContract.approximate(0.1)
        assert contract.kind == "approximate"
        assert contract.epsilon == 0.1
        assert contract.relaxation == pytest.approx(1.1)

    def test_exact_cannot_carry_slack(self):
        with pytest.raises(ValueError):
            QualityContract("exact", 0.5)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            QualityContract("best-effort")

    def test_anytime(self):
        contract = QualityContract.anytime()
        assert contract.kind == "anytime" and contract.epsilon == 0.0

    def test_as_dict(self):
        assert QualityContract.approximate(0.2).as_dict() == {
            "kind": "approximate",
            "epsilon": 0.2,
        }


class TestAsContract:
    def test_none_is_exact(self):
        assert as_contract(None) is EXACT

    def test_contract_passthrough(self):
        contract = QualityContract.approximate(0.3)
        assert as_contract(contract) is contract

    def test_number_is_approximate(self):
        assert as_contract(0.5).epsilon == 0.5
        assert as_contract(0) is EXACT
        assert as_contract(0.0) is EXACT

    def test_bool_rejected(self):
        with pytest.raises(ValueError):
            as_contract(True)

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            as_contract("exactish")


class TestStoppingRule:
    def test_exact_met_is_verbatim_comparison(self):
        rule = StoppingRule(0.0)
        assert rule.exact
        assert rule.met(0.5, 0.5)
        assert not rule.met(0.5, 0.5000001)

    def test_relaxed_met_stops_early(self):
        rule = StoppingRule(0.1)
        # (1.1)(0.5) = 0.55 >= 0.54: an exact rule would keep going.
        assert rule.met(0.5, 0.54)
        assert not StoppingRule(0.0).met(0.5, 0.54)

    def test_still_viable_is_dual_of_met(self):
        for eps in (0.0, 0.05, 0.3):
            rule = StoppingRule(eps)
            for kth, upper in [(0.5, 0.52), (0.5, 0.5), (0.4, 0.9)]:
                assert rule.still_viable(upper, kth) == (
                    upper > rule.limit(kth)
                )

    def test_limit_identity_at_zero(self):
        # Bit-identity: the exact branch must return the value verbatim,
        # not 1.0 * value.
        value = 0.1 + 0.2  # a float with representation noise
        assert StoppingRule(0.0).limit(value) is value

    def test_limit_scales(self):
        assert StoppingRule(0.5).limit(0.4) == pytest.approx(0.6)

    def test_sorted_phase_done_never_relaxes(self):
        # FA's match-count stop observes no grades: same test at any ε.
        for eps in (0.0, 0.5, 10.0):
            rule = StoppingRule(eps)
            assert rule.sorted_phase_done(3, 3)
            assert not rule.sorted_phase_done(2, 3)

    def test_guarantee_exact(self):
        assert StoppingRule(0.0).guarantee() is EXACT_GUARANTEE

    def test_guarantee_approximate_records_threshold(self):
        guarantee = StoppingRule(0.2).guarantee(0.7)
        assert guarantee.kind == "approximate"
        assert guarantee.epsilon == 0.2
        assert guarantee.threshold == 0.7


class TestGuarantee:
    def test_exact_flag(self):
        assert EXACT_GUARANTEE.is_exact
        assert not Guarantee("approximate", 0.1).is_exact

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Guarantee("vibes")

    def test_as_dict_omits_missing_threshold(self):
        assert Guarantee("exact").as_dict() == {"kind": "exact", "epsilon": 0.0}
        assert Guarantee("anytime", 0.0, 0.8).as_dict() == {
            "kind": "anytime",
            "epsilon": 0.0,
            "threshold": 0.8,
        }


class TestGradeBounds:
    def test_interval(self):
        bounds = GradeBounds(0.2, 0.6)
        assert bounds.width == pytest.approx(0.4)
        assert bounds.contains(0.2) and bounds.contains(0.6)
        assert not bounds.contains(0.7)
        assert not bounds.exact

    def test_degenerate_is_exact(self):
        assert GradeBounds(0.5, 0.5).exact

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            GradeBounds(0.6, 0.2)


class TestCertifiedResult:
    def test_shape(self):
        from repro.access.types import GradedItem

        items = (GradedItem("a", 0.9), GradedItem("b", 0.8))
        result = CertifiedResult(
            items=items,
            guarantee=Guarantee("anytime", 0.0, threshold=0.7),
            bounds={"a": GradeBounds(0.9, 0.9), "b": GradeBounds(0.8, 0.8)},
        )
        assert result.answers == 2
        payload = result.as_dict()
        assert payload["guarantee"]["threshold"] == 0.7
        assert payload["bounds"]["a"] == (0.9, 0.9)
        assert math.isclose(payload["items"][0]["grade"], 0.9)
