"""Tests for the Fagin-Wimmers weighted-conjunction formula ([FW97])."""

import itertools

import pytest

from repro.core.properties import check_monotone, check_strict
from repro.core.tnorms import ALGEBRAIC_PRODUCT, MINIMUM
from repro.core.weights import FaginWimmersWeighting

GRID = (0.0, 0.25, 0.5, 0.75, 1.0)


class TestNormalisation:
    def test_normalise(self):
        assert FaginWimmersWeighting.normalise([2, 2]) == (0.5, 0.5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            FaginWimmersWeighting.normalise([])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            FaginWimmersWeighting.normalise([1, -0.5])

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            FaginWimmersWeighting.normalise([0, 0])


class TestFormulaIdentities:
    def test_equal_weights_recover_base(self):
        """With theta_i = 1/m the formula collapses to t itself."""
        w = FaginWimmersWeighting(MINIMUM, [1, 1, 1])
        for gs in itertools.product(GRID, repeat=3):
            assert w(*gs) == pytest.approx(MINIMUM(*gs))

    def test_full_weight_on_one_conjunct_projects(self):
        """theta = (1, 0): the query degenerates to its first conjunct."""
        w = FaginWimmersWeighting(MINIMUM, [1, 0])
        for a, b in itertools.product(GRID, repeat=2):
            assert w(a, b) == pytest.approx(a)

    def test_two_conjunct_closed_form(self):
        """For m=2, theta1 >= theta2: f = (th1-th2)*x1 + 2*th2*min."""
        w = FaginWimmersWeighting(MINIMUM, [2, 1])  # thetas 2/3, 1/3
        for a, b in itertools.product(GRID, repeat=2):
            expected = (2 / 3 - 1 / 3) * a + 2 * (1 / 3) * min(a, b)
            assert w(a, b) == pytest.approx(expected)

    def test_color_twice_shape_example(self):
        """The paper's example: 'color is twice as important as shape'."""
        w = FaginWimmersWeighting(MINIMUM, [2, 1])
        # A perfect colour match with a weak shape match beats the reverse.
        assert w(1.0, 0.2) > w(0.2, 1.0)

    def test_weight_order_follows_arguments(self):
        w = FaginWimmersWeighting(MINIMUM, [1, 3])
        w_swapped = FaginWimmersWeighting(MINIMUM, [3, 1])
        assert w(0.9, 0.1) == pytest.approx(w_swapped(0.1, 0.9))

    def test_convex_combination_bounds(self):
        """f lies between min over prefixes and the top grade."""
        w = FaginWimmersWeighting(MINIMUM, [3, 2, 1])
        for gs in itertools.product(GRID, repeat=3):
            assert MINIMUM(*gs) - 1e-12 <= w(*gs) <= max(gs) + 1e-12


class TestProperties:
    def test_monotone(self):
        """[FW97]/Section 4: weighted conjunctions are monotone."""
        w = FaginWimmersWeighting(MINIMUM, [3, 1])
        assert check_monotone(w, 2)
        assert w.monotone

    def test_strict_with_positive_weights(self):
        w = FaginWimmersWeighting(MINIMUM, [3, 1])
        assert check_strict(w, 2)
        assert w.strict

    def test_not_strict_with_zero_weight(self):
        w = FaginWimmersWeighting(MINIMUM, [1, 0])
        assert not w.strict
        assert w(1.0, 0.5) == 1.0

    def test_works_with_other_tnorms(self):
        w = FaginWimmersWeighting(ALGEBRAIC_PRODUCT, [2, 1])
        assert check_monotone(w, 2)
        # equal weights sanity under product
        eq = FaginWimmersWeighting(ALGEBRAIC_PRODUCT, [1, 1])
        assert eq(0.5, 0.4) == pytest.approx(0.2)

    def test_rejects_fixed_arity_base(self):
        from repro.core.means import GymnasticsTrimmedMean

        with pytest.raises(ValueError, match="arity"):
            FaginWimmersWeighting(GymnasticsTrimmedMean(3), [1, 1, 1])

    def test_name_mentions_base_and_weights(self):
        w = FaginWimmersWeighting(MINIMUM, [2, 1])
        assert "min" in w.name
