"""Tests for alpha-cut decomposition (the resolution identity)."""

import hypothesis.strategies as st
import pytest
from hypothesis import given

from repro.core.graded_set import GradedSet


class TestDecompose:
    def test_levels_are_distinct_positive_grades(self):
        gs = GradedSet({"a": 0.2, "b": 0.9, "c": 0.2, "d": 0.0})
        cuts = gs.decompose()
        assert set(cuts) == {0.2, 0.9}

    def test_cuts_are_nested(self):
        gs = GradedSet({"a": 0.2, "b": 0.9, "c": 0.5})
        cuts = gs.decompose()
        levels = sorted(cuts)
        for lo, hi in zip(levels, levels[1:]):
            assert cuts[hi] <= cuts[lo]

    def test_each_cut_content(self):
        gs = GradedSet({"a": 0.2, "b": 0.9, "c": 0.5})
        cuts = gs.decompose()
        assert cuts[0.2] == {"a", "b", "c"}
        assert cuts[0.5] == {"b", "c"}
        assert cuts[0.9] == {"b"}

    def test_empty_set(self):
        assert GradedSet().decompose() == {}

    def test_all_zero_grades(self):
        assert GradedSet({"a": 0.0}).decompose() == {}


class TestFromCuts:
    def test_reconstruction(self):
        cuts = {0.2: ["a", "b"], 0.9: ["b"]}
        gs = GradedSet.from_cuts(cuts)
        assert gs.grade("a") == 0.2
        assert gs.grade("b") == 0.9

    def test_highest_level_wins(self):
        gs = GradedSet.from_cuts({0.5: ["x"], 0.3: ["x"], 0.8: ["x"]})
        assert gs.grade("x") == 0.8

    def test_validates_levels(self):
        with pytest.raises(Exception):
            GradedSet.from_cuts({1.5: ["x"]})


grades = st.sampled_from([0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0])
graded_sets = st.dictionaries(
    st.text(alphabet="abcdef", min_size=1, max_size=2), grades, max_size=10
).map(GradedSet)


class TestResolutionIdentity:
    @given(gs=graded_sets)
    def test_round_trip_equals_support(self, gs):
        """[Za65]: decompose-then-reconstruct recovers the support."""
        assert GradedSet.from_cuts(gs.decompose()) == gs.support()

    @given(gs=graded_sets)
    def test_decomposition_respects_cut_method(self, gs):
        for alpha, members in gs.decompose().items():
            assert members == gs.cut(alpha)
