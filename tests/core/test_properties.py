"""Tests for the property checkers themselves.

The checkers must correctly separate the paper's examples: t-norms are
monotone + strict; max is monotone but not strict; the drastic product
is the strictness lower bound; negation-based functions are not
monotone. A checker that can't reproduce those classifications would
silently invalidate the rest of the suite.
"""


from repro.core.means import ARITHMETIC_MEAN, MEDIAN
from repro.core.properties import (
    PropertyReport,
    check_associative,
    check_commutative,
    check_conjunction_conservation,
    check_de_morgan,
    check_disjunction_conservation,
    check_monotone,
    check_strict,
    classify,
    grid_points,
)
from repro.core.tconorms import MAXIMUM
from repro.core.tnorms import MINIMUM


class TestPropertyReport:
    def test_truthiness(self):
        assert PropertyReport("x", True)
        assert not PropertyReport("x", False)

    def test_repr_mentions_status(self):
        assert "holds" in repr(PropertyReport("mono", True))
        assert "fails" in repr(PropertyReport("mono", False, [(0, 1)]))


class TestGridPoints:
    def test_dimension(self):
        points = list(grid_points(2, (0.0, 1.0)))
        assert len(points) == 4
        assert (0.0, 1.0) in points


class TestMonotoneChecker:
    def test_accepts_min(self):
        assert check_monotone(MINIMUM, 2)

    def test_accepts_mean_ternary(self):
        assert check_monotone(ARITHMETIC_MEAN, 3)

    def test_rejects_negation_style(self):
        def anti(x, y):
            return 1.0 - min(x, y)

        report = check_monotone(anti, 2)
        assert not report
        assert report.counterexamples

    def test_rejects_subtle_violation(self):
        # Monotone everywhere except a dip on x in [0.4, 0.6], where the
        # slope is 0.5 - 1.0 < 0.
        def wobble(x, y):
            base = (x + y) / 2
            if 0.4 <= x <= 0.6:
                base -= 1.0 * (x - 0.4)
            return max(0.0, base)

        assert not check_monotone(wobble, 2)


class TestStrictChecker:
    def test_accepts_min(self):
        assert check_strict(MINIMUM, 2)

    def test_rejects_max(self):
        """Remark 6.1: max is not strict."""
        report = check_strict(MAXIMUM, 2)
        assert not report
        # Counterexample should be a point with value 1 but an arg < 1.
        point, value = report.counterexamples[0]
        assert value >= 1.0 - 1e-12
        assert any(x < 1.0 for x in point)

    def test_rejects_median(self):
        assert not check_strict(MEDIAN, 3)

    def test_rejects_function_missing_top(self):
        # Never reaches 1 at all -> fails the 'if' direction.
        assert not check_strict(lambda x, y: min(x, y) * 0.9, 2)


class TestConservationCheckers:
    def test_conjunction_accepts_min(self):
        assert check_conjunction_conservation(MINIMUM.pair)

    def test_conjunction_rejects_mean(self):
        """mean(0,1) = 1/2 != 0: the paper's non-t-norm witness."""
        assert not check_conjunction_conservation(
            lambda x, y: (x + y) / 2
        )

    def test_disjunction_accepts_max(self):
        assert check_disjunction_conservation(MAXIMUM.pair)

    def test_disjunction_rejects_mean(self):
        assert not check_disjunction_conservation(
            lambda x, y: (x + y) / 2
        )


class TestAlgebraCheckers:
    def test_commutative_accepts_min(self):
        assert check_commutative(MINIMUM.pair)

    def test_commutative_rejects_projection(self):
        assert not check_commutative(lambda x, y: x)

    def test_associative_accepts_min(self):
        assert check_associative(MINIMUM.pair)

    def test_associative_rejects_mean(self):
        # The binary mean is commutative but NOT associative.
        assert not check_associative(lambda x, y: (x + y) / 2)

    def test_de_morgan_accepts_min_max(self):
        assert check_de_morgan(
            MINIMUM.pair, MAXIMUM.pair, lambda x: 1.0 - x
        )

    def test_de_morgan_rejects_mismatched_pair(self):
        # min paired with the algebraic sum is not a De Morgan pair.
        assert not check_de_morgan(
            MINIMUM.pair, lambda x, y: x + y - x * y, lambda x: 1.0 - x
        )


class TestClassify:
    def test_min(self):
        assert classify(MINIMUM, 2) == {"monotone": True, "strict": True}

    def test_max(self):
        assert classify(MAXIMUM, 2) == {"monotone": True, "strict": False}

    def test_median(self):
        assert classify(MEDIAN, 3) == {"monotone": True, "strict": False}
