"""Tests for the query AST (Sections 2-3)."""

import pytest

from repro.core.means import MEDIAN
from repro.core.query import And, AtomicQuery, Ft, Not, Or, Weighted, atom
from repro.core.tnorms import MINIMUM


class TestAtomicQuery:
    def test_crisp_vs_graded(self):
        crisp = AtomicQuery("Artist", "Beatles", op="=")
        graded = AtomicQuery("AlbumColor", "red", op="~")
        assert crisp.crisp
        assert not graded.crisp

    def test_invalid_op(self):
        with pytest.raises(ValueError):
            AtomicQuery("X", "t", op="<")

    def test_empty_attribute(self):
        with pytest.raises(ValueError):
            AtomicQuery("", "t")

    def test_structural_equality(self):
        assert AtomicQuery("X", "t", "=") == AtomicQuery("X", "t", "=")
        assert AtomicQuery("X", "t", "=") != AtomicQuery("X", "t", "~")
        assert hash(AtomicQuery("X", "t")) == hash(AtomicQuery("X", "t"))

    def test_abstract_atom(self):
        a = atom("A1")
        assert a.target is None
        assert a == atom("A1")
        assert a != atom("A2")


class TestConnectives:
    def test_operator_sugar(self):
        a, b = atom("A"), atom("B")
        assert isinstance(a & b, And)
        assert isinstance(a | b, Or)
        assert isinstance(~a, Not)

    def test_and_flattens(self):
        a, b, c = atom("A"), atom("B"), atom("C")
        nested = And((And((a, b)), c))
        assert nested.operands == (a, b, c)

    def test_or_flattens(self):
        a, b, c = atom("A"), atom("B"), atom("C")
        assert Or((a, Or((b, c)))).operands == (a, b, c)

    def test_and_does_not_flatten_or(self):
        a, b, c = atom("A"), atom("B"), atom("C")
        mixed = And((a, Or((b, c))))
        assert len(mixed.operands) == 2

    def test_needs_two_operands(self):
        with pytest.raises(ValueError):
            And((atom("A"),))

    def test_atoms_deduplicated_in_order(self):
        a, b = atom("A"), atom("B")
        q = And((a, Or((b, a))))
        assert q.atoms() == (a, b)

    def test_walk_preorder(self):
        a, b = atom("A"), atom("B")
        q = And((a, b))
        nodes = list(q.walk())
        assert nodes[0] is q
        assert a in nodes and b in nodes

    def test_uses_negation(self):
        a, b = atom("A"), atom("B")
        assert not And((a, b)).uses_negation()
        assert And((a, Not(b))).uses_negation()

    def test_repr_round_trip_shape(self):
        a, b = atom("A"), atom("B")
        assert "AND" in repr(a & b)
        assert "OR" in repr(a | b)
        assert "NOT" in repr(~a)


class TestFt:
    def test_flags_inherited(self):
        q = Ft(MINIMUM, (atom("A"), atom("B")))
        assert q.monotone and q.strict

    def test_median_flags(self):
        q = Ft(MEDIAN, (atom("A"), atom("B"), atom("C")))
        assert q.monotone and not q.strict

    def test_arity_check(self):
        from repro.core.means import GymnasticsTrimmedMean

        with pytest.raises(ValueError, match="arity"):
            Ft(GymnasticsTrimmedMean(3), (atom("A"), atom("B")))

    def test_needs_operands(self):
        with pytest.raises(ValueError):
            Ft(MINIMUM, ())

    def test_equality_by_aggregation_name(self):
        q1 = Ft(MINIMUM, (atom("A"), atom("B")))
        q2 = Ft(MINIMUM, (atom("A"), atom("B")))
        assert q1 == q2


class TestWeighted:
    def test_weights_normalised(self):
        q = Weighted((atom("A"), atom("B")), [2, 1])
        assert q.weights == pytest.approx((2 / 3, 1 / 3))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            Weighted((atom("A"),), [1, 2])

    def test_negative_weight(self):
        with pytest.raises(ValueError):
            Weighted((atom("A"), atom("B")), [1, -1])

    def test_children(self):
        a, b = atom("A"), atom("B")
        assert Weighted((a, b), [1, 1]).children() == (a, b)
