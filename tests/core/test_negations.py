"""Tests for the negation families."""

import pytest

from repro.core.negations import (
    STANDARD_NEGATION,
    StandardNegation,
    SugenoNegation,
    YagerNegation,
)
from repro.exceptions import GradeRangeError

GRID = [i / 20 for i in range(21)]


class TestStandardNegation:
    def test_rule(self):
        assert STANDARD_NEGATION(0.3) == pytest.approx(0.7)

    def test_boundaries(self):
        assert STANDARD_NEGATION(0.0) == 1.0
        assert STANDARD_NEGATION(1.0) == 0.0

    def test_involutive(self):
        assert STANDARD_NEGATION.is_involutive()

    def test_validates_input(self):
        with pytest.raises(GradeRangeError):
            STANDARD_NEGATION(1.5)


class TestSugenoNegation:
    def test_lambda_zero_is_standard(self):
        sugeno = SugenoNegation(0.0)
        for x in GRID:
            assert sugeno(x) == pytest.approx(StandardNegation()(x))

    @pytest.mark.parametrize("lam", [-0.5, 0.5, 2.0, 10.0])
    def test_involutive(self, lam):
        assert SugenoNegation(lam).is_involutive()

    @pytest.mark.parametrize("lam", [-0.5, 0.5, 2.0])
    def test_boundaries(self, lam):
        neg = SugenoNegation(lam)
        assert neg(0.0) == 1.0
        assert neg(1.0) == 0.0

    @pytest.mark.parametrize("lam", [0.5, 2.0])
    def test_decreasing(self, lam):
        neg = SugenoNegation(lam)
        values = [neg(x) for x in GRID]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_invalid_parameter(self):
        with pytest.raises(ValueError):
            SugenoNegation(-1.0)


class TestYagerNegation:
    def test_w_one_is_standard(self):
        yager = YagerNegation(1.0)
        for x in GRID:
            assert yager(x) == pytest.approx(StandardNegation()(x))

    @pytest.mark.parametrize("w", [0.5, 2.0, 3.0])
    def test_involutive(self, w):
        assert YagerNegation(w).is_involutive()

    @pytest.mark.parametrize("w", [0.5, 2.0])
    def test_boundaries(self, w):
        neg = YagerNegation(w)
        assert neg(0.0) == 1.0
        assert neg(1.0) == 0.0

    def test_invalid_parameter(self):
        with pytest.raises(ValueError):
            YagerNegation(0.0)

    def test_name_mentions_parameter(self):
        assert "2" in YagerNegation(2.0).name
