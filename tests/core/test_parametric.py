"""Tests for the parametric t-norm families."""

import itertools

import pytest

from repro.core.parametric import (
    HamacherFamily,
    YagerFamily,
    hamacher_conorm,
    yager_conorm,
)
from repro.core.properties import (
    DEFAULT_GRID,
    check_associative,
    check_commutative,
    check_conjunction_conservation,
    check_de_morgan,
    check_monotone,
    check_strict,
)
from repro.core.tnorms import (
    ALGEBRAIC_PRODUCT,
    BOUNDED_DIFFERENCE,
    HAMACHER_PRODUCT,
    MINIMUM,
)

HAMACHER_PARAMS = (0.0, 0.5, 1.0, 2.0, 10.0)
YAGER_PARAMS = (0.5, 1.0, 2.0, 5.0)


@pytest.mark.parametrize("gamma", HAMACHER_PARAMS)
class TestHamacherFamilyAxioms:
    def test_tnorm_axioms(self, gamma):
        t = HamacherFamily(gamma)
        assert check_conjunction_conservation(t.pair)
        assert check_monotone(t, 2)
        assert check_commutative(t.pair)
        assert check_associative(t.pair)
        assert check_strict(t, 2)

    def test_de_morgan_with_dual(self, gamma):
        t = HamacherFamily(gamma)
        s = hamacher_conorm(gamma)
        assert check_de_morgan(t.pair, s.pair, lambda x: 1.0 - x)


@pytest.mark.parametrize("p", YAGER_PARAMS)
class TestYagerFamilyAxioms:
    def test_tnorm_axioms(self, p):
        t = YagerFamily(p)
        assert check_conjunction_conservation(t.pair)
        assert check_monotone(t, 2)
        assert check_commutative(t.pair)
        assert check_associative(t.pair)
        assert check_strict(t, 2)

    def test_de_morgan_with_dual(self, p):
        t = YagerFamily(p)
        s = yager_conorm(p)
        assert check_de_morgan(t.pair, s.pair, lambda x: 1.0 - x)


class TestFamilyLimits:
    def test_hamacher_gamma_zero_is_paper_hamacher(self):
        t = HamacherFamily(0.0)
        for x, y in itertools.product(DEFAULT_GRID, repeat=2):
            assert t.pair(x, y) == pytest.approx(
                HAMACHER_PRODUCT.pair(x, y), abs=1e-12
            )

    def test_hamacher_gamma_one_is_algebraic_product(self):
        t = HamacherFamily(1.0)
        for x, y in itertools.product(DEFAULT_GRID, repeat=2):
            assert t.pair(x, y) == pytest.approx(
                ALGEBRAIC_PRODUCT.pair(x, y), abs=1e-12
            )

    def test_yager_p_one_is_bounded_difference(self):
        t = YagerFamily(1.0)
        for x, y in itertools.product(DEFAULT_GRID, repeat=2):
            assert t.pair(x, y) == pytest.approx(
                BOUNDED_DIFFERENCE.pair(x, y), abs=1e-12
            )

    def test_yager_large_p_approaches_min(self):
        t = YagerFamily(50.0)
        for x, y in itertools.product((0.2, 0.5, 0.8), repeat=2):
            assert t.pair(x, y) == pytest.approx(
                MINIMUM.pair(x, y), abs=0.02
            )

    def test_family_ordering_in_gamma(self):
        """Hamacher t-norms decrease pointwise as gamma grows."""
        lo, hi = HamacherFamily(0.5), HamacherFamily(5.0)
        for x, y in itertools.product((0.2, 0.5, 0.8), repeat=2):
            assert hi.pair(x, y) <= lo.pair(x, y) + 1e-12


class TestValidation:
    def test_hamacher_negative_gamma(self):
        with pytest.raises(ValueError):
            HamacherFamily(-0.1)

    def test_yager_nonpositive_p(self):
        with pytest.raises(ValueError):
            YagerFamily(0.0)

    def test_names_carry_parameters(self):
        assert "2" in HamacherFamily(2.0).name
        assert "0.5" in YagerFamily(0.5).name


class TestWithA0:
    def test_a0_correct_under_family_members(self):
        from repro.algorithms.base import is_valid_top_k
        from repro.algorithms.fa import FaginA0
        from repro.workloads.skeletons import independent_database

        db = independent_database(2, 100, seed=8)
        for agg in (HamacherFamily(2.0), YagerFamily(2.0)):
            truth = db.overall_grades(agg)
            result = FaginA0().top_k(db.session(), agg, 5)
            assert is_valid_top_k(result.items, truth, 5), agg.name
