"""Tests for logical-equivalence preservation (Theorem 3.1).

The empirical content of the theorem: the standard min/max semantics
preserves every canonical ∧/∨ identity, while *every other* t-norm/
co-norm pair from the paper's catalogue fails at least one — so an
optimizer may rewrite only under the standard rules.
"""

import pytest

from repro.core.equivalence import (
    CANONICAL_IDENTITIES,
    crisp_equivalent,
    fuzzy_equivalent,
    preserves_equivalence,
)
from repro.core.query import And, Not, Or, atom
from repro.core.semantics import STANDARD_FUZZY, FuzzySemantics
from repro.core.tconorms import TCONORMS
from repro.core.tnorms import TNORMS

A, B, C = atom("A"), atom("B"), atom("C")

NON_STANDARD_PAIRS = [
    (t_name, s_name)
    for t_name, s_name in (
        ("algebraic-product", "algebraic-sum"),
        ("bounded-difference", "bounded-sum"),
        ("einstein-product", "einstein-sum"),
        ("hamacher-product", "hamacher-sum"),
        ("drastic-product", "drastic-sum"),
    )
]


class TestCrispEquivalence:
    def test_idempotence(self):
        assert crisp_equivalent(And((A, A)), A)

    def test_distributivity(self):
        lhs = And((A, Or((B, C))))
        rhs = Or((And((A, B)), And((A, C))))
        assert crisp_equivalent(lhs, rhs)

    def test_non_equivalent(self):
        assert not crisp_equivalent(And((A, B)), Or((A, B)))

    def test_canonical_identities_are_crisp_equivalent(self):
        for name, q1, q2 in CANONICAL_IDENTITIES:
            assert crisp_equivalent(q1, q2), name

    def test_rejects_negation(self):
        with pytest.raises(ValueError, match="negation"):
            crisp_equivalent(Not(A), A)


class TestFuzzyEquivalence:
    def test_min_max_preserve_idempotence(self):
        assert fuzzy_equivalent(And((A, A)), A, STANDARD_FUZZY)

    def test_min_max_preserve_distributivity(self):
        lhs = And((A, Or((B, C))))
        rhs = Or((And((A, B)), And((A, C))))
        assert fuzzy_equivalent(lhs, rhs, STANDARD_FUZZY)

    def test_product_fails_idempotence(self):
        """mu_{A AND A} = mu_A^2 != mu_A under the product t-norm."""
        sem = FuzzySemantics(
            tnorm=TNORMS["algebraic-product"], conorm=TCONORMS["algebraic-sum"]
        )
        assert not fuzzy_equivalent(And((A, A)), A, sem)

    def test_distinguishes_genuinely_different_queries(self):
        assert not fuzzy_equivalent(And((A, B)), Or((A, B)), STANDARD_FUZZY)


class TestTheorem31:
    def test_standard_semantics_preserves_all(self):
        ok, failures = preserves_equivalence(STANDARD_FUZZY)
        assert ok, failures

    @pytest.mark.parametrize("t_name,s_name", NON_STANDARD_PAIRS)
    def test_every_other_pair_fails(self, t_name, s_name):
        """The uniqueness half of Theorem 3.1, checked empirically."""
        sem = FuzzySemantics(tnorm=TNORMS[t_name], conorm=TCONORMS[s_name])
        ok, failures = preserves_equivalence(sem)
        assert not ok
        assert failures  # names of the violated identities

    def test_failure_names_are_informative(self):
        sem = FuzzySemantics(
            tnorm=TNORMS["algebraic-product"],
            conorm=TCONORMS["algebraic-sum"],
        )
        __, failures = preserves_equivalence(sem)
        assert any("idempotence" in f for f in failures)
