"""Unit tests for the grade domain (Section 2's [0, 1] convention)."""

import math

import pytest

from repro.core import grades as G
from repro.exceptions import GradeRangeError


class TestValidateGrade:
    def test_accepts_interior_values(self):
        assert G.validate_grade(0.5) == 0.5

    def test_accepts_endpoints(self):
        assert G.validate_grade(0.0) == 0.0
        assert G.validate_grade(1.0) == 1.0

    def test_accepts_ints(self):
        assert G.validate_grade(1) == 1.0
        assert isinstance(G.validate_grade(0), float)

    def test_accepts_bools_as_crisp(self):
        assert G.validate_grade(True) == 1.0
        assert G.validate_grade(False) == 0.0

    @pytest.mark.parametrize("bad", [-0.001, 1.001, 2, -1, math.inf, -math.inf])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(GradeRangeError):
            G.validate_grade(bad)

    def test_rejects_nan(self):
        with pytest.raises(GradeRangeError):
            G.validate_grade(math.nan)

    def test_rejects_non_numeric(self):
        with pytest.raises(GradeRangeError):
            G.validate_grade("0.5x")
        with pytest.raises(GradeRangeError):
            G.validate_grade(None)

    def test_error_mentions_context(self):
        with pytest.raises(GradeRangeError, match="list 3"):
            G.validate_grade(2.0, context="list 3")

    def test_grade_range_error_is_value_error(self):
        # Callers catching ValueError (the stdlib convention) still work.
        with pytest.raises(ValueError):
            G.validate_grade(5)


class TestValidateGrades:
    def test_validates_each(self):
        assert G.validate_grades([0, 0.5, 1]) == [0.0, 0.5, 1.0]

    def test_fails_on_any_bad(self):
        with pytest.raises(GradeRangeError):
            G.validate_grades([0.2, 1.5])


class TestPredicates:
    def test_is_valid_grade(self):
        assert G.is_valid_grade(0.3)
        assert not G.is_valid_grade(1.3)
        assert not G.is_valid_grade("nope")

    def test_is_crisp_exact(self):
        assert G.is_crisp(0.0)
        assert G.is_crisp(1.0)
        assert not G.is_crisp(0.5)

    def test_is_crisp_with_tolerance(self):
        assert G.is_crisp(1e-13, tolerance=1e-12)
        assert not G.is_crisp(1e-13, tolerance=0.0)

    def test_crisp_grade(self):
        assert G.crisp_grade(True) == 1.0
        assert G.crisp_grade(False) == 0.0


class TestClampAndCompare:
    def test_clamp_inside_is_identity(self):
        assert G.clamp_grade(0.25) == 0.25

    def test_clamp_overshoot(self):
        assert G.clamp_grade(1.0 + 1e-16) == 1.0
        assert G.clamp_grade(-1e-16) == 0.0

    def test_grades_close(self):
        assert G.grades_close(0.5, 0.5 + 1e-13)
        assert not G.grades_close(0.5, 0.51)


class TestStandardNegation:
    def test_endpoints(self):
        assert G.standard_negation(0.0) == 1.0
        assert G.standard_negation(1.0) == 0.0

    def test_involutive(self):
        assert G.standard_negation(G.standard_negation(0.3)) == pytest.approx(0.3)
