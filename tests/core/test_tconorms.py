"""Tests for the co-norm catalogue and the t-norm/co-norm duality.

Section 3: "Triangular norms and triangular co-norms are duals, in the
sense that if t is a triangular norm, then the function s defined by
s(x1, x2) = 1 - t(1 - x1, 1 - x2) is a triangular co-norm [Al85]",
with the generalised De Morgan laws of [BD86].
"""

import itertools

import pytest

from repro.core.aggregation import DualTConorm, DualTNorm
from repro.core.negations import STANDARD_NEGATION
from repro.core.properties import (
    DEFAULT_GRID,
    check_associative,
    check_commutative,
    check_de_morgan,
    check_disjunction_conservation,
    check_monotone,
    check_strict,
)
from repro.core.tconorms import (
    ALGEBRAIC_SUM,
    BOUNDED_SUM,
    DRASTIC_SUM,
    DUAL_PAIRS,
    EINSTEIN_SUM,
    HAMACHER_SUM,
    MAXIMUM,
    TCONORMS,
    get_tconorm,
)
from repro.core.tnorms import TNORMS

ALL_TCONORMS = sorted(TCONORMS.values(), key=lambda s: s.name)


@pytest.mark.parametrize("conorm", ALL_TCONORMS, ids=lambda s: s.name)
class TestTConormAxioms:
    def test_disjunction_conservation(self, conorm):
        assert check_disjunction_conservation(conorm.pair)

    def test_monotone(self, conorm):
        assert check_monotone(conorm, 2)

    def test_commutative(self, conorm):
        assert check_commutative(conorm.pair)

    def test_associative(self, conorm):
        assert check_associative(conorm.pair)

    def test_not_strict(self, conorm):
        """Co-norms hit 1 with arguments below 1 (Remark 6.1's max point)."""
        assert not check_strict(conorm, 2)
        assert not conorm.strict

    def test_bounded_between_max_and_drastic(self, conorm):
        """max <= s <= drastic sum (the dual of the t-norm sandwich)."""
        for x, y in itertools.product(DEFAULT_GRID, repeat=2):
            value = conorm.pair(x, y)
            assert max(x, y) - 1e-12 <= value
            assert value <= DRASTIC_SUM.pair(x, y) + 1e-12


class TestSpecificValues:
    def test_max(self):
        assert MAXIMUM(0.3, 0.8) == 0.8

    def test_drastic_sum(self):
        assert DRASTIC_SUM(0.3, 0.0) == 0.3
        assert DRASTIC_SUM(0.3, 0.8) == 1.0

    def test_bounded_sum(self):
        assert BOUNDED_SUM(0.7, 0.6) == 1.0
        assert BOUNDED_SUM(0.3, 0.3) == pytest.approx(0.6)

    def test_einstein_sum(self):
        # s(.5,.5) = 1 / 1.25 = .8
        assert EINSTEIN_SUM(0.5, 0.5) == pytest.approx(0.8)

    def test_algebraic_sum(self):
        assert ALGEBRAIC_SUM(0.5, 0.4) == pytest.approx(0.7)

    def test_hamacher_sum(self):
        # s(.5,.5) = (1 - .5) / (1 - .25) = 2/3
        assert HAMACHER_SUM(0.5, 0.5) == pytest.approx(2 / 3)

    def test_hamacher_sum_one_one(self):
        assert HAMACHER_SUM(1.0, 1.0) == 1.0


class TestDuality:
    @pytest.mark.parametrize("t_name,s_name", sorted(DUAL_PAIRS.items()))
    def test_closed_forms_are_standard_duals(self, t_name, s_name):
        """s(x, y) == 1 - t(1 - x, 1 - y) on the grid for each pair."""
        tnorm, conorm = TNORMS[t_name], TCONORMS[s_name]
        for x, y in itertools.product(DEFAULT_GRID, repeat=2):
            expected = 1.0 - tnorm.pair(1.0 - x, 1.0 - y)
            assert conorm.pair(x, y) == pytest.approx(expected, abs=1e-9)

    @pytest.mark.parametrize("t_name,s_name", sorted(DUAL_PAIRS.items()))
    def test_de_morgan_laws(self, t_name, s_name):
        assert check_de_morgan(
            TNORMS[t_name].pair, TCONORMS[s_name].pair, STANDARD_NEGATION
        )

    def test_dual_tconorm_wrapper(self):
        derived = DualTConorm(TNORMS["algebraic-product"])
        for x, y in itertools.product(DEFAULT_GRID, repeat=2):
            assert derived.pair(x, y) == pytest.approx(
                ALGEBRAIC_SUM.pair(x, y), abs=1e-9
            )

    def test_dual_tnorm_wrapper(self):
        derived = DualTNorm(TCONORMS["bounded-sum"])
        for x, y in itertools.product(DEFAULT_GRID, repeat=2):
            assert derived.pair(x, y) == pytest.approx(
                TNORMS["bounded-difference"].pair(x, y), abs=1e-9
            )

    def test_double_dual_is_identity(self):
        double = DualTNorm(DualTConorm(TNORMS["einstein-product"]))
        for x, y in itertools.product(DEFAULT_GRID, repeat=2):
            assert double.pair(x, y) == pytest.approx(
                TNORMS["einstein-product"].pair(x, y), abs=1e-9
            )


class TestRegistry:
    def test_lookup(self):
        assert get_tconorm("max") is MAXIMUM

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_tconorm("nope")

    def test_pairing_covers_all(self):
        assert set(DUAL_PAIRS) == set(TNORMS)
        assert set(DUAL_PAIRS.values()) == set(TCONORMS)
