"""Property-based parity: vectorized kernels vs the scalar evaluate path.

The tentpole contract of the kernel layer: for every registered
aggregation, scoring a grade matrix through
``AggregationFunction.evaluate_columns`` must agree with calling the
scalar ``evaluate_trusted`` fold column by column — bit for bit for
the fold-order-preserving kernels (min, max, product, Łukasiewicz,
arithmetic/weighted-arithmetic mean, harmonic mean, median), and
within 1e-12 relative tolerance for the geometric family, whose final
``x ** (1/m)`` goes through numpy's vectorised pow (documented ulp
divergence from libm).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import (
    AggregationFunction,
    VectorizedAggregation,
)
from repro.core.kernels import (
    HAVE_NUMPY,
    evaluate_columns,
    kernel_for,
    register_kernel,
)
from repro.core.means import (
    ARITHMETIC_MEAN,
    GEOMETRIC_MEAN,
    HARMONIC_MEAN,
    MEDIAN,
    WeightedArithmeticMean,
    WeightedGeometricMean,
)
from repro.core.tconorms import BOUNDED_SUM, MAXIMUM
from repro.core.tnorms import (
    ALGEBRAIC_PRODUCT,
    BOUNDED_DIFFERENCE,
    EINSTEIN_PRODUCT,
    MINIMUM,
)

#: (aggregation, bit_exact) — bit_exact pins == parity; the geometric
#: family gets the documented 1e-12 relative tolerance instead.
KERNELED = [
    (MINIMUM, True),
    (MAXIMUM, True),
    (ALGEBRAIC_PRODUCT, True),
    (BOUNDED_DIFFERENCE, True),
    (BOUNDED_SUM, True),
    (ARITHMETIC_MEAN, True),
    (HARMONIC_MEAN, True),
    (MEDIAN, True),
    (GEOMETRIC_MEAN, False),
]

grades = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def matrices(min_m=1, max_m=5, min_n=1, max_n=40):
    """Strategy for m-by-n grade matrices as lists of rows."""
    return st.integers(min_m, max_m).flatmap(
        lambda m: st.integers(min_n, max_n).flatmap(
            lambda n: st.lists(
                st.lists(grades, min_size=n, max_size=n),
                min_size=m,
                max_size=m,
            )
        )
    )


def scalar_scores(aggregation, rows):
    evaluate = aggregation.evaluate_trusted
    n = len(rows[0])
    return [evaluate([row[j] for row in rows]) for j in range(n)]


@pytest.mark.parametrize(
    "aggregation,bit_exact", KERNELED, ids=lambda a: getattr(a, "name", str(a))
)
@given(rows=matrices())
@settings(max_examples=60, deadline=None)
def test_kernel_matches_scalar_fold(aggregation, bit_exact, rows):
    expected = scalar_scores(aggregation, rows)
    actual = aggregation.evaluate_columns(rows)
    assert len(actual) == len(expected)
    for got, want in zip(actual, expected):
        assert isinstance(got, float)
        if bit_exact and HAVE_NUMPY:
            assert got == want, (aggregation.name, got, want)
        else:
            assert math.isclose(got, want, rel_tol=1e-12, abs_tol=1e-12)


@given(
    rows=matrices(min_m=3, max_m=3),
    raw_weights=st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=3,
        max_size=3,
    ).filter(lambda ws: sum(ws) > 0),
)
@settings(max_examples=60, deadline=None)
def test_weighted_kernels_match_scalar_fold(rows, raw_weights):
    arithmetic = WeightedArithmeticMean(raw_weights)
    expected = scalar_scores(arithmetic, rows)
    for got, want in zip(arithmetic.evaluate_columns(rows), expected):
        if HAVE_NUMPY:
            assert got == want
        else:
            assert math.isclose(got, want, rel_tol=1e-12)

    geometric = WeightedGeometricMean(raw_weights)
    expected = scalar_scores(geometric, rows)
    for got, want in zip(geometric.evaluate_columns(rows), expected):
        # pow-ulp tolerance, as for the unweighted geometric mean.
        assert math.isclose(got, want, rel_tol=1e-12, abs_tol=1e-12)


@pytest.mark.skipif(not HAVE_NUMPY, reason="kernels require numpy")
def test_standard_aggregations_have_kernels():
    for aggregation, _ in KERNELED:
        assert kernel_for(aggregation) is not None, aggregation.name


def test_unregistered_aggregation_falls_back_to_scalar():
    """An aggregation without a kernel gets the scalar fold — and a
    subclass never inherits its parent's kernel (exact-type lookup)."""

    class ConstantMean(type(ARITHMETIC_MEAN)):
        def aggregate(self, grades):
            return 0.5  # deliberately NOT the mean

    constant = ConstantMean()
    assert kernel_for(constant) is None
    assert constant.evaluate_columns([[0.1, 0.9], [0.2, 0.3]]) == [0.5, 0.5]


def test_einstein_product_has_no_kernel_but_bulk_path_agrees():
    rows = [[0.1, 0.5, 0.99], [0.7, 0.5, 0.98]]
    assert kernel_for(EINSTEIN_PRODUCT) is None
    assert EINSTEIN_PRODUCT.evaluate_columns(rows) == scalar_scores(
        EINSTEIN_PRODUCT, rows
    )


@pytest.mark.skipif(not HAVE_NUMPY, reason="kernels require numpy")
def test_vectorized_aggregation_capability_wins_over_registry():
    import numpy as np

    class DoubledMin(VectorizedAggregation, AggregationFunction):
        name = "doubled-min"

        def aggregate(self, grades):
            return min(1.0, 2.0 * min(grades))

        def aggregate_columns(self, matrix):
            return 2.0 * np.minimum.reduce(matrix, axis=0)

    agg = DoubledMin()
    kernel = kernel_for(agg)
    assert kernel is not None
    rows = [[0.1, 0.6, 0.9], [0.2, 0.4, 0.8]]
    assert agg.evaluate_columns(rows) == scalar_scores(agg, rows)


def test_register_kernel_is_consulted_for_exact_type():
    class Halver(AggregationFunction):
        name = "halver"

        def aggregate(self, grades):
            return grades[0] / 2.0

    if HAVE_NUMPY:
        register_kernel(Halver, lambda agg: (lambda matrix: matrix[0] / 2.0))
        assert kernel_for(Halver()) is not None
    rows = [[0.2, 0.8]]
    assert Halver().evaluate_columns(rows) == [0.1, 0.4]


def test_evaluate_columns_helper_handles_fallback():
    # Direct use of the module-level helper, scalar route.
    rows = [[0.3, 0.9], [0.5, 0.1]]
    scores = evaluate_columns(EINSTEIN_PRODUCT, rows, 2)
    assert scores == scalar_scores(EINSTEIN_PRODUCT, rows)
