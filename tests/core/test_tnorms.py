"""Tests for the Section 3 t-norm catalogue.

Every t-norm must satisfy the four triangular-norm axioms
(∧-conservation, monotonicity, commutativity, associativity), be
bounded between the drastic product and min [DP80], and be strict —
the property the paper's lower bound needs.
"""

import itertools

import pytest

from repro.core.properties import (
    DEFAULT_GRID,
    check_associative,
    check_commutative,
    check_conjunction_conservation,
    check_monotone,
    check_strict,
)
from repro.core.tnorms import (
    ALGEBRAIC_PRODUCT,
    BOUNDED_DIFFERENCE,
    DRASTIC_PRODUCT,
    EINSTEIN_PRODUCT,
    HAMACHER_PRODUCT,
    MINIMUM,
    TNORMS,
    get_tnorm,
)

ALL_TNORMS = sorted(TNORMS.values(), key=lambda t: t.name)


@pytest.mark.parametrize("tnorm", ALL_TNORMS, ids=lambda t: t.name)
class TestTNormAxioms:
    def test_conjunction_conservation(self, tnorm):
        assert check_conjunction_conservation(tnorm.pair)

    def test_monotone(self, tnorm):
        assert check_monotone(tnorm, 2)

    def test_commutative(self, tnorm):
        assert check_commutative(tnorm.pair)

    def test_associative(self, tnorm):
        assert check_associative(tnorm.pair)

    def test_strict_binary(self, tnorm):
        assert check_strict(tnorm, 2)

    def test_strict_ternary_iterated(self, tnorm):
        assert check_strict(tnorm, 3)

    def test_declared_flags(self, tnorm):
        assert tnorm.monotone
        assert tnorm.strict

    def test_bounded_between_drastic_and_min(self, tnorm):
        """[DP80]: drastic <= t <= min for every t-norm."""
        for x, y in itertools.product(DEFAULT_GRID, repeat=2):
            value = tnorm.pair(x, y)
            assert DRASTIC_PRODUCT.pair(x, y) - 1e-12 <= value
            assert value <= min(x, y) + 1e-12

    def test_range_stays_in_unit_interval(self, tnorm):
        for x, y in itertools.product(DEFAULT_GRID, repeat=2):
            assert 0.0 <= tnorm(x, y) <= 1.0


class TestSpecificValues:
    """Spot values computed by hand from the paper's formulas."""

    def test_min(self):
        assert MINIMUM(0.3, 0.8) == 0.3

    def test_drastic_product(self):
        assert DRASTIC_PRODUCT(0.3, 1.0) == 0.3
        assert DRASTIC_PRODUCT(0.3, 0.8) == 0.0

    def test_bounded_difference(self):
        assert BOUNDED_DIFFERENCE(0.7, 0.6) == pytest.approx(0.3)
        assert BOUNDED_DIFFERENCE(0.3, 0.3) == 0.0

    def test_einstein_product(self):
        # t(.5,.5) = .25 / (2 - .75) = .2
        assert EINSTEIN_PRODUCT(0.5, 0.5) == pytest.approx(0.2)

    def test_algebraic_product(self):
        assert ALGEBRAIC_PRODUCT(0.5, 0.4) == pytest.approx(0.2)

    def test_hamacher_product(self):
        # t(.5,.5) = .25 / (1 - .25) = 1/3
        assert HAMACHER_PRODUCT(0.5, 0.5) == pytest.approx(1 / 3)

    def test_hamacher_zero_zero(self):
        assert HAMACHER_PRODUCT(0.0, 0.0) == 0.0


class TestMAryIteration:
    def test_three_way_product(self):
        assert ALGEBRAIC_PRODUCT(0.5, 0.5, 0.5) == pytest.approx(0.125)

    def test_three_way_min(self):
        assert MINIMUM(0.9, 0.2, 0.7) == 0.2

    def test_single_argument_is_identity(self):
        for tnorm in ALL_TNORMS:
            assert tnorm(0.42) == pytest.approx(0.42)


class TestRegistry:
    def test_lookup(self):
        assert get_tnorm("min") is MINIMUM

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="known:"):
            get_tnorm("nope")

    def test_registry_has_all_six_paper_tnorms(self):
        assert set(TNORMS) == {
            "min",
            "drastic-product",
            "bounded-difference",
            "einstein-product",
            "algebraic-product",
            "hamacher-product",
        }
