"""Unit tests for GradedSet (Section 2's central data model)."""

import pytest

from repro.core.graded_set import GradedSet
from repro.exceptions import GradeRangeError, InsufficientObjectsError


class TestConstruction:
    def test_from_mapping(self):
        gs = GradedSet({"a": 0.5, "b": 1.0})
        assert gs.grade("a") == 0.5
        assert len(gs) == 2

    def test_from_pairs(self):
        gs = GradedSet([("a", 0.5), ("b", 1.0)])
        assert gs.grade("b") == 1.0

    def test_empty(self):
        gs = GradedSet()
        assert len(gs) == 0
        assert list(gs) == []

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            GradedSet([("a", 0.5), ("a", 0.6)])

    def test_rejects_bad_grade(self):
        with pytest.raises(GradeRangeError):
            GradedSet({"a": 1.5})

    def test_from_crisp_without_universe(self):
        gs = GradedSet.from_crisp({"x", "y"})
        assert gs.grade("x") == 1.0
        assert "z" not in gs
        assert gs.grade("z") == 0.0  # implicit

    def test_from_crisp_with_universe(self):
        gs = GradedSet.from_crisp({"x"}, universe={"x", "y", "z"})
        assert gs.grade("y") == 0.0
        assert "y" in gs  # now explicit
        assert len(gs) == 3

    def test_from_ranked(self):
        gs = GradedSet.from_ranked(["a", "b"], [0.9, 0.1])
        assert gs.grade("a") == 0.9

    def test_from_ranked_length_mismatch(self):
        with pytest.raises(ValueError, match="objects but"):
            GradedSet.from_ranked(["a"], [0.9, 0.1])


class TestSortedListView:
    def test_iteration_is_descending(self):
        gs = GradedSet({"a": 0.2, "b": 0.9, "c": 0.5})
        assert [obj for obj, _ in gs] == ["b", "c", "a"]

    def test_tie_break_is_deterministic(self):
        gs = GradedSet({"b": 0.5, "a": 0.5, "c": 0.5})
        assert [obj for obj, _ in gs] == ["a", "b", "c"]

    def test_to_sorted_list(self):
        gs = GradedSet({"a": 0.2, "b": 0.9})
        assert gs.to_sorted_list() == [("b", 0.9), ("a", 0.2)]


class TestTopK:
    def test_top_k(self):
        gs = GradedSet({"a": 0.2, "b": 0.9, "c": 0.5})
        top = gs.top(2)
        assert top.objects() == {"b", "c"}

    def test_top_zero(self):
        assert len(GradedSet({"a": 0.5}).top(0)) == 0

    def test_top_k_too_large(self):
        with pytest.raises(InsufficientObjectsError):
            GradedSet({"a": 0.5}).top(2)

    def test_top_negative(self):
        with pytest.raises(ValueError):
            GradedSet({"a": 0.5}).top(-1)


class TestQueries:
    def test_support_drops_zero_grades(self):
        gs = GradedSet({"a": 0.0, "b": 0.4})
        assert gs.support().objects() == {"b"}

    def test_alpha_cut(self):
        gs = GradedSet({"a": 0.2, "b": 0.9, "c": 0.5})
        assert gs.cut(0.5) == {"b", "c"}

    def test_alpha_cut_validates_level(self):
        with pytest.raises(GradeRangeError):
            GradedSet({"a": 0.5}).cut(1.5)

    def test_is_crisp(self):
        assert GradedSet({"a": 1.0, "b": 0.0}).is_crisp()
        assert not GradedSet({"a": 0.5}).is_crisp()

    def test_restrict(self):
        gs = GradedSet({"a": 0.2, "b": 0.9})
        assert gs.restrict({"b", "zz"}).objects() == {"b"}


class TestSetAlgebra:
    def test_intersection_default_min(self):
        a = GradedSet({"x": 0.8, "y": 0.3})
        b = GradedSet({"x": 0.5, "z": 0.9})
        c = a.intersect(b)
        assert c.grade("x") == 0.5
        assert c.grade("y") == 0.0  # y missing from b -> min(0.3, 0) = 0
        assert c.grade("z") == 0.0

    def test_union_default_max(self):
        a = GradedSet({"x": 0.8})
        b = GradedSet({"x": 0.5, "z": 0.9})
        c = a.union(b)
        assert c.grade("x") == 0.8
        assert c.grade("z") == 0.9

    def test_combine_custom_connective(self):
        a = GradedSet({"x": 0.5})
        b = GradedSet({"x": 0.5})
        prod = a.combine(b, lambda p, q: p * q)
        assert prod.grade("x") == 0.25

    def test_crisp_embedding_matches_set_semantics(self):
        # Crisp sets under min/max behave exactly like intersection/union.
        universe = {"a", "b", "c", "d"}
        s1 = GradedSet.from_crisp({"a", "b"}, universe)
        s2 = GradedSet.from_crisp({"b", "c"}, universe)
        assert s1.intersect(s2).cut(1.0) == {"b"}
        assert s1.union(s2).cut(1.0) == {"a", "b", "c"}

    def test_negation_needs_universe(self):
        gs = GradedSet({"a": 0.3})
        neg = gs.negate(universe={"a", "b"})
        assert neg.grade("a") == pytest.approx(0.7)
        assert neg.grade("b") == 1.0  # implicit 0 negates to 1

    def test_scale(self):
        gs = GradedSet({"a": 0.8}).scale(0.5)
        assert gs.grade("a") == pytest.approx(0.4)

    def test_scale_validates_factor(self):
        with pytest.raises(GradeRangeError):
            GradedSet({"a": 0.8}).scale(2.0)


class TestEquality:
    def test_eq_and_hash(self):
        a = GradedSet({"x": 0.5})
        b = GradedSet([("x", 0.5)])
        assert a == b
        assert hash(a) == hash(b)

    def test_neq_different_grades(self):
        assert GradedSet({"x": 0.5}) != GradedSet({"x": 0.6})

    def test_approx_equal(self):
        a = GradedSet({"x": 0.5})
        b = GradedSet({"x": 0.5 + 1e-12})
        assert a.approx_equal(b)
        assert not a.approx_equal(GradedSet({"y": 0.5}))

    def test_repr_is_informative(self):
        text = repr(GradedSet({"x": 0.5}))
        assert "x" in text and "n=1" in text
