"""Tests for histogram-intersection colour matching ([SO95] style)."""

import pytest

from repro.core.query import AtomicQuery
from repro.subsystems.qbic import QbicSubsystem, histogram_intersection


class TestHistogramIntersection:
    def test_identical_histograms(self):
        h = (0.5, 0.3, 0.2)
        assert histogram_intersection(h, h) == pytest.approx(1.0)

    def test_disjoint_histograms(self):
        assert histogram_intersection((1.0, 0.0), (0.0, 1.0)) == 0.0

    def test_partial_overlap(self):
        value = histogram_intersection((0.5, 0.3, 0.2), (0.4, 0.4, 0.2))
        assert value == pytest.approx(0.9)

    def test_symmetric(self):
        a, b = (0.7, 0.2, 0.1), (0.1, 0.2, 0.7)
        assert histogram_intersection(a, b) == histogram_intersection(b, a)

    def test_footnote_4_scenario(self):
        """'a lot of red and a little green' is moderately close to 'a
        lot of pink and no green' when pink shares red's bins."""
        # bins: [red, pink, green, blue]
        red_heavy = (0.7, 0.1, 0.2, 0.0)
        pink_heavy = (0.4, 0.6, 0.0, 0.0)
        blue_heavy = (0.0, 0.0, 0.1, 0.9)
        close = histogram_intersection(red_heavy, pink_heavy)
        far = histogram_intersection(red_heavy, blue_heavy)
        assert close > 2 * far

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            histogram_intersection((0.5, 0.5), (1.0,))

    def test_rejects_unnormalised(self):
        with pytest.raises(ValueError, match="sum to 1"):
            histogram_intersection((0.5, 0.2), (0.5, 0.5))

    def test_rejects_negative_bins(self):
        with pytest.raises(ValueError, match="non-negative"):
            histogram_intersection((1.2, -0.2), (0.5, 0.5))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            histogram_intersection((), ())


class TestHistogramScoringMode:
    @pytest.fixture
    def qbic(self):
        return QbicSubsystem(
            "qbic",
            {
                "colorhist": {
                    "img-red": (0.8, 0.1, 0.1, 0.0),
                    "img-pink": (0.5, 0.4, 0.1, 0.0),
                    "img-blue": (0.0, 0.0, 0.1, 0.9),
                }
            },
            named_targets={
                "colorhist": {"mostly-red": (0.9, 0.1, 0.0, 0.0)}
            },
            scoring={"colorhist": "histogram"},
        )

    def test_ranking_by_overlap(self, qbic):
        source = qbic.evaluate(
            AtomicQuery("colorhist", "mostly-red", "~")
        )
        order = [source.next_sorted().obj for _ in range(3)]
        assert order == ["img-red", "img-pink", "img-blue"]

    def test_query_by_example(self, qbic):
        source = qbic.evaluate(AtomicQuery("colorhist", "img-red", "~"))
        assert source.random_access("img-red") == pytest.approx(1.0)

    def test_invalid_scoring_mode(self):
        with pytest.raises(ValueError, match="gaussian"):
            QbicSubsystem(
                "q",
                {"f": {"a": (1.0,)}},
                scoring={"f": "cosine"},
            )

    def test_scoring_for_unknown_feature(self):
        with pytest.raises(ValueError, match="unknown feature"):
            QbicSubsystem(
                "q",
                {"f": {"a": (1.0,)}},
                scoring={"g": "histogram"},
            )

    def test_gaussian_features_unaffected(self, qbic):
        """Mixing scoring modes: default stays gaussian."""
        mixed = QbicSubsystem(
            "q",
            {
                "hist": {"a": (1.0, 0.0), "b": (0.0, 1.0)},
                "vec": {"a": (0.2,), "b": (0.9,)},
            },
            scoring={"hist": "histogram"},
        )
        source = mixed.evaluate(AtomicQuery("vec", (0.9,), "~"))
        assert source.random_access("b") == pytest.approx(1.0)
