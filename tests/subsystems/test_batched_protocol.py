"""The federated batched-access protocol (evaluate_batched + negotiation).

Covers the subsystem-side half of the bulk pipeline: capability flags,
the unit-fallback contract for non-batched subsystems, page capping,
batch-size negotiation across a federation, and — crucially — that a
batched source delivers the *same* ranking with the *same* per-item
access accounting as the unit route.
"""

import pytest

from repro.access import MiddlewareSession, PagedBatchSource, UnbatchedSource
from repro.access.source import StreamOnlySource
from repro.core.query import AtomicQuery
from repro.core.tnorms import MINIMUM
from repro.subsystems import (
    DEFAULT_BATCH_SIZE,
    StreamOnlySubsystem,
    SyntheticSubsystem,
    negotiate_batch_size,
)
from repro.subsystems.qbic import QbicSubsystem
from repro.subsystems.relational import RelationalSubsystem
from repro.subsystems.text import TextSubsystem


def synthetic(num_objects=40, attrs=("a", "b"), seed=7):
    import random

    rng = random.Random(seed)
    tables = {
        attr: {obj: rng.random() for obj in range(1, num_objects + 1)}
        for attr in attrs
    }
    return SyntheticSubsystem("syn", tables=tables)


class TestCapabilityFlags:
    def test_all_four_concrete_subsystems_are_batch_capable(self):
        assert SyntheticSubsystem.supports_batched_access
        assert RelationalSubsystem.supports_batched_access
        assert TextSubsystem.supports_batched_access
        assert QbicSubsystem.supports_batched_access

    def test_base_default_is_unit_only(self):
        from repro.subsystems.base import Subsystem

        assert Subsystem.supports_batched_access is False

    def test_stream_only_wrapper_forwards_batch_capability(self):
        wrapped = StreamOnlySubsystem(synthetic())
        assert wrapped.supports_batched_access
        assert not wrapped.supports_random_access


class TestEvaluateBatched:
    def test_batched_source_matches_unit_ranking_and_counts(self):
        sub = synthetic(num_objects=30)
        query = AtomicQuery("a", None, "~")
        unit = MiddlewareSession.over_sources(
            [UnbatchedSource(sub.evaluate(query))]
        )
        batched = MiddlewareSession.over_sources(
            [sub.evaluate_batched(query, 7)]
        )
        unit_items = []
        while not unit.sources[0].exhausted:
            unit_items.append(unit.sources[0].next_sorted())
        batched_items = []
        while True:
            page = batched.sources[0].sorted_access_batch(12)
            if not page:
                break
            assert len(page) <= 7  # the negotiated page caps every exchange
            batched_items.extend(page)
        assert batched_items == unit_items
        assert unit.tracker.snapshot() == batched.tracker.snapshot()

    def test_unit_fallback_for_non_batched_subsystem(self):
        class UnitOnly(SyntheticSubsystem):
            supports_batched_access = False

        sub = UnitOnly("unit", tables={"a": {1: 0.4, 2: 0.9}})
        source = sub.evaluate_batched(AtomicQuery("a", None, "~"), 10)
        assert isinstance(source, UnbatchedSource)
        # The fallback still answers batch requests — by unit loops.
        assert [i.obj for i in source.sorted_access_batch(5)] == [2, 1]

    def test_no_batch_size_leaves_source_unpaged(self):
        sub = synthetic(num_objects=25)
        source = sub.evaluate_batched(AtomicQuery("a", None, "~"))
        assert not isinstance(source, (PagedBatchSource, UnbatchedSource))
        assert len(source.sorted_access_batch(25)) == 25

    def test_rejects_nonpositive_batch_size(self):
        sub = synthetic()
        with pytest.raises(ValueError, match="batch size"):
            sub.evaluate_batched(AtomicQuery("a", None, "~"), 0)

    def test_stream_only_batched_source_pages_but_blocks_random(self):
        from repro.exceptions import SubsystemCapabilityError

        wrapped = StreamOnlySubsystem(synthetic(num_objects=20))
        source = wrapped.evaluate_batched(AtomicQuery("a", None, "~"), 6)
        assert isinstance(source, StreamOnlySource)
        assert len(source.sorted_access_batch(100)) == 6
        with pytest.raises(SubsystemCapabilityError):
            source.random_access(1)
        with pytest.raises(SubsystemCapabilityError):
            source.random_access_many([1, 2])


class TestPagedBatchSource:
    def test_bulk_random_access_reassembles_pages(self):
        sub = synthetic(num_objects=30)
        query = AtomicQuery("a", None, "~")
        paged = PagedBatchSource(sub.evaluate(query), 4)
        objs = list(range(1, 31))
        expected = [sub.evaluate(query).random_access(o) for o in objs]
        assert paged.random_access_many(objs) == expected

    def test_rejects_bad_page_size(self):
        sub = synthetic()
        with pytest.raises(ValueError, match="page size"):
            PagedBatchSource(sub.evaluate(AtomicQuery("a", None, "~")), 0)


class TestNegotiation:
    def test_all_batched_defaults_to_default_page(self):
        assert (
            negotiate_batch_size([synthetic(), synthetic()])
            == DEFAULT_BATCH_SIZE
        )

    def test_smallest_hint_wins(self):
        a, b = synthetic(), synthetic()
        a.batch_size_hint = 256
        b.batch_size_hint = 64
        assert negotiate_batch_size([a, b]) == 64

    def test_requested_caps_the_agreement(self):
        assert negotiate_batch_size([synthetic()], requested=16) == 16

    def test_any_unit_member_vetoes_batching(self):
        class UnitOnly(SyntheticSubsystem):
            supports_batched_access = False

        unit = UnitOnly("unit", tables={"a": {1: 0.5}})
        assert negotiate_batch_size([synthetic(), unit]) is None

    def test_empty_federation_negotiates_nothing(self):
        assert negotiate_batch_size([]) is None

    def test_rejects_bad_request(self):
        with pytest.raises(ValueError, match="requested"):
            negotiate_batch_size([synthetic()], requested=0)


class TestFederatedAnswersThroughBatchedSources:
    def test_topk_parity_unit_vs_batched_sources(self):
        """The acceptance contract: identical answers and per-list
        counts whether the m sources came from evaluate (unit) or
        evaluate_batched (paged bulk)."""
        from repro.algorithms.fa import FaginA0

        sub = synthetic(num_objects=60, attrs=("a", "b", "c"), seed=11)
        atoms = [AtomicQuery(attr, None, "~") for attr in ("a", "b", "c")]
        unit = MiddlewareSession.over_sources(
            [UnbatchedSource(sub.evaluate(atom)) for atom in atoms]
        )
        batched = MiddlewareSession.over_sources(
            [sub.evaluate_batched(atom, 5) for atom in atoms]
        )
        unit_result = FaginA0().top_k(unit, MINIMUM, 8)
        batched_result = FaginA0().top_k(batched, MINIMUM, 8)
        assert batched_result.items == unit_result.items
        assert batched_result.stats == unit_result.stats
