"""Tests for the crisp relational subsystem."""

import pytest

from repro.core.query import AtomicQuery
from repro.exceptions import SubsystemCapabilityError
from repro.subsystems.relational import RelationalSubsystem


@pytest.fixture
def rel():
    return RelationalSubsystem(
        "store",
        {
            "o1": {"Artist": "Beatles", "Year": 1967},
            "o2": {"Artist": "Beatles", "Year": 1969},
            "o3": {"Artist": "Miles Davis", "Year": 1959},
        },
    )


class TestConstruction:
    def test_attributes_and_objects(self, rel):
        assert rel.attributes() == {"Artist", "Year"}
        assert rel.object_ids() == {"o1", "o2", "o3"}

    def test_is_declared_crisp(self, rel):
        assert rel.crisp

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RelationalSubsystem("r", {})

    def test_rejects_ragged_schema(self):
        with pytest.raises(ValueError, match="schema"):
            RelationalSubsystem(
                "r", {"o1": {"A": 1}, "o2": {"A": 1, "B": 2}}
            )


class TestEvaluation:
    def test_crisp_grades(self, rel):
        source = rel.evaluate(AtomicQuery("Artist", "Beatles", "="))
        assert source.random_access("o1") == 1.0
        assert source.random_access("o3") == 0.0

    def test_sorted_stream_matches_first(self, rel):
        source = rel.evaluate(AtomicQuery("Artist", "Beatles", "="))
        first_two = {source.next_sorted().obj, source.next_sorted().obj}
        assert first_two == {"o1", "o2"}
        assert source.next_sorted().grade == 0.0

    def test_every_object_graded(self, rel):
        source = rel.evaluate(AtomicQuery("Year", 1967, "="))
        assert len(source) == 3

    def test_graded_op_rejected(self, rel):
        with pytest.raises(ValueError, match="crisp"):
            rel.evaluate(AtomicQuery("Artist", "Beatles", "~"))

    def test_unknown_attribute_rejected(self, rel):
        with pytest.raises(SubsystemCapabilityError):
            rel.evaluate(AtomicQuery("Nope", "x", "="))

    def test_no_match_all_zero(self, rel):
        source = rel.evaluate(AtomicQuery("Artist", "Nobody", "="))
        assert source.next_sorted().grade == 0.0


class TestStatistics:
    def test_selectivity_exact(self, rel):
        assert rel.estimate_selectivity(
            AtomicQuery("Artist", "Beatles", "=")
        ) == pytest.approx(2 / 3)

    def test_selectivity_no_match(self, rel):
        assert rel.estimate_selectivity(
            AtomicQuery("Artist", "Nobody", "=")
        ) == 0.0

    def test_selectivity_unknown_attribute(self, rel):
        assert rel.estimate_selectivity(AtomicQuery("Nope", "x", "=")) is None

    def test_matching_set(self, rel):
        assert rel.matching_set(
            AtomicQuery("Artist", "Beatles", "=")
        ) == {"o1", "o2"}

    def test_no_internal_conjunction(self, rel):
        with pytest.raises(SubsystemCapabilityError):
            rel.evaluate_conjunction(
                [AtomicQuery("Artist", "Beatles", "=")] * 2
            )
