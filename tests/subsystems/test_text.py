"""Tests for the text-retrieval subsystem."""

import pytest

from repro.core.query import AtomicQuery
from repro.subsystems.text import TextSubsystem, tokenize


@pytest.fixture
def text():
    return TextSubsystem(
        "docs",
        {
            "d1": "A raw soul record with driving horns and raw energy",
            "d2": "Luminous jazz standards, meticulous piano trio",
            "d3": "Driving electronic pulses and luminous synth pads",
            "d4": "Completely unrelated gardening manual",
        },
        attribute="Blurb",
    )


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("Hello WORLD") == ["hello", "world"]

    def test_keeps_apostrophes(self):
        assert tokenize("A Hard Day's Night") == ["a", "hard", "day's", "night"]

    def test_strips_punctuation(self):
        assert tokenize("jazz, soul & funk!") == ["jazz", "soul", "funk"]

    def test_empty(self):
        assert tokenize("") == []


class TestRetrieval:
    def test_relevant_doc_ranks_first(self, text):
        source = text.evaluate(AtomicQuery("Blurb", "raw soul horns", "~"))
        assert source.next_sorted().obj == "d1"

    def test_unrelated_doc_scores_lowest(self, text):
        source = text.evaluate(AtomicQuery("Blurb", "luminous jazz", "~"))
        scores = {o: source.random_access(o) for o in ("d1", "d2", "d3", "d4")}
        assert scores["d2"] == max(scores.values())
        assert scores["d4"] == min(scores.values())

    def test_grades_in_unit_interval(self, text):
        source = text.evaluate(AtomicQuery("Blurb", "driving luminous", "~"))
        for obj in ("d1", "d2", "d3", "d4"):
            assert 0.0 <= source.random_access(obj) <= 1.0

    def test_no_overlap_scores_zero(self, text):
        source = text.evaluate(AtomicQuery("Blurb", "zebra xylophone", "~"))
        assert all(
            source.random_access(o) == 0.0 for o in ("d1", "d2", "d3", "d4")
        )

    def test_every_object_graded(self, text):
        source = text.evaluate(AtomicQuery("Blurb", "jazz", "~"))
        assert len(source) == 4


class TestValidation:
    def test_attribute_name(self, text):
        assert text.attributes() == {"Blurb"}

    def test_crisp_op_rejected(self, text):
        with pytest.raises(ValueError, match="graded"):
            text.evaluate(AtomicQuery("Blurb", "jazz", "="))

    def test_non_string_target_rejected(self, text):
        with pytest.raises(ValueError, match="string"):
            text.evaluate(AtomicQuery("Blurb", 42, "~"))

    def test_needs_documents(self):
        with pytest.raises(ValueError):
            TextSubsystem("t", {})


class TestScoringModel:
    def test_idf_downweights_ubiquitous_terms(self):
        subsystem = TextSubsystem(
            "t",
            {
                "a": "common common common rare",
                "b": "common common common common",
                "c": "common words only here",
            },
        )
        source = subsystem.evaluate(AtomicQuery("text", "rare", "~"))
        assert source.random_access("a") > source.random_access("b")

    def test_self_query_is_strong_match(self, text):
        blurb = "Luminous jazz standards, meticulous piano trio"
        source = text.evaluate(AtomicQuery("Blurb", blurb, "~"))
        assert source.random_access("d2") > 0.95
