"""Tests for the synthetic benchmark subsystem."""

import pytest

from repro.core.query import AtomicQuery
from repro.subsystems.synthetic import SyntheticSubsystem
from repro.workloads.distributions import Capped, Uniform


class TestTables:
    def test_fixed_table_served(self):
        sub = SyntheticSubsystem(
            "syn", tables={"score": {"a": 0.5, "b": 0.9}}
        )
        source = sub.evaluate(AtomicQuery("score", "anything", "~"))
        assert source.random_access("b") == 0.9

    def test_attributes_listed(self):
        sub = SyntheticSubsystem(
            "syn",
            tables={"x": {"a": 0.5}},
            generated={"y": Uniform()},
            objects=["a"],
        )
        assert sub.attributes() == {"x", "y"}

    def test_needs_something(self):
        with pytest.raises(ValueError):
            SyntheticSubsystem("syn")

    def test_population_mismatch(self):
        with pytest.raises(ValueError, match="population"):
            SyntheticSubsystem(
                "syn",
                tables={"x": {"a": 0.5}, "y": {"b": 0.5}},
            )

    def test_generated_needs_objects(self):
        with pytest.raises(ValueError, match="population"):
            SyntheticSubsystem("syn", generated={"x": Uniform()})


class TestGeneratedAttributes:
    def _sub(self):
        return SyntheticSubsystem(
            "syn",
            generated={"rank": Uniform(), "capped": Capped(0.5)},
            objects=[f"o{i}" for i in range(50)],
            seed=3,
        )

    def test_same_query_same_grades(self):
        sub = self._sub()
        q = AtomicQuery("rank", "target-1", "~")
        s1, s2 = sub.evaluate(q), sub.evaluate(q)
        for i in range(50):
            assert s1.random_access(f"o{i}") == s2.random_access(f"o{i}")

    def test_different_targets_different_lists(self):
        sub = self._sub()
        s1 = sub.evaluate(AtomicQuery("rank", "t1", "~"))
        s2 = sub.evaluate(AtomicQuery("rank", "t2", "~"))
        diffs = sum(
            s1.random_access(f"o{i}") != s2.random_access(f"o{i}")
            for i in range(50)
        )
        assert diffs > 40

    def test_distribution_respected(self):
        sub = self._sub()
        source = sub.evaluate(AtomicQuery("capped", "t", "~"))
        assert all(
            source.random_access(f"o{i}") <= 0.5 for i in range(50)
        )

    def test_sources_have_independent_cursors(self):
        sub = self._sub()
        q = AtomicQuery("rank", "t", "~")
        s1, s2 = sub.evaluate(q), sub.evaluate(q)
        s1.next_sorted()
        assert s2.position == 0
