"""The subsystem-side ranking cache (LRU of materialised rankings).

Every concrete subsystem — relational, text, QBIC, synthetic — now
routes ``evaluate`` through a shared
:class:`~repro.subsystems.base.RankingCache`: the descending sort of a
query's graded set is paid once, later sessions are O(1) mints over
the cached ranking, and the hit/miss counters make the behaviour
observable. Repeated federated queries (``run_many`` batches issued
again and again) must hit across the board.
"""

import pytest

from repro.core.query import AtomicQuery
from repro.engine import Engine
from repro.subsystems import (
    DEFAULT_RANKING_CACHE_CAPACITY,
    QbicSubsystem,
    RankingCache,
    RelationalSubsystem,
    SyntheticSubsystem,
    TextSubsystem,
)

OBJS = [f"o{i}" for i in range(24)]


def relational():
    return RelationalSubsystem(
        "rel",
        {o: {"Artist": "Beatles" if i < 3 else f"a{i % 5}"}
         for i, o in enumerate(OBJS)},
    )


def text():
    return TextSubsystem(
        "txt",
        {o: f"doc {i} raw soul energy {'beat' * (i % 4)}"
         for i, o in enumerate(OBJS)},
        attribute="Blurb",
    )


def qbic():
    return QbicSubsystem(
        "img",
        {"Color": {o: (i / 24, 0.2, 0.1) for i, o in enumerate(OBJS)}},
    )


SUBSYSTEM_QUERIES = [
    (relational, AtomicQuery("Artist", "Beatles", "=")),
    (text, AtomicQuery("Blurb", "raw soul", "~")),
    (qbic, AtomicQuery("Color", "red", "~")),
]


class TestPerSubsystemCaching:
    @pytest.mark.parametrize(
        "factory,query", SUBSYSTEM_QUERIES, ids=("relational", "text", "qbic")
    )
    def test_repeat_evaluate_hits_and_preserves_ranking(self, factory, query):
        sub = factory()
        first = sub.evaluate(query)
        assert sub.ranking_cache.misses == 1
        assert sub.ranking_cache.hits == 0
        second = sub.evaluate(query)
        assert sub.ranking_cache.misses == 1
        assert sub.ranking_cache.hits == 1
        # Independent cursors over the same graded set.
        a = [first.next_sorted() for _ in range(5)]
        b = [second.next_sorted() for _ in range(5)]
        assert a == b
        assert first.random_access(OBJS[7]) == second.random_access(OBJS[7])

    @pytest.mark.parametrize(
        "factory,query", SUBSYSTEM_QUERIES, ids=("relational", "text", "qbic")
    )
    def test_evaluate_batched_shares_the_cache(self, factory, query):
        sub = factory()
        sub.evaluate_batched(query, 8)
        sub.evaluate_batched(query, 8)
        assert sub.ranking_cache.misses == 1
        assert sub.ranking_cache.hits == 1

    def test_distinct_queries_miss_independently(self):
        sub = relational()
        sub.evaluate(AtomicQuery("Artist", "Beatles", "="))
        sub.evaluate(AtomicQuery("Artist", "a1", "="))
        assert sub.ranking_cache.misses == 2
        assert sub.ranking_cache.hits == 0

    def test_capacity_is_configurable_and_lru_evicts(self):
        sub = RelationalSubsystem(
            "rel",
            {o: {"Artist": f"a{i % 5}"} for i, o in enumerate(OBJS)},
            cache_capacity=2,
        )
        assert sub.ranking_cache.capacity == 2
        q = [AtomicQuery("Artist", f"a{i}", "=") for i in range(3)]
        sub.evaluate(q[0])
        sub.evaluate(q[1])
        sub.evaluate(q[0])  # refresh q0: q1 becomes the LRU entry
        sub.evaluate(q[2])  # evicts q1
        assert len(sub.ranking_cache) == 2
        sub.evaluate(q[1])  # re-miss after eviction
        assert sub.ranking_cache.misses == 4
        assert sub.ranking_cache.hits == 1

    def test_default_capacity(self):
        assert relational().ranking_cache.capacity == (
            DEFAULT_RANKING_CACHE_CAPACITY
        )

    def test_unhashable_target_bypasses_cache(self):
        sub = qbic()
        query = AtomicQuery("Color", [0.5, 0.5, 0.5], "~")  # list target
        first = sub.evaluate(query)
        second = sub.evaluate(query)
        assert sub.ranking_cache.hits == 0
        assert sub.ranking_cache.misses == 0
        assert first.next_sorted() == second.next_sorted()

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            RankingCache(0)

    def test_synthetic_generated_attribute_survives_eviction(self):
        """Evicting a generated attribute's ranking must not redraw its
        grades — the drawn table lives outside the ranking cache."""
        from repro.workloads.distributions import Uniform

        sub = SyntheticSubsystem(
            "syn",
            generated={"score": Uniform()},
            objects=OBJS,
            cache_capacity=1,
        )
        q_score = AtomicQuery("score", "t1", "~")
        before = [sub.evaluate(q_score).next_sorted() for _ in range(1)]
        sub.evaluate(AtomicQuery("score", "t2", "~"))  # evicts t1
        after = [sub.evaluate(q_score).next_sorted() for _ in range(1)]
        assert before == after


class TestFederatedRunManyCaching:
    def _engine(self):
        engine = Engine()
        engine.register(relational())
        engine.register(text())
        engine.register(qbic())
        return engine

    def test_repeated_run_many_batches_hit_every_subsystem(self):
        engine = self._engine()
        queries = [
            '(Artist = "Beatles") AND (Color ~ "red")',
            '(Blurb ~ "raw soul") OR (Color ~ "red")',
        ]
        engine.run_many(queries, k=5)
        caches = {
            sub.name: sub.ranking_cache for sub in engine.catalog.subsystems
        }
        # First batch: every distinct atom minted once (run_many's own
        # per-batch source cache prevents duplicate evaluation of the
        # shared Color atom within the batch).
        assert caches["rel"].misses == 1
        assert caches["txt"].misses == 1
        assert caches["img"].misses == 1
        assert all(c.hits == 0 for c in caches.values())

        first = engine.run_many(queries, k=5)
        # Second identical batch: pure hits, O(1) mints across the board.
        assert caches["rel"].misses == 1
        assert caches["txt"].misses == 1
        assert caches["img"].misses == 1
        assert caches["rel"].hits == 1
        assert caches["txt"].hits == 1
        assert caches["img"].hits == 1

        second = engine.run_many(queries, k=5)
        for a, b in zip(first.answers, second.answers):
            assert a.items == b.items
            assert a.result.stats == b.result.stats


class TestThreadSafety:
    """Concurrent evaluate calls must not corrupt the LRU or counters."""

    def test_concurrent_evaluate_single_flight(self):
        import threading
        from concurrent.futures import ThreadPoolExecutor

        calls = {"builds": 0}
        lock = threading.Lock()
        cache = RankingCache(capacity=None)
        query = AtomicQuery("Artist", "Beatles", "=")
        grades = {o: i / len(OBJS) for i, o in enumerate(OBJS)}

        def build():
            with lock:
                calls["builds"] += 1
            return grades

        barrier = threading.Barrier(8)

        def evaluate(_):
            barrier.wait()
            return cache.source("rel", query, build)

        with ThreadPoolExecutor(max_workers=8) as pool:
            sources = list(pool.map(evaluate, range(8)))

        # Single-flight: eight racing threads, one build, one miss.
        assert calls["builds"] == 1
        assert cache.misses == 1
        assert cache.hits == 7
        first = [sources[0].next_sorted() for _ in range(3)]
        for src in sources[1:]:
            assert [src.next_sorted() for _ in range(3)] == first

    def test_concurrent_mixed_keys_keep_exact_counters(self):
        from concurrent.futures import ThreadPoolExecutor

        sub = relational()
        queries = [AtomicQuery("Artist", f"a{i % 5}", "=") for i in range(40)]
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(sub.evaluate, queries))
        cache = sub.ranking_cache
        assert cache.misses == 5  # one per distinct atom
        assert cache.hits == 35
        assert len(cache) == 5


class TestFailedBuilds:
    def test_failed_build_releases_per_key_state_and_retries(self):
        cache = RankingCache()
        query = AtomicQuery("Artist", "x", "=")
        attempts = {"n": 0}

        def flaky_build():
            attempts["n"] += 1
            if attempts["n"] == 1:
                raise RuntimeError("subsystem hiccup")
            return {"a": 0.5, "b": 0.25}

        with pytest.raises(RuntimeError):
            cache.source("rel", query, flaky_build)
        # The failed build must not leak its in-flight lock...
        assert cache._building == {}
        # ...and a retry builds cleanly.
        source = cache.source("rel", query, flaky_build)
        assert source.next_sorted().obj == "a"
        assert cache.misses == 1

    def test_clear_drops_in_flight_build_locks(self):
        cache = RankingCache()
        cache.source("rel", AtomicQuery("A", "t", "~"), lambda: {"a": 1.0})
        cache._building["stale"] = object()
        cache.clear()
        assert len(cache) == 0
        assert cache._building == {}
