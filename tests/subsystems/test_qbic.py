"""Tests for the QBIC-like image subsystem."""

import pytest

from repro.core.query import AtomicQuery
from repro.exceptions import SubsystemCapabilityError, UnknownObjectError
from repro.subsystems.qbic import QbicSubsystem, gaussian_similarity


@pytest.fixture
def qbic():
    return QbicSubsystem(
        "qbic",
        {
            "color": {
                "img1": (0.9, 0.1, 0.1),   # red
                "img2": (0.1, 0.1, 0.9),   # blue
                "img3": (0.8, 0.2, 0.2),   # reddish
            },
            "shape": {
                "img1": (0.2,),
                "img2": (0.9,),
                "img3": (0.5,),
            },
        },
        named_targets={"shape": {"round": (1.0,)}},
    )


class TestGaussianSimilarity:
    def test_perfect_match(self):
        assert gaussian_similarity((0.5, 0.5), (0.5, 0.5), 0.3) == 1.0

    def test_decreases_with_distance(self):
        close = gaussian_similarity((0.5,), (0.6,), 0.3)
        far = gaussian_similarity((0.5,), (0.9,), 0.3)
        assert 1.0 > close > far > 0.0

    def test_symmetric(self):
        a, b = (0.2, 0.7), (0.9, 0.3)
        assert gaussian_similarity(a, b, 0.3) == gaussian_similarity(b, a, 0.3)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError, match="dimension"):
            gaussian_similarity((0.5,), (0.5, 0.5), 0.3)

    def test_bandwidth_positive(self):
        with pytest.raises(ValueError, match="bandwidth"):
            gaussian_similarity((0.5,), (0.5,), 0.0)


class TestConstruction:
    def test_attributes(self, qbic):
        assert qbic.attributes() == {"color", "shape"}

    def test_population_mismatch_rejected(self):
        with pytest.raises(ValueError, match="populations"):
            QbicSubsystem(
                "q",
                {
                    "color": {"a": (1, 0, 0)},
                    "shape": {"b": (0.5,)},
                },
            )

    def test_needs_features(self):
        with pytest.raises(ValueError):
            QbicSubsystem("q", {})

    def test_color_feature_gets_named_colors_automatically(self):
        q = QbicSubsystem("q", {"AlbumColor": {"a": (0.9, 0.1, 0.1)}})
        source = q.evaluate(AtomicQuery("AlbumColor", "red", "~"))
        assert source.random_access("a") > 0.9


class TestQueryByValue:
    def test_named_color_target(self, qbic):
        source = qbic.evaluate(AtomicQuery("color", "red", "~"))
        assert source.random_access("img1") > source.random_access("img2")

    def test_vector_target(self, qbic):
        source = qbic.evaluate(AtomicQuery("color", (0.1, 0.1, 0.9), "~"))
        assert source.random_access("img2") == 1.0

    def test_ranking_order(self, qbic):
        source = qbic.evaluate(AtomicQuery("color", "red", "~"))
        order = [source.next_sorted().obj for _ in range(3)]
        assert order == ["img1", "img3", "img2"]

    def test_named_shape_target(self, qbic):
        source = qbic.evaluate(AtomicQuery("shape", "round", "~"))
        assert source.random_access("img2") > source.random_access("img1")

    def test_unknown_named_target(self, qbic):
        with pytest.raises(UnknownObjectError):
            qbic.evaluate(AtomicQuery("color", "chartreuse-ish", "~"))

    def test_crisp_op_rejected(self, qbic):
        with pytest.raises(ValueError, match="graded"):
            qbic.evaluate(AtomicQuery("color", "red", "="))


class TestQueryByExample:
    def test_example_object_is_perfect_match(self, qbic):
        """Footnote 4: 'asking for other images whose colors are close
        to that of image I' — the example itself grades 1."""
        source = qbic.evaluate(AtomicQuery("color", "img1", "~"))
        assert source.random_access("img1") == 1.0
        assert source.random_access("img3") > source.random_access("img2")


class TestInternalConjunction:
    def test_averaging_semantics(self, qbic):
        queries = [
            AtomicQuery("color", "red", "~"),
            AtomicQuery("shape", "round", "~"),
        ]
        combined = qbic.evaluate_conjunction(queries)
        color = qbic.evaluate(AtomicQuery("color", "red", "~"))
        shape = qbic.evaluate(AtomicQuery("shape", "round", "~"))
        for obj in ("img1", "img2", "img3"):
            expected = (
                color.random_access(obj) + shape.random_access(obj)
            ) / 2
            assert combined.random_access(obj) == pytest.approx(expected)

    def test_differs_from_min_semantics(self, qbic):
        """Section 8: the internal semantics is NOT Garlic's min rule."""
        queries = [
            AtomicQuery("color", "red", "~"),
            AtomicQuery("shape", "round", "~"),
        ]
        combined = qbic.evaluate_conjunction(queries)
        color = qbic.evaluate(AtomicQuery("color", "red", "~"))
        shape = qbic.evaluate(AtomicQuery("shape", "round", "~"))
        diffs = [
            abs(
                combined.random_access(o)
                - min(color.random_access(o), shape.random_access(o))
            )
            for o in ("img1", "img2", "img3")
        ]
        assert max(diffs) > 0.01

    def test_needs_two_queries(self, qbic):
        with pytest.raises(SubsystemCapabilityError):
            qbic.evaluate_conjunction([AtomicQuery("color", "red", "~")])

    def test_capability_flag(self, qbic):
        assert qbic.supports_internal_conjunction
