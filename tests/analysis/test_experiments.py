"""Tests for the experiment runner."""

import pytest

from repro.algorithms.fa import FaginA0
from repro.algorithms.naive import NaiveAlgorithm
from repro.analysis.experiments import CostSummary, measure_costs, run_trials
from repro.core.tnorms import MINIMUM
from repro.workloads.skeletons import independent_database


def _make_db(seed):
    return independent_database(2, 100, seed=seed)


class TestRunTrials:
    def test_returns_one_result_per_trial(self):
        results = run_trials(_make_db, FaginA0(), MINIMUM, 5, trials=4)
        assert len(results) == 4

    def test_seeds_vary_across_trials(self):
        results = run_trials(_make_db, FaginA0(), MINIMUM, 5, trials=6)
        costs = {r.stats.sum_cost for r in results}
        assert len(costs) > 1  # different databases, different costs

    def test_reproducible_with_same_base_seed(self):
        a = run_trials(_make_db, FaginA0(), MINIMUM, 5, trials=3, base_seed=9)
        b = run_trials(_make_db, FaginA0(), MINIMUM, 5, trials=3, base_seed=9)
        assert [r.stats for r in a] == [r.stats for r in b]

    def test_needs_a_trial(self):
        with pytest.raises(ValueError):
            run_trials(_make_db, FaginA0(), MINIMUM, 5, trials=0)


class TestCostSummary:
    def test_aggregates(self):
        results = run_trials(_make_db, NaiveAlgorithm(), MINIMUM, 1, trials=3)
        summary = CostSummary.from_results(results)
        assert summary.trials == 3
        assert summary.mean_sorted == 200.0  # naive: m*N always
        assert summary.mean_random == 0.0
        assert summary.max_sum == 200

    def test_depth_tracking(self):
        results = run_trials(_make_db, FaginA0(), MINIMUM, 5, trials=5)
        summary = CostSummary.from_results(results)
        assert summary.max_depth >= summary.mean_depth

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CostSummary.from_results([])

    def test_repr(self):
        results = run_trials(_make_db, FaginA0(), MINIMUM, 5, trials=2)
        assert "trials=2" in repr(CostSummary.from_results(results))


class TestMeasureCosts:
    def test_one_call_shape(self):
        summary = measure_costs(_make_db, FaginA0(), MINIMUM, 5, trials=3)
        assert summary.trials == 3
        assert summary.mean_sum > 0
