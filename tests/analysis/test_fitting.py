"""Tests for power-law exponent fitting."""

import pytest

from repro.analysis.fitting import fit_power_law


class TestFitPowerLaw:
    def test_exact_sqrt_law(self):
        xs = [100, 1000, 10000]
        ys = [x**0.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(0.5)
        assert fit.coefficient == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_with_coefficient(self):
        xs = [10, 100, 1000]
        ys = [3.5 * x**0.66 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(0.66)
        assert fit.coefficient == pytest.approx(3.5)

    def test_noisy_data_good_r2(self):
        import random

        rng = random.Random(0)
        xs = [10 * 2**i for i in range(10)]
        ys = [x**0.5 * rng.uniform(0.9, 1.1) for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(0.5, abs=0.05)
        assert fit.r_squared > 0.98

    def test_constant_data_zero_exponent(self):
        fit = fit_power_law([10, 100, 1000], [5.0, 5.0, 5.0])
        assert fit.exponent == pytest.approx(0.0)

    def test_predict(self):
        fit = fit_power_law([1, 10, 100], [2, 20, 200])
        assert fit.predict(1000) == pytest.approx(2000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0, 1])
        with pytest.raises(ValueError):
            fit_power_law([5, 5], [1, 2])

    def test_repr(self):
        fit = fit_power_law([1, 10], [1, 10])
        assert "x^1.000" in repr(fit)
