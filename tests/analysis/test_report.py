"""Tests for the one-command experiment report."""

import pytest

from repro.analysis.report import ReportSection, generate_report, main


class TestReportSection:
    def test_markdown_rendering(self):
        section = ReportSection("E1", "scaling", "N  cost\n1  2", "fine.")
        md = section.to_markdown()
        assert md.startswith("## E1 — scaling")
        assert "```" in md
        assert "**Verdict:** fine." in md


class TestGenerateReport:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_report(trials=2)

    def test_contains_all_sections(self, report):
        for section_id in ("E1", "E5", "E7", "E10", "E9/E11/E16"):
            assert f"## {section_id}" in report

    def test_no_unexpected_verdicts(self, report):
        """Every compact experiment should confirm its claim."""
        assert "UNEXPECTED" not in report

    def test_mentions_theorems(self, report):
        assert "Theorem 5.3" in report
        assert "Theorem 7.1" in report

    def test_trials_validated(self):
        with pytest.raises(ValueError):
            generate_report(trials=1)


class TestCli:
    def test_stdout(self, capsys):
        assert main(["--trials", "2"]) == 0
        out = capsys.readouterr().out
        assert "# repro experiment report" in out

    def test_file_output(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(["--trials", "2", "--output", str(target)]) == 0
        assert target.read_text().startswith("# repro experiment report")
