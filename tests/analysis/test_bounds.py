"""Tests for the closed-form bounds of Sections 5-7."""

import math

import pytest

from repro.analysis.bounds import (
    WIMMERS_EXAMPLES,
    a0_cost_bound,
    chernoff_at_most,
    expected_intersection,
    expected_prefix_intersection,
    fagin_tail_bound,
    hard_query_lower_bound,
    lemma51_bound,
    lower_bound_probability,
    wimmers_tail_bound,
)


class TestA0CostBound:
    def test_m2_is_sqrt(self):
        assert a0_cost_bound(10000, 2, 1) == pytest.approx(100.0)

    def test_m2_k_scaling(self):
        assert a0_cost_bound(10000, 2, 4) == pytest.approx(200.0)

    def test_m3_exponent(self):
        assert a0_cost_bound(1000, 3, 1) == pytest.approx(1000 ** (2 / 3))

    def test_k_equals_n_degenerates_to_n(self):
        """Remark 5.2: at k = N the bound is simply N."""
        assert a0_cost_bound(500, 2, 500) == pytest.approx(500.0)
        assert a0_cost_bound(500, 3, 500) == pytest.approx(500.0)

    def test_m1_is_k(self):
        """One list: the bound is k (read the top k directly)."""
        assert a0_cost_bound(1000, 1, 7) == pytest.approx(7.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            a0_cost_bound(0, 2, 1)


class TestExpectedSizes:
    def test_lemma_51_expectation(self):
        assert expected_intersection(100, 50, 1000) == pytest.approx(5.0)

    def test_prefix_intersection_m2(self):
        # T^2/N for two lists
        assert expected_prefix_intersection(100, 1000, 2) == pytest.approx(10.0)

    def test_prefix_intersection_at_bound_is_theta_m_k(self):
        """The Theorem 6.4 step: T = theta*bound gives E = theta^m * k."""
        n, m, k, theta = 10000, 3, 5, 0.5
        depth = theta * a0_cost_bound(n, m, k)
        expected = expected_prefix_intersection(depth, n, m)
        assert expected == pytest.approx(theta**m * k, rel=1e-9)


class TestTailBounds:
    def test_lemma51_shape(self):
        assert lemma51_bound(10.0) == pytest.approx(math.exp(-1.0))
        assert lemma51_bound(0.0) == 1.0

    def test_chernoff(self):
        assert chernoff_at_most(0.5, 100) == pytest.approx(
            math.exp(-0.125 * 100)
        )

    def test_chernoff_validation(self):
        with pytest.raises(ValueError):
            chernoff_at_most(1.5, 10)

    def test_fagin_tail_decreases_in_c(self):
        b2 = fagin_tail_bound(2, 10000, 2, 10)
        b4 = fagin_tail_bound(4, 10000, 2, 10)
        assert b4 < b2

    def test_fagin_tail_dominant_term(self):
        """For m = 2 the only term is e^(-c*k/5)."""
        assert fagin_tail_bound(2, 10**8, 2, 10) == pytest.approx(
            math.exp(-2 * 10 / 5), rel=1e-6
        )

    def test_fagin_tail_requires_c_at_least_2(self):
        with pytest.raises(ValueError):
            fagin_tail_bound(1.0, 1000, 2, 1)

    def test_wimmers_dominant_term(self):
        assert wimmers_tail_bound(2, 10) == pytest.approx(math.exp(-40))

    def test_wimmers_examples_recorded(self):
        assert WIMMERS_EXAMPLES[2] == 2e-8
        assert WIMMERS_EXAMPLES[3] == 4e-27


class TestLowerBound:
    def test_probability_theta_m(self):
        assert lower_bound_probability(0.5, 2) == 0.25
        assert lower_bound_probability(0.5, 3) == 0.125

    def test_capped_at_one(self):
        assert lower_bound_probability(2.0, 2) == 1.0

    def test_theta_zero_is_certain_cost(self):
        """Theta -> 0: no algorithm finishes with vanishing cost."""
        assert lower_bound_probability(0.0, 3) == 0.0

    def test_negative_theta_rejected(self):
        with pytest.raises(ValueError):
            lower_bound_probability(-0.1, 2)

    def test_hard_query(self):
        assert hard_query_lower_bound(100) == 50.0

    def test_hard_query_scales_linearly(self):
        assert hard_query_lower_bound(10**6) == 5 * 10**5


class TestMoreValidation:
    def test_intersection_requires_positive_n(self):
        with pytest.raises(ValueError):
            expected_intersection(10, 10, 0)

    def test_lemma51_rejects_negative_expectation(self):
        with pytest.raises(ValueError):
            lemma51_bound(-1.0)

    def test_chernoff_rejects_negative_expectation(self):
        with pytest.raises(ValueError):
            chernoff_at_most(0.5, -1.0)

    def test_wimmers_validation(self):
        with pytest.raises(ValueError):
            wimmers_tail_bound(0.0, 10)
        with pytest.raises(ValueError):
            wimmers_tail_bound(2.0, 0)


class TestMeasuredCostAgainstEnvelope:
    """Live A0 runs held to the closed forms they reproduce.

    Theorem 5.3 bounds A0's middleware cost by a constant multiple of
    N^((m-1)/m) * k^(1/m) with arbitrarily high probability on
    independent lists; Theorem 6.4 matches it from below up to
    constants. One seeded run per m is a smoke test of both directions
    with generous constants — the perf harness's approx- lane tracks
    the measured tightness ratio over time.
    """

    K = 10
    N = 10_000

    def _measured(self, m: int) -> tuple[int, float]:
        from repro.algorithms.fa import FaginA0
        from repro.core.tnorms import MINIMUM
        from repro.workloads.skeletons import independent_database

        db = independent_database(m, self.N, seed=42)
        result = FaginA0().top_k(db.session(), MINIMUM, self.K)
        return result.stats.sum_cost, a0_cost_bound(self.N, m, self.K)

    @pytest.mark.parametrize("m", [2, 3])
    def test_a0_within_theorem_53_envelope(self, m):
        cost, envelope = self._measured(m)
        # The theorem's c covers the per-list sorted depth; the random
        # phase adds at most (m-1) accesses per seen object. 4*m^2
        # envelopes absorbs both with room (measured ratios are ~5-8x).
        assert cost <= 4 * m * m * envelope

    @pytest.mark.parametrize("m", [2, 3])
    def test_a0_above_theorem_64_floor(self, m):
        cost, envelope = self._measured(m)
        # The matching lower bound: the cost really is Omega(envelope),
        # not something asymptotically smaller.
        assert cost >= 0.5 * envelope
