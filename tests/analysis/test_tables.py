"""Tests for table rendering."""

import pytest

from repro.analysis.tables import format_cell, format_table, print_table


class TestFormatCell:
    def test_floats_precision(self):
        assert format_cell(3.14159, precision=3) == "3.14"

    def test_ints_verbatim(self):
        assert format_cell(1000) == "1000"

    def test_bools(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_strings(self):
        assert format_cell("abc") == "abc"


class TestFormatTable:
    def test_alignment(self):
        table = format_table(("N", "cost"), [(100, 45.2), (1000, 141.0)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_title(self):
        table = format_table(("a",), [(1,)], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_header_rule(self):
        table = format_table(("ab",), [(1,)])
        assert "--" in table.splitlines()[1]

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [(1,)])

    def test_print_table(self, capsys):
        print_table(("x",), [(1,)])
        out = capsys.readouterr().out
        assert "x" in out and "1" in out
