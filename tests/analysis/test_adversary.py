"""Tests for the executable Lemma 6.2 adversary."""

import random

import pytest

from repro.access.scoring_database import Skeleton
from repro.access.session import MiddlewareSession
from repro.algorithms.base import TopKAlgorithm, TopKResult, top_k_of
from repro.algorithms.disjunction import DisjunctionB0
from repro.algorithms.fa import FaginA0
from repro.algorithms.naive import NaiveAlgorithm
from repro.analysis.adversary import run_lemma62_adversary
from repro.core.aggregation import AggregationFunction
from repro.core.tconorms import MAXIMUM
from repro.core.tnorms import MINIMUM


class UnderReadingAlgorithm(TopKAlgorithm):
    """A deliberately unsound algorithm: reads only the top k of each
    list, random-accesses those objects everywhere, and answers.

    Sublinear and confident — exactly the behaviour Lemma 6.2 punishes
    for strict aggregations.
    """

    name = "under-reader"

    def _run(
        self,
        session: MiddlewareSession,
        aggregation: AggregationFunction,
        k: int,
    ) -> TopKResult:
        m = session.num_lists
        seen: dict[object, dict[int, float]] = {}
        for i, source in enumerate(session.sources):
            for __ in range(min(k, len(source))):
                item = source.next_sorted()
                seen.setdefault(item.obj, {})[i] = item.grade
        for obj, by_list in seen.items():
            for j in range(m):
                if j not in by_list:
                    by_list[j] = session.sources[j].random_access(obj)
        scored = {
            obj: aggregation(*(by_list[j] for j in range(m)))
            for obj, by_list in seen.items()
        }
        return TopKResult(
            items=top_k_of(scored, min(k, len(scored))),
            stats=session.tracker.snapshot(),
            algorithm=self.name,
        )


@pytest.fixture
def skeleton():
    return Skeleton.random(2, 60, random.Random(5))


class TestTheAdversaryBites:
    def test_under_reader_is_fooled(self, skeleton):
        """The cheater leaves objects untouched and answers wrongly on D'."""
        outcome = run_lemma62_adversary(
            UnderReadingAlgorithm(), MINIMUM, skeleton, k=3
        )
        assert outcome.fooled
        assert outcome.untouched is not None
        assert outcome.fooling_database is not None
        # On D', the untouched object has the strictly-best grade.
        truth = outcome.fooling_database.overall_grades(MINIMUM)
        assert truth.grade(outcome.untouched) == 1.0

    def test_fooling_database_differs_only_at_x0(self, skeleton):
        outcome = run_lemma62_adversary(
            UnderReadingAlgorithm(), MINIMUM, skeleton, k=3
        )
        d, d_prime = outcome.database, outcome.fooling_database
        for i in range(2):
            for obj in skeleton.objects:
                if obj == outcome.untouched:
                    assert d_prime.grade(i, obj) == 1.0
                else:
                    assert d_prime.grade(i, obj) == d.grade(i, obj)


class TestSoundAlgorithmsSurvive:
    def test_a0_survives(self, skeleton):
        """A0 reads one past the adversary's prefix and sees through it."""
        outcome = run_lemma62_adversary(FaginA0(), MINIMUM, skeleton, k=3)
        assert outcome.survived

    def test_naive_survives_by_touching_everything(self, skeleton):
        outcome = run_lemma62_adversary(
            NaiveAlgorithm(), MINIMUM, skeleton, k=3
        )
        assert outcome.survived
        assert outcome.untouched is None

    def test_b0_survives_because_max_is_not_strict(self, skeleton):
        """Remark 6.1's escape hatch, live: B0 reads only m*k objects,
        leaves almost everything untouched — yet promoting x0 to all-1s
        cannot invalidate its answer, because max already awards grade
        1 to the objects B0 returned (non-strictness)."""
        outcome = run_lemma62_adversary(
            DisjunctionB0(), MAXIMUM, skeleton, k=3
        )
        assert outcome.survived
        # And it genuinely under-read:
        assert outcome.answer.stats.sum_cost < skeleton.num_objects

    def test_a0_survives_across_depths(self, skeleton):
        for depth in (1, 3, 10):
            outcome = run_lemma62_adversary(
                FaginA0(), MINIMUM, skeleton, k=3, prefix_depth=depth
            )
            assert outcome.survived, f"depth {depth}"


class TestOutcomeShape:
    def test_outcome_fields(self, skeleton):
        outcome = run_lemma62_adversary(
            UnderReadingAlgorithm(), MINIMUM, skeleton, k=2
        )
        assert outcome.database.num_objects == 60
        assert outcome.answer.k == 2
        assert outcome.survived == (not outcome.fooled)
