"""Integration tests: the paper's quantitative claims at test scale.

Small, fast versions of the E1-E15 experiments; the full-resolution
sweeps live in benchmarks/. Every test here states which claim it
pins down.
"""

import statistics

import pytest

from repro.algorithms.disjunction import DisjunctionB0
from repro.algorithms.fa import FaginA0
from repro.algorithms.fa_min import FaginA0Min
from repro.algorithms.hard_query import SelfNegatedScan, hard_query_depth
from repro.algorithms.median import MedianTopK
from repro.algorithms.naive import NaiveAlgorithm
from repro.analysis.bounds import a0_cost_bound
from repro.analysis.experiments import measure_costs
from repro.analysis.fitting import fit_power_law
from repro.core.means import MEDIAN
from repro.core.tconorms import MAXIMUM
from repro.core.tnorms import MINIMUM
from repro.workloads.correlated import correlated_database, hard_query_database
from repro.workloads.skeletons import independent_database


class TestTheorem53UpperBound:
    """A0 cost = O(N^((m-1)/m) k^(1/m)) whp for independent lists."""

    def test_sqrt_scaling_m2(self):
        ns = [250, 1000, 4000]
        costs = []
        for n in ns:
            summary = measure_costs(
                lambda seed, n=n: independent_database(2, n, seed=seed),
                FaginA0(),
                MINIMUM,
                k=5,
                trials=8,
            )
            costs.append(summary.mean_sum)
        fit = fit_power_law(ns, costs)
        assert 0.35 <= fit.exponent <= 0.65

    def test_two_thirds_scaling_m3(self):
        ns = [250, 1000, 4000]
        costs = []
        for n in ns:
            summary = measure_costs(
                lambda seed, n=n: independent_database(3, n, seed=seed),
                FaginA0(),
                MINIMUM,
                k=5,
                trials=8,
            )
            costs.append(summary.mean_sum)
        fit = fit_power_law(ns, costs)
        assert 0.5 <= fit.exponent <= 0.82

    def test_cost_within_constant_of_bound(self):
        """Measured cost / bound stays in a narrow band across N."""
        ratios = []
        for n in (500, 2000, 8000):
            summary = measure_costs(
                lambda seed, n=n: independent_database(2, n, seed=seed),
                FaginA0(),
                MINIMUM,
                k=5,
                trials=8,
            )
            ratios.append(summary.mean_sum / a0_cost_bound(n, 2, 5))
        assert max(ratios) / min(ratios) < 2.5
        assert all(0.5 <= r <= 10 for r in ratios)


class TestTheorem64LowerBound:
    """No run undercuts theta * bound with probability > theta^m."""

    def test_theta_envelope(self):
        n, m, k, theta = 2000, 2, 5, 0.35
        cutoff = theta * a0_cost_bound(n, m, k)
        trials = 60
        undercut = 0
        for seed in range(trials):
            db = independent_database(m, n, seed=seed)
            result = FaginA0().top_k(db.session(), MINIMUM, k)
            if result.stats.sum_cost <= cutoff:
                undercut += 1
        # Theorem bound: theta^m = 0.1225; allow sampling slack.
        assert undercut / trials <= theta**m + 0.1


class TestRemark61NonStrict:
    def test_b0_flat_in_n(self):
        """E5: B0 cost = m*k for every N."""
        for n in (100, 1000, 10000):
            db = independent_database(2, n, seed=1)
            result = DisjunctionB0().top_k(db.session(), MAXIMUM, 10)
            assert result.stats.sum_cost == 20

    def test_median_scales_like_sqrt_not_two_thirds(self):
        """E6: the median algorithm's cost grows ~ sqrt(N) — strictly
        below the N^(2/3) growth the strict-query lower bound would
        force (the bounds are up-to-constants, so we compare growth
        rates, not raw values)."""
        k = 4
        costs = {}
        for n in (1000, 9000):
            summary = measure_costs(
                lambda seed, n=n: independent_database(3, n, seed=seed),
                MedianTopK(),
                MEDIAN,
                k=k,
                trials=6,
            )
            costs[n] = summary.mean_sum
        ratio = costs[9000] / costs[1000]
        # sqrt scaling gives 3.0x; N^(2/3) scaling would give 4.33x.
        assert ratio < 3.9

    def test_median_beats_generic_a0(self):
        """E6 companion: at equal N the construction beats running A0
        on the (monotone) median aggregation."""
        n, k = 4000, 4
        med = measure_costs(
            lambda seed: independent_database(3, n, seed=seed),
            MedianTopK(),
            MEDIAN,
            k=k,
            trials=4,
        )
        a0 = measure_costs(
            lambda seed: independent_database(3, n, seed=seed),
            FaginA0(),
            MEDIAN,
            k=k,
            trials=4,
        )
        assert med.mean_sum < a0.mean_sum


class TestTheorem71HardQuery:
    def test_linear_cost_for_a0(self):
        for n in (200, 800):
            db = hard_query_database(n, seed=3)
            result = FaginA0().top_k(db.session(), MINIMUM, 1)
            assert result.stats.sum_cost >= n

    def test_depth_formula(self):
        for n in (100, 500, 1001):
            db = hard_query_database(n, seed=5)
            assert db.skeleton().match_depth(1) == hard_query_depth(n, 1)

    def test_scan_touches_n_objects(self):
        db = hard_query_database(300, seed=7)
        result = SelfNegatedScan().top_k(db.session(), MINIMUM, 1)
        assert result.stats.sum_cost == 300


class TestNaiveVsA0:
    def test_crossover_table(self):
        """E9: naive is linear, A0 sublinear — the gap must widen."""
        gaps = []
        for n in (400, 3600):
            db = independent_database(2, n, seed=9)
            naive = NaiveAlgorithm().top_k(db.session(), MINIMUM, 10)
            a0 = FaginA0().top_k(db.session(), MINIMUM, 10)
            assert naive.stats.sum_cost == 2 * n
            gaps.append(naive.stats.sum_cost / a0.stats.sum_cost)
        assert gaps[1] > gaps[0] > 1.0


class TestCorrelationEffects:
    def test_monotone_cost_in_rho(self):
        """E10: positive correlation helps, negative hurts."""

        def mean_cost(rho):
            costs = []
            for seed in range(8):
                db = correlated_database(2, 600, rho=rho, seed=seed)
                costs.append(
                    FaginA0()
                    .top_k(db.session(), MINIMUM, 5)
                    .stats.sum_cost
                )
            return statistics.fmean(costs)

        assert mean_cost(0.9) < mean_cost(0.0) < mean_cost(-0.9)

    def test_negative_extreme_is_near_linear(self):
        n = 600
        db = correlated_database(2, n, rho=-1.0, seed=0)
        result = FaginA0().top_k(db.session(), MINIMUM, 1)
        assert result.stats.sum_cost >= n


class TestRemark63Subtlety:
    def test_single_sorted_access_can_suffice_on_a_specific_database(self):
        """Remark 6.3: "assume that the top object in the first list is
        x, and that x has grade 0.9 in every list. A single sorted
        access to the first list tells us that no object can have
        (overall) grade greater than 0.9, and random access to the
        other lists tells us that x has grade 0.9. Therefore, we have
        determined that x is the top answer" — the Threshold
        Algorithm realises exactly this, even though the uniform-depth
        prefix intersection is empty for large T. Lemma 6.2's
        worst-case-over-consistent-databases definitions are what make
        the lower bound immune to such lucky instances."""
        from repro.access.scoring_database import ScoringDatabase
        from repro.algorithms.threshold import ThresholdAlgorithm

        n = 100
        # x tops list 1 at 0.9 with grade 0.9 in list 2 as well — but
        # sits at the *bottom* of list 2's order (everything else there
        # grades above 0.9), and list 2's order reverses list 1's, so
        # the uniform-depth prefix intersection stays empty until ~n/2.
        list1 = {f"o{i}": 0.5 - i * (0.4 / n) for i in range(n)}
        list2 = {f"o{i}": 0.99 - ((n - 1 - i) * (0.08 / n)) for i in range(n)}
        list1["x"], list2["x"] = 0.9, 0.9
        db = ScoringDatabase([list1, list2])
        truth = db.overall_grades(MINIMUM)
        assert truth.top(1).objects() == {"x"}

        result = ThresholdAlgorithm().top_k(db.session(), MINIMUM, 1)
        assert result.objects() == ("x",)
        assert result.grades() == (0.9,)
        # One round: one sorted access + one random access per list.
        assert result.details["rounds"] == 1
        assert result.stats.sum_cost <= 4

        # A0 on the same database pays its skeleton-determined depth.
        a0 = FaginA0().top_k(db.session(), MINIMUM, 1)
        assert a0.stats.sum_cost > result.stats.sum_cost


class TestVariantSavings:
    def test_a0_prime_saves_random_accesses(self):
        """E11: constant-factor savings, never correctness."""
        db = independent_database(2, 2000, seed=4)
        a0 = FaginA0().top_k(db.session(), MINIMUM, 10)
        a0p = FaginA0Min().top_k(db.session(), MINIMUM, 10)
        assert a0p.stats.random_cost < a0.stats.random_cost
        assert sorted(a0p.grades()) == pytest.approx(sorted(a0.grades()))
