"""End-to-end integration: the full CD-store pipeline of Section 2.

Builds the complete federated stack (relational + QBIC + text
subsystems behind Garlic) and runs the paper's queries, checking
answers against an exhaustive oracle and cost accounting against the
strategy expectations.
"""

import pytest

from repro.algorithms.base import is_valid_top_k
from repro.core.graded_set import GradedSet
from repro.core.semantics import STANDARD_FUZZY
from repro.middleware.garlic import Garlic
from repro.middleware.parser import parse_query
from repro.middleware.planner import PlannerOptions
from repro.subsystems.qbic import QbicSubsystem
from repro.subsystems.relational import RelationalSubsystem
from repro.subsystems.text import TextSubsystem
from repro.workloads.datasets import cd_store


@pytest.fixture(scope="module")
def stack():
    albums = cd_store(150, seed=13)
    garlic = Garlic(options=PlannerOptions(selectivity_threshold=0.25))
    garlic.register(
        RelationalSubsystem(
            "store-db",
            {
                a.album_id: {
                    "Artist": a.artist,
                    "Year": a.year,
                    "Genre": a.genre,
                }
                for a in albums
            },
        )
    )
    garlic.register(
        QbicSubsystem(
            "qbic",
            {
                "AlbumColor": {a.album_id: a.cover_rgb for a in albums},
                "Shape": {a.album_id: (a.shape_roundness,) for a in albums},
            },
            named_targets={"Shape": {"round": (1.0,), "square": (0.0,)}},
        )
    )
    garlic.register(
        TextSubsystem(
            "blurbs", {a.album_id: a.blurb for a in albums}, attribute="Blurb"
        )
    )
    return albums, garlic


def _oracle(garlic, query_text):
    query = parse_query(query_text)
    atom_sets = {}
    for a in query.atoms():
        source = garlic.catalog.subsystem_for(a).evaluate(a)
        atom_sets[a] = GradedSet(
            {obj: source.random_access(obj) for obj in garlic.catalog.objects}
        )
    return STANDARD_FUZZY.evaluate_sets(
        query, atom_sets, garlic.catalog.objects
    )


QUERIES = [
    '(Artist = "Beatles") AND (AlbumColor ~ "red")',
    '(AlbumColor ~ "red") AND (Shape ~ "round")',
    '(AlbumColor ~ "blue") OR (Shape ~ "square")',
    '(Genre = "jazz") AND (Blurb ~ "luminous arrangements")',
    '(Artist = "Beatles") OR ((AlbumColor ~ "red") AND (Shape ~ "round"))',
    'WEIGHTED(2: AlbumColor ~ "red", 1: Shape ~ "round")',
    'NOT (Genre = "rock") AND (AlbumColor ~ "red")',
    '(Year = 1967) AND (AlbumColor ~ "red")',
]


@pytest.mark.parametrize("query_text", QUERIES)
def test_answers_match_oracle(stack, query_text):
    __, garlic = stack
    k = 6
    answer = garlic.query(query_text, k=k)
    truth = _oracle(garlic, query_text)
    assert is_valid_top_k(answer.items, truth, k)


def test_every_strategy_exercised(stack):
    """The query list above covers all four physical plan types."""
    __, garlic = stack
    plan_types = {type(garlic.plan(q)).__name__ for q in QUERIES}
    assert "FilteredConjunctPlan" in plan_types
    assert "AlgorithmPlan" in plan_types
    assert "FullScanPlan" in plan_types


def test_federated_cost_is_sublinear_for_conjunction(stack):
    """The Section 1 promise, at the federated level."""
    __, garlic = stack
    answer = garlic.query('(AlbumColor ~ "red") AND (Shape ~ "round")', k=5)
    n = garlic.catalog.num_objects
    assert answer.result.stats.sum_cost < 2 * n  # beats the naive scan


def test_incremental_next_k_via_two_queries(stack):
    """Top-10 equals top-5 followed by next-5 (grade-wise)."""
    __, garlic = stack
    text = '(AlbumColor ~ "red") AND (Shape ~ "round")'
    top10 = garlic.query(text, k=10)
    top5 = garlic.query(text, k=5)
    assert top10.result.grades()[:5] == pytest.approx(top5.result.grades())


def test_crisp_only_query(stack):
    albums, garlic = stack
    answer = garlic.query('Artist = "Beatles"', k=5)
    by_id = {a.album_id: a for a in albums}
    for item in answer.items:
        assert item.grade == 1.0
        assert by_id[item.obj].artist == "Beatles"
