"""Full-stack randomized integration: planner + executor vs oracle.

Random federated catalogs (crisp + graded subsystems over a shared
population), random monotone query trees, random k — every planned and
executed answer must satisfy the Section 4 top-k contract against an
exhaustive evaluation. This is the library's end-to-end safety net:
any planner strategy mis-selection, executor bookkeeping slip or
aggregation compilation bug surfaces here.
"""

import random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.algorithms.base import is_valid_top_k
from repro.core.graded_set import GradedSet
from repro.core.query import And, AtomicQuery, Or, Weighted
from repro.middleware.garlic import Garlic
from repro.middleware.planner import PlannerOptions
from repro.subsystems.relational import RelationalSubsystem
from repro.subsystems.synthetic import SyntheticSubsystem
from repro.workloads.distributions import Beta, Crisp, Uniform

N_OBJECTS = 24
OBJECTS = tuple(f"o{i}" for i in range(N_OBJECTS))

GRADED_ATOMS = tuple(
    AtomicQuery(attr, "t", "~") for attr in ("G1", "G2", "G3")
)
CRISP_ATOMS = (
    AtomicQuery("Tag", "hot", "="),
    AtomicQuery("Tag", "cold", "="),
)


def _build_garlic(seed: int, threshold: float) -> Garlic:
    rng = random.Random(seed)
    garlic = Garlic(
        options=PlannerOptions(selectivity_threshold=threshold)
    )
    garlic.register(
        RelationalSubsystem(
            "rel",
            {
                o: {"Tag": rng.choice(["hot", "cold", "warm"])}
                for o in OBJECTS
            },
        )
    )
    garlic.register(
        SyntheticSubsystem(
            "syn",
            generated={
                "G1": Uniform(),
                "G2": Beta(2, 2),
                "G3": Crisp(0.4),
            },
            objects=OBJECTS,
            seed=seed + 1,
        )
    )
    return garlic


@st.composite
def monotone_queries(draw, depth=2):
    pool = GRADED_ATOMS + CRISP_ATOMS
    if depth == 0 or draw(st.booleans()):
        return draw(st.sampled_from(pool))
    kind = draw(st.integers(min_value=0, max_value=2))
    n = draw(st.integers(min_value=2, max_value=3))
    operands = [draw(monotone_queries(depth=depth - 1)) for _ in range(n)]
    if kind == 0:
        return And(operands)
    if kind == 1:
        return Or(operands)
    weights = [draw(st.integers(min_value=1, max_value=4)) for _ in operands]
    return Weighted(operands, weights)


def _oracle(garlic: Garlic, query) -> GradedSet:
    atom_sets = {}
    for a in query.atoms():
        src = garlic.catalog.subsystem_for(a).evaluate(a)
        atom_sets[a] = GradedSet(
            {obj: src.random_access(obj) for obj in OBJECTS}
        )
    return garlic.semantics.evaluate_sets(query, atom_sets, OBJECTS)


class TestFullStackFuzz:
    @given(
        query=monotone_queries(),
        seed=st.integers(min_value=0, max_value=30),
        k=st.integers(min_value=1, max_value=N_OBJECTS),
        threshold=st.sampled_from([0.0, 0.2, 1.0]),
    )
    @settings(max_examples=120, deadline=None)
    def test_planned_answer_matches_oracle(self, query, seed, k, threshold):
        garlic = _build_garlic(seed, threshold)
        answer = garlic.query(query, k=k)
        truth = _oracle(garlic, query)
        assert is_valid_top_k(answer.items, truth, k), (
            f"plan {type(answer.plan).__name__} wrong for {query!r} "
            f"at k={k}, threshold={threshold}"
        )

    @given(
        query=monotone_queries(),
        seed=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_plan_strategies_all_reachable_and_explainable(self, query, seed):
        garlic = _build_garlic(seed, threshold=0.5)
        plan = garlic.plan(query)
        text = plan.explain()
        assert isinstance(text, str) and text

    @given(seed=st.integers(min_value=0, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_negated_queries_also_correct(self, seed):
        from repro.core.query import Not

        garlic = _build_garlic(seed, threshold=0.2)
        query = And(
            (Not(CRISP_ATOMS[0]), GRADED_ATOMS[0])
        )
        answer = garlic.query(query, k=5)
        truth = _oracle(garlic, query)
        assert is_valid_top_k(answer.items, truth, 5)
