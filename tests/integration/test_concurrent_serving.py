"""Threaded stress tests for the concurrency subsystem.

The shapes under stress:

* a :class:`ColumnarScoringDatabase` as a shared read-only store,
  minting per-query sessions from many threads at once;
* the subsystems' :class:`RankingCache` under concurrent ``evaluate``
  (LRU + counters must stay consistent, misses must be single-flight);
* full engine queries — source- and catalog-backed — hammered from a
  thread pool, every answer checked against the serial ground truth.

These are the tests the CI threaded-stress job runs with a pinned
``PYTHONHASHSEED``; they are deliberately deterministic in their
assertions (exact answers, exact counters) rather than "didn't crash".
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.access import ColumnarScoringDatabase
from repro.core.means import ARITHMETIC_MEAN
from repro.core.query import AtomicQuery
from repro.core.tnorms import MINIMUM
from repro.engine import Engine
from repro.subsystems import (
    RankingCache,
    RelationalSubsystem,
    SyntheticSubsystem,
)
from repro.workloads.skeletons import independent_database

THREADS = 8
ROUNDS_PER_THREAD = 6


def _hammer(fn, threads=THREADS, rounds=ROUNDS_PER_THREAD):
    """Run ``fn(worker_index, round_index)`` threads×rounds times,
    maximising interleaving with a start barrier; re-raises the first
    worker exception."""
    barrier = threading.Barrier(threads)

    def worker(index):
        barrier.wait()
        return [fn(index, r) for r in range(rounds)]

    with ThreadPoolExecutor(max_workers=threads) as pool:
        return list(pool.map(worker, range(threads)))


class TestSharedColumnarStore:
    @pytest.fixture(scope="class")
    def columnar(self):
        return ColumnarScoringDatabase.from_scoring_database(
            independent_database(3, 600, seed=21)
        )

    def test_concurrent_session_mints_and_runs(self, columnar):
        """Cold store: the very first mints race the lazy ranking
        build; every thread must still see the identical ranking."""
        engine = Engine.over(columnar)
        expected = {
            agg.name: engine.query(agg).top(9).items
            for agg in (MINIMUM, ARITHMETIC_MEAN)
        }

        def one_query(index, round_index):
            agg = (MINIMUM, ARITHMETIC_MEAN)[(index + round_index) % 2]
            result = Engine.over(columnar).query(agg).top(9)
            assert result.items == expected[agg.name]
            return result

        _hammer(one_query)

    def test_columns_are_frozen(self, columnar):
        import numpy as np

        matrix = columnar.grades_matrix()
        if isinstance(matrix, np.ndarray):
            # grades_matrix gathers copies; the backing columns
            # themselves must refuse writes.
            with pytest.raises((ValueError, RuntimeError)):
                columnar._columns[0][0] = 0.5


class TestRankingCacheStress:
    def test_single_flight_builds_each_atom_once(self):
        cache = RankingCache(capacity=None)
        build_counts = {}
        build_lock = threading.Lock()
        grades = {f"o{i}": i / 64 for i in range(64)}
        queries = [AtomicQuery("A", f"t{j}", "~") for j in range(4)]

        def build_for(query):
            def build():
                with build_lock:
                    key = query.target
                    build_counts[key] = build_counts.get(key, 0) + 1
                return grades

            return build

        def one_evaluate(index, round_index):
            query = queries[(index + round_index) % len(queries)]
            source = cache.source("src", query, build_for(query))
            assert source.next_sorted().grade == 63 / 64
            return source

        _hammer(one_evaluate)
        # Single-flight: every key built exactly once despite 8 threads
        # racing the first evaluation.
        assert build_counts == {f"t{j}": 1 for j in range(4)}
        assert cache.misses == len(queries)
        assert cache.hits == THREADS * ROUNDS_PER_THREAD - len(queries)

    def test_lru_eviction_under_contention_stays_consistent(self):
        cache = RankingCache(capacity=2)
        grades = {i: i / 32 for i in range(32)}
        queries = [AtomicQuery("A", f"t{j}", "~") for j in range(6)]

        def one_evaluate(index, round_index):
            query = queries[(index * 7 + round_index) % len(queries)]
            source = cache.source("src", query, lambda: grades)
            assert source.random_access(31) == 31 / 32
            return source

        _hammer(one_evaluate)
        assert len(cache) <= 2
        assert cache.hits + cache.misses == THREADS * ROUNDS_PER_THREAD

    def test_subsystem_evaluate_stress(self):
        objs = [f"o{i}" for i in range(50)]
        sub = RelationalSubsystem(
            "rel",
            {o: {"Artist": f"a{i % 5}"} for i, o in enumerate(objs)},
        )
        queries = [AtomicQuery("Artist", f"a{j}", "=") for j in range(5)]
        expected = {
            q.target: tuple(
                sub.evaluate(q).sorted_access_batch(len(objs))
            )
            for q in queries
        }

        def one_evaluate(index, round_index):
            query = queries[(index + round_index) % len(queries)]
            got = tuple(sub.evaluate(query).sorted_access_batch(len(objs)))
            assert got == expected[query.target]

        _hammer(one_evaluate)
        assert sub.ranking_cache.misses == len(queries)


class TestEngineServingStress:
    def test_source_backed_queries_from_many_threads(self):
        columnar = ColumnarScoringDatabase.from_scoring_database(
            independent_database(2, 300, seed=3)
        )
        engine = Engine.over(columnar)
        # Pinned to the static planner: the adaptive chooser's explore
        # slots legitimately vary access counts across repeats, and this
        # test's guarantee is exact-counter determinism of the shared
        # store under threads.
        expected = engine.query(MINIMUM).adaptive(False).top(10)

        def one_query(index, round_index):
            result = engine.query(MINIMUM).adaptive(False).top(10)
            assert result.items == expected.items
            assert result.stats == expected.stats

        _hammer(one_query)

    def test_catalog_backed_queries_from_many_threads(self):
        objs = list(range(80))
        engine = Engine()
        engine.register(
            RelationalSubsystem(
                "rel",
                {o: {"Genre": "jazz" if o % 3 else "rock"} for o in objs},
            )
        )
        engine.register(
            SyntheticSubsystem(
                "syn",
                tables={"score": {o: ((o * 37) % 80) / 80 for o in objs}},
            )
        )
        text = '(Genre = "jazz") AND (score ~ "high")'
        # adaptive(False): same exact-counter rationale as the source-
        # backed stress above.
        expected = engine.query(text).adaptive(False).top(6)

        def one_query(index, round_index):
            result = engine.query(text).adaptive(False).top(6)
            assert result.items == expected.items
            assert result.result.stats == expected.result.stats

        _hammer(one_query)

    def test_parallel_run_many_stress(self):
        """run_many(parallel=8) repeated back to back: the forked-
        cursor atom cache and ranking caches keep every repetition
        bit-identical."""
        objs = list(range(64))
        engine = Engine()
        engine.register(
            RelationalSubsystem(
                "rel", {o: {"Genre": f"g{o % 4}"} for o in objs}
            )
        )
        engine.register(
            SyntheticSubsystem(
                "syn", tables={"score": {o: ((o * 13) % 64) / 64 for o in objs}}
            )
        )
        queries = [
            '(Genre = "g1") AND (score ~ "x")',
            'score ~ "x"',
            '(Genre = "g2") AND (score ~ "x")',
            'score ~ "x"',
        ]
        reference = engine.run_many(queries, k=5)
        for _ in range(4):
            batch = engine.run_many(queries, k=5, parallel=8)
            assert [a.items for a in batch] == [
                a.items for a in reference
            ]
            assert batch.total_sorted == reference.total_sorted
            assert batch.total_random == reference.total_random
