"""Serving over a sharded engine: config validation, the CLI's
engine builder, worker-pool liveness in /healthz, and query/metrics
parity through the HTTP application layer.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import multiprocessing

import pytest

np = pytest.importorskip("numpy")

from repro.access import ColumnarScoringDatabase
from repro.core.tnorms import MINIMUM
from repro.engine import Engine
from repro.serving import HttpRequest, ServingApp, ServingConfig
from repro.serving.__main__ import build_engine
from repro.workloads.skeletons import independent_database

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)

N, M = 240, 3


def columnar() -> ColumnarScoringDatabase:
    return ColumnarScoringDatabase.from_scoring_database(
        independent_database(M, N, seed=21)
    )


def make_request(method, path, payload=None, query=None) -> HttpRequest:
    body = b"" if payload is None else json.dumps(payload).encode()
    return HttpRequest(
        method=method, path=path, query=query or {}, headers={}, body=body
    )


def parse(response) -> dict:
    return json.loads(response.body)


def sharded_app(processes: int) -> ServingApp:
    engine = Engine.over_shards(
        columnar(), shards=3, processes=processes, start_method="fork"
    )
    return ServingApp(
        engine,
        ServingConfig(shards=3, shard_processes=processes),
    )


class TestConfigValidation:
    def test_negative_shards_refused(self):
        with pytest.raises(ValueError, match="shards"):
            ServingConfig(shards=-1)

    def test_negative_shard_processes_refused(self):
        with pytest.raises(ValueError, match="shard_processes"):
            ServingConfig(shards=2, shard_processes=-1)

    def test_shard_processes_without_shards_refused(self):
        with pytest.raises(ValueError, match="without shards"):
            ServingConfig(shard_processes=2)

    def test_unsharded_default_is_fine(self):
        config = ServingConfig()
        assert config.shards is None
        assert config.shard_processes is None


class TestBuildEngine:
    def args(self, **overrides) -> argparse.Namespace:
        base = dict(
            backing="columnar", n=60, m=2, seed=1, shards=0,
            shard_processes=None,
        )
        base.update(overrides)
        return argparse.Namespace(**base)

    def test_columnar_with_shards_builds_sharded_engine(self):
        engine = build_engine(self.args(shards=2, shard_processes=0))
        try:
            assert engine.sharding is not None
            assert engine.sharding.num_shards == 2
            assert engine.sharding.processes == 0
        finally:
            engine.close()

    def test_columnar_without_shards_is_unsharded(self):
        engine = build_engine(self.args())
        assert engine.sharding is None

    def test_catalog_with_shards_refused(self):
        with pytest.raises(SystemExit, match="columnar backing only"):
            build_engine(self.args(backing="catalog", shards=2))


class TestHealthz:
    def test_inline_backing_reports_workers_ok(self):
        async def scenario():
            app = sharded_app(processes=0)
            try:
                return await app.handle(make_request("GET", "/healthz"))
            finally:
                await app.shutdown(grace_s=1.0)

        response = asyncio.run(scenario())
        assert response.status == 200
        payload = parse(response)
        assert payload["status"] == "ok"
        workers = payload["workers"]
        assert workers["shards"] == 3
        assert workers["processes"] == 0
        assert workers["broken"] is False

    def test_pooled_backing_reports_live_worker(self):
        async def scenario():
            app = sharded_app(processes=1)
            try:
                return await app.handle(make_request("GET", "/healthz"))
            finally:
                await app.shutdown(grace_s=2.0)

        response = asyncio.run(scenario())
        assert response.status == 200
        payload = parse(response)
        workers = payload["workers"]
        assert workers["alive"] == 1
        assert len(workers["pids"]) == 1
        assert workers["broken"] is False

    def test_drained_app_reports_draining_with_dead_pool(self):
        async def scenario():
            app = sharded_app(processes=0)
            await app.shutdown(grace_s=1.0)
            return await app.handle(make_request("GET", "/healthz"))

        response = asyncio.run(scenario())
        assert response.status == 503
        payload = parse(response)
        assert payload["status"] == "draining"
        assert payload["workers"]["broken"] is True


class TestQueriesAndMetrics:
    def test_query_answer_matches_direct_engine(self):
        store = columnar()
        with Engine.over(store) as single:
            direct = single.query(MINIMUM).top(7)

        async def scenario():
            app = sharded_app(processes=1)
            try:
                query = await app.handle(
                    make_request(
                        "POST", "/v1/query", {"aggregation": "min", "k": 7}
                    )
                )
                metrics = await app.handle(make_request("GET", "/metrics"))
                return query, metrics
            finally:
                await app.shutdown(grace_s=2.0)

        query, metrics = asyncio.run(scenario())
        assert query.status == 200
        payload = parse(query)
        assert [
            (item["obj"], item["grade"]) for item in payload["items"]
        ] == [(item.obj, item.grade) for item in direct.items]
        assert payload["algorithm"].startswith("sharded-")
        engine_metrics = parse(metrics)["engine"]
        assert engine_metrics["backing"] == "sharded"
        assert engine_metrics["sharding"]["shards"] == 3
        assert engine_metrics["sharding"]["queries"] == 1
