"""Partitioning invariants: contiguous object split, local order =
restriction of the global order, self-describing attach, backends.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from repro.access import ColumnarScoringDatabase
from repro.core.tnorms import MINIMUM
from repro.exceptions import ShardingError
from repro.sharding.partition import (
    ShardSpec,
    attach_store,
    partition_columnar,
    shard_bounds,
)
from repro.workloads.skeletons import independent_database


def columnar(m=3, n=120, seed=5) -> ColumnarScoringDatabase:
    return ColumnarScoringDatabase.from_scoring_database(
        independent_database(m, n, seed=seed)
    )


def read_attached(spec, fn):
    """Attach ``spec``, apply ``fn`` to the store, detach cleanly.

    ``fn`` must return plain data: the store's columns are views into
    the segment, and the segment can only close once every view is
    dropped (hence the ``del`` before ``close``).
    """
    segment, store = attach_store(spec)
    try:
        return fn(store)
    finally:
        del store
        segment.close()


class TestShardBounds:
    def test_balanced_cover(self):
        bounds = shard_bounds(10, 3)
        assert bounds == [(0, 4), (4, 7), (7, 10)]

    def test_exact_division(self):
        assert shard_bounds(9, 3) == [(0, 3), (3, 6), (6, 9)]

    def test_single_shard_is_identity(self):
        assert shard_bounds(7, 1) == [(0, 7)]

    def test_every_shard_nonempty(self):
        for n in range(1, 20):
            for s in range(1, n + 1):
                bounds = shard_bounds(n, s)
                assert all(end > start for start, end in bounds)
                assert bounds[0][0] == 0 and bounds[-1][1] == n

    def test_more_shards_than_objects_refused(self):
        with pytest.raises(ValueError, match="non-empty"):
            shard_bounds(3, 4)

    def test_zero_shards_refused(self):
        with pytest.raises(ValueError, match="at least one"):
            shard_bounds(3, 0)


class TestPartitionInvariant:
    def test_shards_cover_objects_contiguously(self):
        store = columnar()
        specs, segments = partition_columnar(store, 4)
        try:
            rebuilt = []
            for spec in specs:
                rebuilt.extend(
                    read_attached(spec, lambda s: list(s.interned_objects))
                )
            assert rebuilt == list(store.interned_objects)
        finally:
            for segment in segments:
                segment.close()
                segment.unlink()

    def test_shard_grades_match_global_store(self):
        store = columnar(m=2, n=50, seed=9)
        specs, segments = partition_columnar(store, 3)
        try:
            matrix = store.grades_matrix()
            offset = 0
            for spec in specs:
                shard_matrix = read_attached(
                    spec, lambda s: s.grades_matrix().copy()
                )
                np.testing.assert_array_equal(
                    shard_matrix,
                    matrix[:, offset : offset + spec.num_objects],
                )
                offset += spec.num_objects
        finally:
            for segment in segments:
                segment.close()
                segment.unlink()

    def test_local_order_is_restriction_of_global(self):
        """Shard s's ranking of list i equals the global ranking of
        list i filtered down to shard s's objects — the property the
        merge's local-exactness argument needs."""
        store = columnar(m=3, n=80, seed=2)
        specs, segments = partition_columnar(store, 3)
        try:
            for i in range(store.num_lists):
                global_ranking = [
                    item.obj for item in store.ranking(i)
                ]
                for spec in specs:
                    members, local = read_attached(
                        spec,
                        lambda s, i=i: (
                            set(s.interned_objects),
                            [item.obj for item in s.ranking(i)],
                        ),
                    )
                    expected = [
                        obj for obj in global_ranking if obj in members
                    ]
                    assert local == expected
        finally:
            for segment in segments:
                segment.close()
                segment.unlink()

    def test_attached_shard_answers_its_local_top_k(self):
        from repro.algorithms.threshold import ThresholdAlgorithm

        store = columnar(m=2, n=60, seed=4)
        specs, segments = partition_columnar(store, 2)
        try:

            def probe(shard):
                result = ThresholdAlgorithm().top_k(
                    shard.session(), MINIMUM, 5
                )
                # Brute-force the local truth from the shard's columns.
                truth = sorted(
                    (
                        (min(shard.grade(i, o) for i in range(2)), o)
                        for o in shard.interned_objects
                    ),
                    key=lambda pair: (-pair[0], str(pair[1])),
                )[:5]
                return [it.grade for it in result.items], [
                    g for g, _ in truth
                ]

            got, want = read_attached(specs[0], probe)
            assert got == want
        finally:
            for segment in segments:
                segment.close()
                segment.unlink()


class TestBackends:
    def test_mmap_backend_round_trips(self):
        store = columnar(m=2, n=40, seed=7)
        specs, segments = partition_columnar(store, 2, backend="mmap")
        try:
            assert all(spec.token[0] == "mmap" for spec in specs)
            count, objects = read_attached(
                specs[1],
                lambda s: (s.num_objects, list(s.interned_objects)),
            )
            assert count == specs[1].num_objects
            assert objects == list(store.interned_objects)[
                specs[0].num_objects :
            ]
        finally:
            for segment in segments:
                segment.close()
                segment.unlink()

    def test_specs_are_picklable(self):
        import pickle

        store = columnar(m=2, n=30, seed=1)
        specs, segments = partition_columnar(store, 2)
        try:
            for spec in specs:
                clone = pickle.loads(pickle.dumps(spec))
                assert clone == spec
                assert isinstance(clone, ShardSpec)
        finally:
            for segment in segments:
                segment.close()
                segment.unlink()

    def test_unknown_backend_refused(self):
        store = columnar(m=2, n=30, seed=1)
        with pytest.raises(ValueError, match="unknown segment backend"):
            partition_columnar(store, 2, backend="nvram")

    def test_attach_after_unlink_is_a_sharding_error(self):
        store = columnar(m=2, n=30, seed=1)
        specs, segments = partition_columnar(store, 2)
        for segment in segments:
            segment.close()
            segment.unlink()
        with pytest.raises(ShardingError, match="does not exist"):
            attach_store(specs[0])

    def test_too_many_shards_refused(self):
        store = columnar(m=2, n=5, seed=1)
        with pytest.raises(ValueError):
            partition_columnar(store, 6)
