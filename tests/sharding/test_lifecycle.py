"""Segment lifecycle: everything a ShardedEngine creates in /dev/shm
(or tempdir) is released on clean close, on worker crash, and — via
the multiprocessing resource tracker — even when the coordinator
process is SIGKILLed mid-flight.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import subprocess
import sys
import time

import pytest

np = pytest.importorskip("numpy")

from repro.access import ColumnarScoringDatabase
from repro.core.tnorms import MINIMUM
from repro.exceptions import ShardingError
from repro.sharding.engine import ShardedEngine
from repro.workloads.skeletons import independent_database

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)


def columnar(m=2, n=80, seed=13) -> ColumnarScoringDatabase:
    return ColumnarScoringDatabase.from_scoring_database(
        independent_database(m, n, seed=seed)
    )


def segment_paths(sharded: ShardedEngine) -> list[str]:
    if sharded.backend == "shm":
        return [f"/dev/shm/{name}" for name in sharded.segment_names()]
    return list(sharded.segment_names())


def wait_gone(paths, timeout=20.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not any(os.path.exists(path) for path in paths):
            return True
        time.sleep(0.2)
    return False


class TestCleanShutdown:
    def test_inline_close_unlinks_every_segment(self):
        sharded = ShardedEngine(columnar(), shards=3, processes=0)
        paths = segment_paths(sharded)
        sharded.top_k(MINIMUM, 5)  # populate the owner's attach cache
        assert all(os.path.exists(path) for path in paths)
        sharded.close()
        assert not any(os.path.exists(path) for path in paths)

    def test_pooled_close_unlinks_every_segment(self):
        sharded = ShardedEngine(
            columnar(), shards=2, processes=1, start_method="fork"
        )
        paths = segment_paths(sharded)
        sharded.top_k(MINIMUM, 5)
        sharded.close()
        assert not any(os.path.exists(path) for path in paths)

    def test_mmap_close_removes_backing_files(self):
        sharded = ShardedEngine(
            columnar(), shards=2, processes=0, backend="mmap"
        )
        paths = segment_paths(sharded)
        assert all(os.path.exists(path) for path in paths)
        sharded.close()
        assert not any(os.path.exists(path) for path in paths)

    def test_failed_pool_construction_releases_segments(self):
        before = (
            set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else set()
        )
        with pytest.raises(ShardingError):
            ShardedEngine(
                columnar(), shards=2, processes=1, start_method="teleport"
            )
        if os.path.isdir("/dev/shm"):
            leaked = {
                name
                for name in set(os.listdir("/dev/shm")) - before
                if name.startswith("repro_shard_")
            }
            assert not leaked


class TestWorkerCrash:
    def test_sigkilled_worker_fails_queries_but_not_cleanup(self):
        sharded = ShardedEngine(
            columnar(), shards=2, processes=1, start_method="fork"
        )
        paths = segment_paths(sharded)
        try:
            sharded.top_k(MINIMUM, 5)
            (pid,) = sharded.worker_pids()
            os.kill(pid, signal.SIGKILL)
            with pytest.raises(ShardingError, match="worker"):
                sharded.top_k(MINIMUM, 5)
            health = sharded.pool_health()
            assert health["broken"] is True
            assert health["alive"] == 0
        finally:
            sharded.close()
        # The owner still unlinks everything: a dead worker holds no
        # reference once its process is gone.
        assert not any(os.path.exists(path) for path in paths)


class TestCoordinatorCrash:
    def test_sigkilled_coordinator_leaks_no_shm_segments(self, tmp_path):
        """SIGKILL the whole serving process tree mid-flight — worker
        then coordinator, no close() anywhere. The multiprocessing
        resource tracker outlives them both and must reap every
        registered segment once its pipe reaches EOF. (The worker is
        killed too because an idle pool worker blocks on its call
        queue forever and would otherwise outlive the coordinator,
        holding the tracker pipe — and this test's stdout — open.)"""
        script = tmp_path / "crash_coordinator.py"
        script.write_text(
            "import os, signal\n"
            "from repro.access import ColumnarScoringDatabase\n"
            "from repro.core.tnorms import MINIMUM\n"
            "from repro.sharding.engine import ShardedEngine\n"
            "from repro.workloads.skeletons import independent_database\n"
            "store = ColumnarScoringDatabase.from_scoring_database(\n"
            "    independent_database(2, 60, seed=3))\n"
            "engine = ShardedEngine(store, shards=2, processes=1,\n"
            "                       start_method='fork')\n"
            "engine.top_k(MINIMUM, 5)\n"
            "print(engine.backend)\n"
            "print('\\n'.join(engine.segment_names()), flush=True)\n"
            "for pid in engine.worker_pids():\n"
            "    os.kill(pid, signal.SIGKILL)\n"
            "os.kill(os.getpid(), signal.SIGKILL)\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.getcwd(), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        lines = proc.stdout.splitlines()
        assert lines, "coordinator died before printing its segments"
        backend, names = lines[0], lines[1:]
        if backend != "shm":
            pytest.skip("shm backend unavailable; mmap has no tracker")
        assert names
        paths = [f"/dev/shm/{name}" for name in names]
        assert wait_gone(paths), (
            f"segments still present after coordinator SIGKILL: "
            f"{[p for p in paths if os.path.exists(p)]}"
        )
