"""ε-aware threshold-exchange merge: exact parity at ε=0, certified
approximation and probe savings at ε>0, across shard widths."""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from repro.access import ColumnarScoringDatabase
from repro.core.certify import QualityContract
from repro.core.tnorms import MINIMUM
from repro.engine.context import ExecutionContext
from repro.engine.engine import Engine
from repro.sharding.engine import ShardedEngine
from repro.workloads.skeletons import independent_database

N, M, K = 240, 3, 8


def columnar(seed=13) -> ColumnarScoringDatabase:
    return ColumnarScoringDatabase.from_scoring_database(
        independent_database(M, N, seed=seed)
    )


def answers_of(result):
    return [(item.obj, item.grade) for item in result.items]


def ledger_of(result):
    return (
        tuple(result.stats.sorted_by_list),
        tuple(result.stats.random_by_list),
    )


class TestEpsilonZeroParity:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_exact_contract_is_bit_identical(self, shards):
        """An explicit ε=0 contract must not change a single probe."""
        store = columnar()
        with ShardedEngine(store, shards=shards, processes=0) as plain:
            baseline = plain.top_k(MINIMUM, K)
        store = columnar()
        with ShardedEngine(store, shards=shards, processes=0) as contracted:
            relaxed = contracted.top_k(
                MINIMUM, K, contract=QualityContract.approximate(0.0)
            )
        assert answers_of(relaxed) == answers_of(baseline)
        assert ledger_of(relaxed) == ledger_of(baseline)
        assert relaxed.details["merge_rounds"] == baseline.details["merge_rounds"]
        assert relaxed.guarantee.kind == "exact"

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_sharded_matches_single_store_at_epsilon_zero(self, shards):
        single = Engine.over(independent_database(M, N, seed=13))
        truth = single.query(MINIMUM).top(K)
        with ShardedEngine(columnar(), shards=shards, processes=0) as sharded:
            result = sharded.top_k(MINIMUM, K)
        assert [g for _, g in answers_of(result)] == [
            item.grade for item in truth.items
        ]


class TestEpsilonRelaxedMerge:
    def test_certificate_against_true_answers(self):
        db = independent_database(M, N, seed=13)
        truth = db.true_top_k(MINIMUM, K)
        true_kth = truth[-1].grade
        with ShardedEngine(columnar(), shards=4, processes=0) as sharded:
            for epsilon in (0.05, 0.2, 0.5):
                result = sharded.top_k(
                    MINIMUM, K, contract=QualityContract.approximate(epsilon)
                )
                got_kth = result.items[-1].grade
                assert (1.0 + epsilon) * got_kth >= true_kth - 1e-12

    def test_relaxation_never_costs_more_probes(self):
        with ShardedEngine(columnar(), shards=4, processes=0) as sharded:
            exact = sharded.top_k(MINIMUM, K)
            relaxed = sharded.top_k(
                MINIMUM, K, contract=QualityContract.approximate(0.5)
            )
        assert relaxed.details["probes"] <= exact.details["probes"]
        assert relaxed.stats.sum_cost <= exact.stats.sum_cost

    def test_guarantee_is_honest(self):
        """The merge reports approximate only when the slack fired."""
        with ShardedEngine(columnar(), shards=4, processes=0) as sharded:
            relaxed = sharded.top_k(
                MINIMUM, K, contract=QualityContract.approximate(0.5)
            )
            if relaxed.details.get("relaxed_drops"):
                assert relaxed.guarantee.kind == "approximate"
                assert relaxed.guarantee.epsilon == 0.5
                assert relaxed.guarantee.threshold is not None
            else:
                assert relaxed.guarantee.kind == "exact"

    def test_engine_facade_threads_context_epsilon(self):
        engine = Engine.over_shards(
            columnar(),
            ExecutionContext(epsilon=0.3),
            shards=2,
            processes=0,
        )
        with engine:
            result = engine.query(MINIMUM).top(K)
            assert result.guarantee is not None
            assert result.guarantee.kind in ("exact", "approximate")
            quality = engine.metrics_snapshot()["quality"]
            assert quality["exact"] + quality["approximate"] == 1

    def test_run_many_carries_contract(self):
        with ShardedEngine(columnar(), shards=2, processes=0) as sharded:
            results = sharded.run_many(
                [(MINIMUM, K), (MINIMUM, 2 * K)],
                contract=QualityContract.approximate(0.2),
            )
        assert len(results) == 2
        for result in results:
            assert result.guarantee is not None
