"""ShardedEngine + Engine facade: count parity across transports,
spawn/fork parity, merge bookkeeping, and facade contracts.
"""

from __future__ import annotations

import asyncio
import multiprocessing

import pytest

np = pytest.importorskip("numpy")

from repro.access import ColumnarScoringDatabase
from repro.core.means import ARITHMETIC_MEAN
from repro.core.tconorms import MAXIMUM
from repro.core.tnorms import MINIMUM
from repro.engine.async_engine import AsyncEngine
from repro.engine.engine import Engine
from repro.exceptions import (
    EngineConfigurationError,
    InsufficientObjectsError,
    PlanningError,
    ShardingError,
)
from repro.sharding.engine import ShardedEngine
from repro.workloads.skeletons import independent_database

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)


def columnar(m=3, n=200, seed=11) -> ColumnarScoringDatabase:
    return ColumnarScoringDatabase.from_scoring_database(
        independent_database(m, n, seed=seed)
    )


def answers_of(result):
    return [(item.obj, item.grade) for item in result.items]


def ledger_of(result):
    return (
        tuple(result.stats.sorted_by_list),
        tuple(result.stats.random_by_list),
    )


AGGREGATIONS = [MINIMUM, MAXIMUM, ARITHMETIC_MEAN]


class TestCountParity:
    """The tentpole invariant: answers equal the single store's, and
    the summed ledger is bit-identical across pool widths and against
    the inline (processes=0) reference."""

    def test_pool_widths_agree_with_inline_reference(self):
        store = columnar()
        with Engine.over(store) as single:
            serial = [
                answers_of(single.query(agg).top(10)) for agg in AGGREGATIONS
            ]
        reference = None
        for processes in (0, 1, 2):
            with Engine.over_shards(
                store, shards=4, processes=processes, start_method="fork"
            ) as engine:
                results = [engine.query(agg).top(10) for agg in AGGREGATIONS]
            assert [answers_of(r) for r in results] == serial
            ledgers = [ledger_of(r) for r in results]
            if reference is None:
                reference = ledgers
            else:
                assert ledgers == reference

    def test_run_many_transport_matches_sequential_top_k(self):
        """Batched transport ships different tasks but must run the
        same probes: per-member answers AND ledgers equal the one-at-
        a-time path."""
        store = columnar(m=2, n=150, seed=3)
        specs = [(agg, 7) for agg in AGGREGATIONS] * 2
        with Engine.over_shards(
            store, shards=3, processes=2, start_method="fork"
        ) as engine:
            sequential = [
                engine.query(agg).top(k) for agg, k in specs
            ]
            batch = engine.run_many(specs)
        assert len(batch.answers) == len(specs)
        for got, want in zip(batch.answers, sequential):
            assert answers_of(got) == answers_of(want)
            assert ledger_of(got) == ledger_of(want)
        assert batch.total_sorted == sum(
            r.stats.sorted_cost for r in sequential
        )
        assert batch.total_random == sum(
            r.stats.random_cost for r in sequential
        )
        assert batch.details["sharded"] is True
        assert batch.details["shards"] == 3

    def test_spawn_and_fork_agree(self):
        """Start method is transport, never accounting."""
        store = columnar(m=2, n=80, seed=5)
        by_method = {}
        for method in ("fork", "spawn"):
            with Engine.over_shards(
                store, shards=2, processes=1, start_method=method
            ) as engine:
                result = engine.query(MINIMUM).top(6)
            by_method[method] = (answers_of(result), ledger_of(result))
        assert by_method["fork"] == by_method["spawn"]

    def test_wire_name_equals_instance(self):
        store = columnar(m=2, n=90, seed=8)
        with ShardedEngine(store, shards=3, processes=0) as sharded:
            by_name = sharded.top_k("min", 5)
            by_instance = sharded.top_k(MINIMUM, 5)
        assert answers_of(by_name) == answers_of(by_instance)
        assert ledger_of(by_name) == ledger_of(by_instance)


class TestMergeBookkeeping:
    def test_result_details_and_algorithm_naming(self):
        store = columnar(m=2, n=100, seed=2)
        with ShardedEngine(store, shards=4, processes=0) as sharded:
            result = sharded.top_k(MINIMUM, 5, strategy="fagin")
        assert result.algorithm == "sharded-A0"
        details = result.details
        assert details["shards"] == 4
        assert details["threshold_exchange"] is True
        assert details["probes"] >= 4  # every shard probed at least once
        assert details["merge_rounds"] >= 1
        assert len(details["per_shard_asked"]) == 4

    def test_metrics_counters_accumulate(self):
        store = columnar(m=2, n=60, seed=6)
        with ShardedEngine(store, shards=2, processes=0) as sharded:
            sharded.top_k(MINIMUM, 3)
            sharded.top_k(MAXIMUM, 3)
            metrics = sharded.metrics()
        assert metrics["queries"] == 2
        assert metrics["probes"] >= 4
        assert metrics["shards"] == 2
        assert metrics["processes"] == 0

    def test_k_equal_to_population_exhausts_every_shard(self):
        store = columnar(m=2, n=40, seed=4)
        with ShardedEngine(store, shards=3, processes=0) as sharded:
            result = sharded.top_k(MINIMUM, 40)
        assert len(result.items) == 40
        # Full-population ranking equals the single store's.
        with Engine.over(store) as single:
            want = answers_of(single.query(MINIMUM).top(40))
        assert answers_of(result) == want


class TestValidation:
    def test_bad_k_refused(self):
        store = columnar(m=2, n=30, seed=1)
        with ShardedEngine(store, shards=2, processes=0) as sharded:
            for bad in (0, -1, True, "5"):
                with pytest.raises(ValueError):
                    sharded.top_k(MINIMUM, bad)

    def test_k_beyond_population_refused(self):
        store = columnar(m=2, n=30, seed=1)
        with ShardedEngine(store, shards=2, processes=0) as sharded:
            with pytest.raises(InsufficientObjectsError):
                sharded.top_k(MINIMUM, 31)

    def test_unknown_wire_aggregation_refused(self):
        store = columnar(m=2, n=30, seed=1)
        with ShardedEngine(store, shards=2, processes=0) as sharded:
            with pytest.raises(ShardingError, match="unknown wire"):
                sharded.top_k("median-of-medians", 3)

    def test_bad_shard_and_process_counts_refused(self):
        store = columnar(m=2, n=30, seed=1)
        with pytest.raises(ValueError):
            ShardedEngine(store, shards=0)
        with pytest.raises(ValueError):
            ShardedEngine(store, shards=True)
        with pytest.raises(ValueError):
            ShardedEngine(store, shards=2, processes=-1)

    def test_unavailable_start_method_is_sharding_error(self):
        store = columnar(m=2, n=30, seed=1)
        with pytest.raises(ShardingError, match="not.*available"):
            ShardedEngine(
                store, shards=2, processes=1, start_method="teleport"
            )


class TestEngineFacade:
    def test_cursor_refused(self):
        store = columnar(m=2, n=50, seed=9)
        with Engine.over_shards(store, shards=2, processes=0) as engine:
            with pytest.raises(PlanningError, match="cursors"):
                engine.query(MINIMUM).cursor()

    def test_explicit_parallel_refused(self):
        store = columnar(m=2, n=50, seed=9)
        with Engine.over_shards(store, shards=2, processes=0) as engine:
            with pytest.raises(EngineConfigurationError, match="drop parallel"):
                engine.run_many([MINIMUM], k=3, parallel=2)

    def test_metrics_snapshot_reports_sharding(self):
        store = columnar(m=2, n=50, seed=9)
        with Engine.over_shards(store, shards=2, processes=0) as engine:
            engine.query(MINIMUM).top(3)
            snapshot = engine.metrics_snapshot()
        assert snapshot["backing"] == "sharded"
        assert snapshot["queries"] == 1
        sharding = snapshot["sharding"]
        assert sharding["shards"] == 2
        assert sharding["queries"] == 1

    def test_close_is_idempotent_and_queries_refused_after(self):
        store = columnar(m=2, n=50, seed=9)
        engine = Engine.over_shards(store, shards=2, processes=0)
        engine.query(MINIMUM).top(3)
        engine.close()
        engine.close()
        with pytest.raises(ShardingError, match="closed"):
            engine.query(MINIMUM).top(3)

    def test_async_facade_default_batch_works(self):
        store = columnar(m=2, n=80, seed=12)

        async def drive():
            engine = Engine.over_shards(
                store, shards=2, processes=1, start_method="fork"
            )
            async with AsyncEngine(engine, max_workers=2) as serving:
                one = await serving.top_k(MINIMUM, k=5)
                # POOL_PARALLELISM must resolve to the sharded batch
                # path, not an explicit parallel= (which is refused).
                batch = await serving.run_many([MINIMUM, MAXIMUM], k=5)
            return one, batch

        one, batch = asyncio.run(drive())
        with Engine.over(store) as single:
            want = answers_of(single.query(MINIMUM).top(5))
        assert answers_of(one) == want
        assert answers_of(batch.answers[0]) == want
        assert batch.details["sharded"] is True
