"""The old surfaces still work — under DeprecationWarning — and agree
with the engine they now delegate to."""

import warnings

import pytest

from repro.algorithms.selection import AlgorithmChoice, choose_algorithm
from repro.core.tconorms import MAXIMUM
from repro.core.tnorms import MINIMUM
from repro.engine.registry import select_strategy
from repro.middleware.garlic import Garlic
from repro.subsystems.qbic import QbicSubsystem


@pytest.fixture
def garlic(albums):
    return Garlic().register(
        QbicSubsystem(
            "qbic",
            {"Color": {a.album_id: a.cover_rgb for a in albums}},
        )
    )


class TestGarlicShim:
    def test_query_emits_deprecation_warning(self, garlic):
        with pytest.deprecated_call():
            answer = garlic.query('Color ~ "red"', k=3)
        assert answer.result.k == 3

    def test_query_matches_engine(self, garlic):
        with pytest.deprecated_call():
            old = garlic.query('Color ~ "red"', k=5)
        new = garlic.engine.query('Color ~ "red"').top(5)
        assert old.items == new.items
        assert old.result.algorithm == new.result.algorithm

    def test_plan_and_explain_do_not_warn(self, garlic):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            plan = garlic.plan('Color ~ "red"')
            text = garlic.explain('Color ~ "red"')
        assert plan.explain() == text.split("\n")[0] or text

    def test_open_cursor_still_pages(self, garlic):
        cursor = garlic.open_cursor('Color ~ "red"')
        page = cursor.next_page(4)
        assert page.k == 4
        assert cursor.pages_fetched == 1

    def test_conjunction_validation_preserved(self, garlic):
        with pytest.raises(ValueError, match="conjunction"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                garlic.query('Color ~ "red"', k=3, conjunction="sideways")

    def test_engine_property_is_the_migration_path(self, garlic):
        assert garlic.engine.catalog is garlic.catalog


class TestChooseAlgorithmShim:
    def test_emits_deprecation_warning(self):
        with pytest.deprecated_call():
            choose_algorithm(MINIMUM, 2)

    @pytest.mark.parametrize("agg", [MINIMUM, MAXIMUM])
    @pytest.mark.parametrize("random_access", [True, False])
    def test_matches_registry_selection(self, agg, random_access):
        with pytest.deprecated_call():
            old = choose_algorithm(agg, 2, random_access=random_access)
        new = select_strategy(agg, 2, random_access=random_access)
        assert isinstance(old, AlgorithmChoice)
        assert old.name == new.name
        assert old.reason == new.reason
