"""Anytime cursors: live bounds, page guarantees, and stop()."""

from __future__ import annotations

import pytest

from repro.core.certify import CertifiedResult
from repro.core.tnorms import MINIMUM
from repro.engine import Engine
from repro.exceptions import EngineConfigurationError
from repro.workloads.skeletons import independent_database

N, M = 300, 3


@pytest.fixture()
def db():
    return independent_database(M, N, seed=47)


class TestLiveBounds:
    def test_none_before_first_page(self, db):
        cursor = Engine.over(db).query(MINIMUM).cursor()
        assert cursor.live_bounds() is None
        assert cursor.guarantee is None

    def test_bounds_follow_each_page(self, db):
        cursor = Engine.over(db).query(MINIMUM).cursor()
        page = cursor.next_k(5)
        bounds = cursor.live_bounds()
        assert bounds["answers_certified"] == 5
        assert bounds["last_grade"] == page.items[-1].grade
        assert bounds["kind"] == "anytime"
        # The page carries the same snapshot in its details.
        assert page.details["certified"] == bounds
        assert page.guarantee.kind == "anytime"
        assert page.guarantee.threshold == bounds["remaining_upper"]

    def test_remaining_upper_tightens_monotonically(self, db):
        cursor = Engine.over(db).query(MINIMUM).cursor()
        uppers = []
        for _ in range(6):
            cursor.next_k(5)
            uppers.append(cursor.live_bounds()["remaining_upper"])
        assert uppers == sorted(uppers, reverse=True)
        assert uppers[-1] < uppers[0]

    def test_remaining_upper_is_sound(self, db):
        """The certified cap really bounds every unreturned grade."""
        truth = {item.obj: item.grade for item in db.true_top_k(MINIMUM, N)}
        cursor = Engine.over(db).query(MINIMUM).cursor()
        for _ in range(4):
            page = cursor.next_k(7)
            upper = page.details["certified"]["remaining_upper"]
            returned = {item.obj for item in cursor.fetched}
            hidden_best = max(
                grade for obj, grade in truth.items() if obj not in returned
            )
            assert upper >= hidden_best - 1e-12

    def test_pages_are_exact_prefix(self, db):
        """Anytime epsilon is 0: every page extends the exact ranking."""
        truth = db.true_top_k(MINIMUM, 20)
        cursor = Engine.over(db).query(MINIMUM).cursor()
        cursor.next_k(10)
        cursor.next_k(10)
        assert [item.grade for item in cursor.fetched] == [
            item.grade for item in truth
        ]
        assert cursor.guarantee.epsilon == 0.0


class TestStop:
    def test_stop_returns_certified_partial(self, db):
        cursor = Engine.over(db).query(MINIMUM).cursor()
        cursor.next_k(5)
        cursor.next_k(5)
        certified = cursor.stop()
        assert isinstance(certified, CertifiedResult)
        assert certified.answers == 10
        assert certified.guarantee.kind == "anytime"
        assert certified.guarantee.threshold == pytest.approx(
            cursor.live_bounds()["remaining_upper"]
        )
        for item in certified.items:
            bounds = certified.bounds[item.obj]
            assert bounds.exact and bounds.lower == item.grade

    def test_stop_seals_the_cursor(self, db):
        cursor = Engine.over(db).query(MINIMUM).cursor()
        cursor.next_k(3)
        cursor.stop()
        assert cursor.closed
        with pytest.raises(EngineConfigurationError):
            cursor.next_k(3)

    def test_stop_is_idempotent(self, db):
        cursor = Engine.over(db).query(MINIMUM).cursor()
        cursor.next_k(3)
        first = cursor.stop()
        second = cursor.stop()
        assert second.answers == first.answers
        assert second.guarantee == first.guarantee

    def test_stop_before_any_page_certifies_empty_prefix(self, db):
        cursor = Engine.over(db).query(MINIMUM).cursor()
        certified = cursor.stop()
        assert certified.answers == 0
        # Nothing returned: the threshold is the trivial cap.
        assert certified.guarantee.threshold == pytest.approx(1.0)


class TestAsyncCursorBounds:
    def test_async_facade_mirrors_bounds_and_stop(self, db):
        import asyncio

        from repro.engine.async_engine import AsyncEngine

        async def scenario():
            async with AsyncEngine(Engine.over(db)) as serving:
                cursor = serving.cursor(MINIMUM, page_size=5)
                assert cursor.live_bounds() is None
                await cursor.next_k()
                bounds = cursor.live_bounds()
                assert bounds["answers_certified"] == 5
                assert cursor.guarantee.kind == "anytime"
                certified = await cursor.stop()
                assert certified.answers == 5
                # async for ends cleanly on a stopped cursor.
                pages = [page async for page in cursor]
                assert pages == []
                return certified

        certified = asyncio.run(scenario())
        assert certified.guarantee.kind == "anytime"
