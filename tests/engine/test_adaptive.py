"""The adaptive planning layer: calibration, shapes, and the chooser.

Covers the three pieces of :mod:`repro.engine.adaptive` in isolation
(known-cost calibration fits, shape normalization modulo constants,
deterministic explore/exploit decisions) and their engine wiring (the
``adaptive(False)`` opt-out, explain() reporting, the metrics block,
and the determinism contract: cursors and batches never advance the
chooser).
"""

import json

import pytest

from repro.core.means import ARITHMETIC_MEAN
from repro.core.tnorms import MINIMUM
from repro.engine import Engine
from repro.engine.adaptive import (
    GLOBAL_SCOPE,
    MIN_CALIBRATION_OBSERVATIONS,
    AdaptiveChooser,
    AdaptiveOptions,
    CalibratedCostModel,
    QueryShape,
    k_band,
    shape_of_aggregation,
)
from repro.engine.context import ExecutionContext
from repro.subsystems import RelationalSubsystem, SyntheticSubsystem
from repro.workloads.skeletons import independent_database

N = 200


def catalog_engine(context: ExecutionContext | None = None) -> Engine:
    objs = [f"o{i}" for i in range(60)]
    engine = Engine(context)
    engine.register(
        RelationalSubsystem(
            "rel",
            {o: {"Genre": "jazz" if i % 3 else "rock"} for i, o in enumerate(objs)},
        )
    )
    engine.register(
        SyntheticSubsystem(
            "syn",
            tables={
                "tempo": {o: ((i * 37) % 60) / 60 for i, o in enumerate(objs)},
                "mood": {o: ((i * 11) % 60) / 60 for i, o in enumerate(objs)},
            },
        )
    )
    return engine


def shape(structure=("agg", "min", 2), band=4, kind="source", **overrides):
    """A hand-built QueryShape for driving the chooser directly."""
    fields = dict(
        kind=kind,
        structure=structure,
        aggregation="min",
        band=band,
        num_atoms=2,
        conjunction="external",
        random_access=True,
        fingerprint=("test", 0),
    )
    fields.update(overrides)
    return QueryShape(**fields)


class TestAdaptiveOptions:
    def test_defaults_validate(self):
        AdaptiveOptions()

    @pytest.mark.parametrize(
        "field, bad",
        [
            ("plan_cache_capacity", 0),
            ("calibration_decay", 0.0),
            ("calibration_decay", 1.5),
            ("history_decay", 0.0),
            ("explore_after", 0),
            ("explore_every", 0),
            ("min_trials", 0),
            ("override_margin", 0.0),
            ("override_margin", 1.2),
            ("explore_cost_cap", 0.5),
        ],
    )
    def test_rejects_bad_values(self, field, bad):
        with pytest.raises(ValueError):
            AdaptiveOptions(**{field: bad})


class TestCalibratedCostModel:
    def feed(self, model, pairs, c1=2e-6, c2=20e-6):
        for s, r in pairs:
            model.observe({"store": (s, r)}, c1 * s + c2 * r)

    def test_fit_recovers_known_unit_costs(self):
        model = CalibratedCostModel(decay=1.0)
        # Varied (S, R) designs so the 2x2 system is well-conditioned.
        self.feed(
            model,
            [(1000, 10), (500, 200), (2000, 50), (100, 400), (800, 800),
             (1500, 5)],
        )
        c1, c2 = model.units()
        assert c1 == pytest.approx(2e-6, rel=1e-6)
        assert c2 == pytest.approx(20e-6, rel=1e-6)
        # The normalized CostModel exposes the paper's c2/c1 ratio.
        assert model.as_cost_model().random_access_ratio == pytest.approx(
            10.0, rel=1e-6
        )
        assert model.estimate_seconds(1000, 100) == pytest.approx(
            2e-3 + 2e-3, rel=1e-6
        )

    def test_untrusted_below_min_observations(self):
        model = CalibratedCostModel()
        self.feed(model, [(100, 10)] * (MIN_CALIBRATION_OBSERVATIONS - 1))
        assert model.units() is None
        assert model.estimate_seconds(10, 0) is None
        assert model.as_cost_model() is None

    def test_sorted_only_scope_falls_back_to_rate(self):
        model = CalibratedCostModel(decay=1.0)
        for _ in range(MIN_CALIBRATION_OBSERVATIONS + 1):
            model.observe({"store": (100, 0)}, 100 * 3e-6)
        c1, c2 = model.units()
        assert c1 == pytest.approx(3e-6, rel=1e-6)
        assert c2 == pytest.approx(3e-6, rel=1e-6)  # blended-rate fallback

    def test_elapsed_apportioned_across_scopes(self):
        model = CalibratedCostModel(decay=1.0)
        # Scope "a" does 3x the accesses of "b" — it gets 3/4 of the
        # elapsed, so both scopes fit the same per-access rate.
        for _ in range(MIN_CALIBRATION_OBSERVATIONS + 1):
            model.observe({"a": (300, 0), "b": (100, 0)}, 400 * 5e-6)
        assert model.units("a")[0] == pytest.approx(5e-6, rel=1e-6)
        assert model.units("b")[0] == pytest.approx(5e-6, rel=1e-6)

    def test_batch_amortization_tracks_transport(self):
        model = CalibratedCostModel()
        for _ in range(6):
            model.observe({"s": (100, 0)}, 100 * 4e-6, batched=False)
            model.observe({"s": (100, 0)}, 100 * 1e-6, batched=True)
        metrics = model.metrics()
        assert metrics["s"]["batch_amortization"] == pytest.approx(
            0.25, rel=0.05
        )

    def test_snapshot_restore_round_trip(self):
        model = CalibratedCostModel(decay=1.0)
        self.feed(model, [(1000, 10), (500, 200), (2000, 50), (100, 400),
                          (800, 800), (1500, 5)])
        snap = model.snapshot()
        json.dumps(snap)  # must be serializable
        clone = CalibratedCostModel()
        clone.restore(snap)
        assert clone.units() == model.units()
        assert clone.observations == model.observations

    def test_metrics_reports_scopes(self):
        model = CalibratedCostModel()
        self.feed(model, [(100, 10)] * 6)
        metrics = model.metrics()
        assert set(metrics) == {"store", GLOBAL_SCOPE}
        block = metrics["store"]
        assert block["observations"] == 6
        assert block["sorted_unit_us"] is not None
        json.dumps(metrics)

    def test_zero_access_and_negative_elapsed_ignored(self):
        model = CalibratedCostModel()
        model.observe({"s": (0, 0)}, 1.0)
        model.observe({"s": (10, 0)}, -1.0)
        assert model.observations == 0


class TestShapes:
    def test_k_band_powers_of_two(self):
        assert k_band(1) == 1
        assert k_band(8) == 4
        assert k_band(10) == k_band(15) == 4
        assert k_band(16) == 5

    def engine_shapes(self, texts, k=10):
        engine = catalog_engine()
        layer = engine._adaptive
        shapes = []
        for text in texts:
            rewritten = engine._planner(None).rewrite(engine._parse(text))
            from repro.engine.adaptive import shape_of_query

            shapes.append(
                shape_of_query(
                    rewritten,
                    engine.catalog,
                    k,
                    "external",
                    True,
                    layer.catalog_fingerprint(engine.catalog),
                )
            )
        return shapes

    def test_constants_do_not_split_shapes(self):
        a, b = self.engine_shapes(
            [
                '(Genre = "jazz") AND (tempo ~ "fast")',
                '(Genre = "jazz") AND (tempo ~ "slow")',
            ]
        )
        assert a == b

    def test_crisp_selectivity_bands_split_shapes(self):
        """Crisp constants whose selectivity lands in different -log2
        bands get distinct shapes: the band is what the planner's
        filtered-conjunct decision keys on."""
        a, b = self.engine_shapes(
            [
                '(Genre = "jazz") AND (tempo ~ "fast")',  # sel 2/3
                '(Genre = "rock") AND (tempo ~ "fast")',  # sel 1/3
            ]
        )
        assert a != b

    def test_structure_splits_shapes(self):
        a, b = self.engine_shapes(
            [
                '(tempo ~ "fast") AND (mood ~ "dark")',
                '(tempo ~ "fast") OR (mood ~ "dark")',
            ]
        )
        assert a != b

    def test_k_band_splits_shapes(self):
        engine = catalog_engine()
        (small,) = self.engine_shapes(['tempo ~ "fast"'], k=10)
        (large,) = self.engine_shapes(['tempo ~ "fast"'], k=20)
        assert small != large
        assert small.band == 4 and large.band == 5

    def test_rewrite_dedup_cannot_alias(self):
        """`A AND A` rewrites to fewer atoms than `A AND B`; shapes are
        taken post-rewrite, so the two cannot share a cache key."""
        a, b = self.engine_shapes(
            [
                '(tempo ~ "fast") AND (tempo ~ "fast")',
                '(tempo ~ "fast") AND (mood ~ "dark")',
            ]
        )
        assert a != b

    def test_source_shape_label(self):
        s = shape_of_aggregation(MINIMUM, 3, 10, True, ("source", 1))
        assert s.kind == "source"
        assert "k∈[8,16)" in s.label
        assert "m=3" in s.label


class TestChooser:
    OPTS = AdaptiveOptions(
        explore_after=3, explore_every=4, min_trials=2, override_margin=0.9
    )
    CANDIDATES = [("nra", 50.0), ("fagin", 100.0), ("naive", 500.0)]

    def test_warmup_is_static(self):
        chooser = AdaptiveChooser(self.OPTS)
        s = shape()
        for _ in range(3):
            decision = chooser.decide(s, "fagin", self.CANDIDATES)
            assert decision.mode == "static"
            assert decision.strategy == "fagin"

    def test_explore_slot_is_counter_deterministic(self):
        chooser = AdaptiveChooser(self.OPTS)
        s = shape()
        for _ in range(2):
            chooser.record(s, "fagin", 120.0)
        modes = [
            chooser.decide(s, "fagin", self.CANDIDATES).mode
            for _ in range(8)
        ]
        # Warmup 3 static, then explore at count 3 and count 7.
        assert modes == [
            "static", "static", "static", "explore",
            "static", "static", "static", "explore",
        ]
        assert chooser.explorations == 2

    def test_explore_prefers_least_sampled_cheapest(self):
        chooser = AdaptiveChooser(self.OPTS)
        s = shape()
        chooser.record(s, "fagin", 120.0)
        for _ in range(3):
            chooser.decide(s, "fagin", self.CANDIDATES)
        decision = chooser.decide(s, "fagin", self.CANDIDATES)
        assert decision.mode == "explore"
        assert decision.strategy == "nra"  # cheapest estimate, 0 samples

    def test_explore_cost_cap_prunes_expensive_trials(self):
        chooser = AdaptiveChooser(self.OPTS)
        s = shape()
        chooser.record(s, "fagin", 100.0)
        chooser.record(s, "nra", 90.0)
        chooser.record(s, "nra", 90.0)  # nra fully sampled
        for _ in range(3):
            chooser.decide(s, "fagin", self.CANDIDATES)
        # Only 'naive' is under-sampled, but 500 > 3.0 * 90 — pruned.
        decision = chooser.decide(s, "fagin", self.CANDIDATES)
        assert decision.mode == "static"
        assert chooser.explorations == 0

    def test_no_anchor_means_no_exploration(self):
        chooser = AdaptiveChooser(self.OPTS)
        s = shape()
        for _ in range(6):
            decision = chooser.decide(s, "fagin", self.CANDIDATES)
            assert decision.mode == "static"

    def test_measured_winner_overrides_incumbent(self):
        chooser = AdaptiveChooser(self.OPTS)
        s = shape()
        for _ in range(2):
            chooser.record(s, "fagin", 200.0)
            chooser.record(s, "nra", 60.0)
        decision = chooser.decide(s, "fagin", self.CANDIDATES)
        assert decision.mode == "exploit"
        assert decision.strategy == "nra"
        assert chooser.overrides == 1

    def test_override_margin_blocks_marginal_wins(self):
        chooser = AdaptiveChooser(self.OPTS)
        s = shape()
        for _ in range(2):
            chooser.record(s, "fagin", 100.0)
            chooser.record(s, "nra", 95.0)  # better, but not 10% better
        decision = chooser.decide(s, "fagin", self.CANDIDATES)
        assert decision.mode == "static"
        assert decision.strategy == "fagin"

    def test_histories_are_per_shape(self):
        chooser = AdaptiveChooser(self.OPTS)
        a, b = shape(band=4), shape(band=5)
        for _ in range(2):
            chooser.record(a, "fagin", 200.0)
            chooser.record(a, "nra", 60.0)
        # Shape b has no evidence: its decision stays static.
        assert chooser.decide(b, "fagin", self.CANDIDATES).mode == "static"
        assert chooser.decide(a, "fagin", self.CANDIDATES).mode == "exploit"

    def test_evidence_rows_sorted_by_cost(self):
        chooser = AdaptiveChooser(self.OPTS)
        s = shape()
        chooser.record(s, "fagin", 200.0)
        chooser.record(s, "nra", 60.0)
        rows = chooser.evidence(s)
        assert [name for name, _, _ in rows] == ["nra", "fagin"]
        assert rows[0][2] == 1  # samples

    def test_metrics_counts(self):
        chooser = AdaptiveChooser(self.OPTS)
        s = shape()
        chooser.decide(s, "fagin", self.CANDIDATES)
        metrics = chooser.metrics()
        assert metrics == {
            "decisions": 1, "explorations": 0, "overrides": 0, "shapes": 1,
        }


class TestEngineWiring:
    def test_opt_out_per_query(self):
        db = independent_database(3, N, seed=11)
        engine = Engine.over(db)
        engine.query(MINIMUM).adaptive(False).top(5)
        planner = engine.metrics_snapshot()["planner"]
        assert planner["enabled"] is True
        assert planner["chooser"]["decisions"] == 0
        assert planner["calibration"] == {}

    def test_opt_out_engine_wide(self):
        db = independent_database(3, N, seed=11)
        engine = Engine.over(db, ExecutionContext(adaptive=False))
        engine.query(MINIMUM).top(5)
        assert engine.metrics_snapshot()["planner"] == {"enabled": False}

    def test_builder_adaptive_rejects_non_bool(self):
        engine = Engine.over(independent_database(2, 50, seed=1))
        with pytest.raises(TypeError):
            engine.query(MINIMUM).adaptive("yes")

    def test_source_queries_feed_chooser_and_calibration(self):
        db = independent_database(3, N, seed=11)
        engine = Engine.over(db)
        for _ in range(3):
            engine.query(MINIMUM).top(5)
        planner = engine.metrics_snapshot()["planner"]
        assert planner["chooser"]["decisions"] == 3
        assert planner["chooser"]["shapes"] == 1
        assert planner["calibration"][GLOBAL_SCOPE]["observations"] == 3

    def test_identical_queries_identical_stats_during_warmup(self):
        db = independent_database(3, N, seed=11)
        engine = Engine.over(db)
        results = [engine.query(MINIMUM).top(5) for _ in range(5)]
        assert all(r.stats == results[0].stats for r in results)
        assert all(r.items == results[0].items for r in results)

    def test_cursors_do_not_advance_chooser(self):
        db = independent_database(3, N, seed=11)
        engine = Engine.over(db)
        cursor = engine.query(MINIMUM).cursor()
        cursor.next_k(5)
        cursor.next_k(5)
        assert (
            engine.metrics_snapshot()["planner"]["chooser"]["decisions"] == 0
        )

    def test_run_many_does_not_advance_chooser(self):
        db = independent_database(3, N, seed=11)
        engine = Engine.over(db)
        engine.run_many([MINIMUM, ARITHMETIC_MEAN, MINIMUM], k=5)
        assert (
            engine.metrics_snapshot()["planner"]["chooser"]["decisions"] == 0
        )

    def test_run_many_parity_with_adaptive_on(self):
        """The serial/parallel count-parity gate must hold with the
        adaptive layer enabled (batches bypass the chooser)."""
        db = independent_database(3, N, seed=11)
        serial = Engine.over(db).run_many([MINIMUM, ARITHMETIC_MEAN] * 3, k=5)
        parallel = Engine.over(db).run_many(
            [MINIMUM, ARITHMETIC_MEAN] * 3, k=5, parallel=4
        )
        assert [r.items for r in serial] == [r.items for r in parallel]
        assert serial.total_sorted == parallel.total_sorted
        assert serial.total_random == parallel.total_random

    def test_forced_strategy_string_still_records_history(self):
        db = independent_database(3, N, seed=11)
        engine = Engine.over(db)
        engine.query(MINIMUM).strategy("nra").top(5)
        planner = engine.metrics_snapshot()["planner"]
        # Forced-by-name runs don't ask the chooser but do feed it.
        assert planner["chooser"]["decisions"] == 0
        assert planner["calibration"][GLOBAL_SCOPE]["observations"] == 1
        s = shape_of_aggregation(
            MINIMUM, 3, 5, True,
            engine._adaptive.source_fingerprint(db),
        )
        # The history ledger has an entry for the forced strategy.
        assert engine._adaptive.chooser.evidence(s) != []

    def test_explain_reports_adaptive_block(self):
        engine = catalog_engine()
        text = '(tempo ~ "fast") AND (mood ~ "dark")'
        engine.query(text).top(10)
        engine.query(text).top(10)
        report = engine.query(text).explain()
        assert "--- adaptive planning ---" in report
        assert "plan cache: HIT (cached plan rebound)" in report
        assert "estimate:" in report
        assert "measured history:" in report

    def test_explain_on_opted_out_query_is_static(self):
        engine = catalog_engine()
        report = (
            engine.query('tempo ~ "fast"').adaptive(False).explain()
        )
        assert "--- adaptive planning ---" not in report

    def test_adaptive_answers_match_static_answers(self):
        """Cache hits and rebinds never change results: an adaptive
        engine and a static engine agree item-for-item."""
        adaptive = catalog_engine()
        static = catalog_engine(ExecutionContext(adaptive=False))
        queries = [
            '(Genre = "jazz") AND (tempo ~ "fast")',
            '(Genre = "rock") AND (tempo ~ "slow")',
            '(tempo ~ "fast") OR (mood ~ "dark")',
            '(Genre = "jazz") AND (tempo ~ "fast")',
        ]
        for text in queries:
            a = adaptive.query(text).top(10)
            b = static.query(text).top(10)
            assert a.items == b.items
            assert a.result.stats == b.result.stats
