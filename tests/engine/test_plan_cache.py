"""The shape-keyed plan cache: hits, rebinding, races, invalidation.

The cache's contract is the RankingCache discipline applied to plans:
single-flight minting, LRU bounds, exact counters under threads — plus
the piece RankingCache doesn't need, *rebinding*: a hit with different
constants must produce answers bit-identical to planning fresh.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.engine import Engine
from repro.engine.adaptive import PlanCache, QueryShape, _CachedPlan
from repro.engine.context import ExecutionContext
from repro.middleware.plan import AlgorithmPlan, FilteredConjunctPlan
from repro.subsystems import RelationalSubsystem, SyntheticSubsystem


def shape(tag: int, fingerprint=("catalog", 0)) -> QueryShape:
    return QueryShape(
        kind="catalog",
        structure=("atom", f"attr{tag}", "~", False, None),
        aggregation="<compiled>",
        band=4,
        num_atoms=1,
        conjunction="external",
        random_access=True,
        fingerprint=fingerprint,
    )


def entry(tag: object) -> _CachedPlan:
    # The cache never introspects its entries; any payload works for
    # counter/LRU tests.
    return _CachedPlan(plan=tag, query=None)  # type: ignore[arg-type]


def catalog_engine(context: ExecutionContext | None = None) -> Engine:
    objs = [f"o{i}" for i in range(60)]
    engine = Engine(context)
    engine.register(
        RelationalSubsystem(
            "rel",
            # 20 artists over 60 objects: selectivity 0.05, under the
            # planner's filtered-conjunct threshold.
            {o: {"Artist": f"a{i % 20}"} for i, o in enumerate(objs)},
        )
    )
    engine.register(
        SyntheticSubsystem(
            "syn",
            tables={
                "tempo": {o: ((i * 37) % 60) / 60 for i, o in enumerate(objs)},
                "mood": {o: ((i * 11) % 60) / 60 for i, o in enumerate(objs)},
            },
        )
    )
    return engine


class TestCounters:
    def test_miss_then_hit(self):
        cache = PlanCache(capacity=4)
        s = shape(1)
        _, hit = cache.lookup(s, lambda: entry("plan"))
        assert not hit
        got, hit = cache.lookup(s, lambda: pytest.fail("must not rebuild"))
        assert hit
        assert got.plan == "plan"
        assert cache.stats() == {
            "entries": 1, "capacity": 4, "hits": 1, "misses": 1,
            "evictions": 0, "invalidations": 0,
        }

    def test_lru_evicts_least_recent(self):
        cache = PlanCache(capacity=2)
        cache.lookup(shape(1), lambda: entry(1))
        cache.lookup(shape(2), lambda: entry(2))
        cache.lookup(shape(1), lambda: entry(1))  # refresh 1
        cache.lookup(shape(3), lambda: entry(3))  # evicts 2
        assert cache.evictions == 1
        builds = []
        cache.lookup(shape(2), lambda: builds.append(2) or entry(2))
        assert builds == [2]  # 2 was evicted, rebuilt
        cache.lookup(shape(3), lambda: builds.append(3) or entry(3))
        assert builds == [2]  # 3 survived as recent when 2 came back

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_clear_counts_one_invalidation(self):
        cache = PlanCache()
        cache.lookup(shape(1), lambda: entry(1))
        cache.clear()
        cache.clear()  # empty: not another invalidation
        assert cache.invalidations == 1
        assert len(cache) == 0


class TestFingerprintInvalidation:
    def test_new_fingerprint_clears_entries(self):
        cache = PlanCache()
        cache.lookup(shape(1, ("catalog", 0)), lambda: entry("old"))
        builds = []
        got, hit = cache.lookup(
            shape(1, ("catalog", 1)),
            lambda: builds.append("new") or entry("new"),
        )
        assert not hit
        assert builds == ["new"]
        assert cache.invalidations == 1
        # The old-fingerprint entry is gone, not shadowed.
        assert len(cache) == 1

    def test_same_fingerprint_is_stable(self):
        cache = PlanCache()
        cache.lookup(shape(1), lambda: entry(1))
        cache.lookup(shape(2), lambda: entry(2))
        assert cache.invalidations == 0
        assert len(cache) == 2


class TestSingleFlight:
    def test_concurrent_first_lookups_build_once(self):
        cache = PlanCache()
        s = shape(1)
        builds = {"n": 0}
        build_lock = threading.Lock()
        barrier = threading.Barrier(8)

        def build():
            with build_lock:
                builds["n"] += 1
            return entry("plan")

        def lookup(_):
            barrier.wait()
            return cache.lookup(s, build)

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(lookup, range(8)))

        # Single-flight: eight racing threads, one build, one miss.
        assert builds["n"] == 1
        assert cache.misses == 1
        assert cache.hits == 7
        assert all(got.plan == "plan" for got, _ in results)

    def test_concurrent_mixed_shapes_keep_exact_counters(self):
        cache = PlanCache()
        shapes = [shape(i) for i in range(5)]
        barrier = threading.Barrier(8)

        def lookup(index):
            barrier.wait()
            out = []
            for round_index in range(5):
                s = shapes[(index + round_index) % len(shapes)]
                out.append(cache.lookup(s, lambda: entry(s)))
            return out

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(lookup, range(8)))

        assert cache.misses == 5  # one per distinct shape
        assert cache.hits == 8 * 5 - 5
        assert len(cache) == 5


class TestRebinding:
    """Cache hits with different constants answer exactly like a
    static engine planning fresh."""

    QUERIES = [
        # AlgorithmPlan shape (all graded):
        ('(tempo ~ "fast") AND (mood ~ "dark")',
         '(tempo ~ "slow") AND (mood ~ "light")'),
        # FilteredConjunctPlan shape (selective crisp filter + graded):
        ('(Artist = "a3") AND (tempo ~ "fast")',
         '(Artist = "a7") AND (tempo ~ "slow")'),
    ]

    @pytest.mark.parametrize("first, second", QUERIES)
    def test_hit_with_new_constants_matches_static(self, first, second):
        adaptive = catalog_engine()
        static = catalog_engine(ExecutionContext(adaptive=False))
        adaptive.query(first).top(10)  # seeds the cache
        cache = adaptive._adaptive.plan_cache
        assert cache.misses == 1
        a = adaptive.query(second).top(10)  # same shape, new constants
        assert cache.hits == 1
        b = static.query(second).top(10)
        assert a.items == b.items
        assert a.result.stats == b.result.stats

    def test_filtered_conjunct_plan_rebinds_filter_atoms(self):
        engine = catalog_engine()
        first = engine.query('(Artist = "a3") AND (tempo ~ "fast")').plan()
        assert isinstance(first, FilteredConjunctPlan)
        second = engine.query('(Artist = "a7") AND (tempo ~ "slow")').plan()
        assert isinstance(second, FilteredConjunctPlan)
        assert [a.target for a in second.filter_atoms] == ["a7"]
        assert [a.target for a in second.graded_atoms] == ["slow"]

    def test_hit_mints_fresh_algorithm_instance(self):
        engine = catalog_engine()
        text = '(tempo ~ "fast") AND (mood ~ "dark")'
        first = engine.query(text).plan()
        second = engine.query(text).plan()
        assert isinstance(first, AlgorithmPlan)
        assert isinstance(second, AlgorithmPlan)
        assert second.algorithm is not first.algorithm

    def test_identical_query_reuses_entry_verbatim(self):
        engine = catalog_engine()
        text = '(tempo ~ "fast") AND (mood ~ "dark")'
        r1 = engine.query(text).top(10)
        r2 = engine.query(text).top(10)
        assert r1.items == r2.items
        assert r1.result.stats == r2.result.stats
        assert engine._adaptive.plan_cache.hits == 1


class TestEngineInvalidation:
    def test_registering_a_subsystem_invalidates(self):
        engine = catalog_engine()
        engine.query('tempo ~ "fast"').top(5)
        assert len(engine._adaptive.plan_cache) == 1
        engine.register(
            SyntheticSubsystem(
                "extra",
                tables={
                    "zest": {f"o{i}": i / 60 for i in range(60)},
                },
            )
        )
        engine.query('tempo ~ "fast"').top(5)
        cache = engine._adaptive.plan_cache
        assert cache.invalidations == 1
        assert cache.misses == 2  # replanned against the grown catalog

    def test_unregistering_a_subsystem_invalidates(self):
        engine = catalog_engine()
        engine.query('tempo ~ "fast"').top(5)
        engine.catalog.unregister("rel")
        engine.query('tempo ~ "fast"').top(5)
        cache = engine._adaptive.plan_cache
        assert cache.invalidations == 1
        assert cache.misses == 2

    def test_store_swap_via_reregister_invalidates(self):
        objs = [f"o{i}" for i in range(60)]
        inverted = {o: 1.0 - ((i * 37) % 60) / 60 for i, o in enumerate(objs)}

        engine = catalog_engine()
        engine.query('tempo ~ "fast"').top(5)
        # Swap the graded store for one with inverted grades: the
        # version bump means the cached plan never serves stale shapes.
        engine.catalog.unregister("syn")
        engine.register(SyntheticSubsystem("syn", tables={"tempo": inverted}))
        before = engine._adaptive.plan_cache.invalidations
        result = engine.query('tempo ~ "fast"').top(5)
        assert engine._adaptive.plan_cache.invalidations == before + 1
        # And the answers reflect the new store, not the cached plan's.
        static = Engine(ExecutionContext(adaptive=False))
        static.register(
            RelationalSubsystem("rel", {o: {"Artist": "x"} for o in objs})
        )
        static.register(SyntheticSubsystem("syn", tables={"tempo": inverted}))
        assert result.items == static.query('tempo ~ "fast"').top(5).items

    def test_unregister_unknown_name_raises(self):
        engine = catalog_engine()
        from repro.exceptions import CatalogError

        with pytest.raises(CatalogError):
            engine.catalog.unregister("nope")
