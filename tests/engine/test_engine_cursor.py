"""ResultCursor paging vs one-shot top_k — the Section 4 promise."""

import pytest

from repro.core.means import ARITHMETIC_MEAN
from repro.core.tnorms import MINIMUM
from repro.core.aggregation import FunctionAggregation
from repro.engine import Engine
from repro.engine.cursor import ResultCursor
from repro.exceptions import InsufficientObjectsError, PlanningError
from repro.workloads.skeletons import independent_database


@pytest.fixture(scope="module")
def db():
    return independent_database(2, 400, seed=21)


class TestPagingEquivalence:
    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_next_k_matches_one_shot_top_k(self, db, k):
        """Acceptance: paged answers equal a one-shot top-k on the
        independent workload, for k in {1, 5, 20}."""
        engine = Engine.over(db)
        one_shot = engine.query(MINIMUM).top(k)
        cursor = engine.query(MINIMUM).cursor()
        page = cursor.next_k(k)
        assert {i.obj for i in page.items} == {
            i.obj for i in one_shot.items
        }
        assert sorted(page.grades()) == pytest.approx(
            sorted(one_shot.grades())
        )

    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_many_small_pages_match_one_shot(self, db, k):
        engine = Engine.over(db)
        one_shot = engine.query(MINIMUM).top(k)
        cursor = engine.query(MINIMUM).cursor()
        paged = []
        while len(paged) < k:
            paged.extend(cursor.next_k(min(2, k - len(paged))).items)
        assert {i.obj for i in paged} == {i.obj for i in one_shot.items}

    def test_pages_are_disjoint_and_ordered(self, db):
        cursor = Engine.over(db).query(ARITHMETIC_MEAN).cursor()
        first = cursor.next_k(10)
        second = cursor.next_k(10)
        first_objs = {i.obj for i in first.items}
        assert first_objs.isdisjoint(i.obj for i in second.items)
        assert min(first.grades()) >= max(second.grades()) - 1e-12

    def test_later_pages_reuse_progress(self, db):
        cursor = Engine.over(db).query(MINIMUM).cursor()
        first = cursor.next_k(10)
        second = cursor.next_k(10)
        # The second page pays only the incremental cost.
        assert second.stats.sum_cost < first.stats.sum_cost

    def test_bookkeeping(self, db):
        cursor = Engine.over(db).query(MINIMUM).cursor()
        assert cursor.pages_fetched == 0
        cursor.next_k(3)
        cursor.next_k(4)
        assert cursor.pages_fetched == 2
        assert cursor.answers_fetched == 7
        assert len(cursor.fetched) == 7
        total = cursor.total_stats()
        assert total.sum_cost == pytest.approx(cursor.total_cost())

    def test_default_page_size_from_context(self, db):
        cursor = Engine.over(db).query(MINIMUM).cursor()
        assert cursor.next_k().k == 10


class TestCursorValidation:
    def test_forced_strategy_rejected(self, db):
        """Cursors always page with IncrementalFagin; a forced strategy
        must raise rather than be silently discarded."""
        with pytest.raises(PlanningError, match="strategy"):
            Engine.over(db).query(MINIMUM).strategy("naive").cursor()

    def test_shared_session_is_single_consumer_once_cursor_opens(self, db):
        """A live-session backing is leased to its cursor: interleaving
        a one-shot query would restart the shared sorted streams and
        silently corrupt the cursor's pages."""
        from repro.exceptions import EngineConfigurationError

        engine = Engine.over(db.session())
        first = engine.query(MINIMUM).top(5)  # one-shots fine pre-cursor
        cursor = engine.query(MINIMUM).cursor()
        page1 = cursor.next_k(5)
        assert {i.obj for i in page1.items} == {i.obj for i in first.items}
        with pytest.raises(EngineConfigurationError, match="single-consumer"):
            engine.query(MINIMUM).top(5)
        with pytest.raises(EngineConfigurationError, match="single-consumer"):
            engine.run_many([MINIMUM], k=3)
        # The cursor itself keeps paging correctly.
        one_shot = Engine.over(db).query(MINIMUM).top(10)
        paged = list(page1.items) + list(cursor.next_k(5).items)
        assert {i.obj for i in paged} == {i.obj for i in one_shot.items}

    def test_non_monotone_rejected(self, db):
        bad = FunctionAggregation(
            lambda *g: 1.0 - min(g), "anti", monotone=False
        )
        with pytest.raises(PlanningError, match="monotone"):
            Engine.over(db).query(bad).cursor()

    def test_exhausting_the_database_raises(self):
        tiny = independent_database(2, 5, seed=1)
        cursor = Engine.over(tiny).query(MINIMUM).cursor()
        cursor.next_k(4)
        with pytest.raises(InsufficientObjectsError):
            cursor.next_k(2)

    def test_catalog_backed_cursor(self, albums):
        from repro.subsystems.qbic import QbicSubsystem

        engine = Engine().register(
            QbicSubsystem(
                "qbic",
                {"Color": {a.album_id: a.cover_rgb for a in albums}},
            )
        )
        one_shot = engine.query('Color ~ "red"').top(6)
        cursor = engine.query('Color ~ "red"').cursor()
        paged = list(cursor.next_k(3).items) + list(cursor.next_k(3).items)
        assert {i.obj for i in paged} == {i.obj for i in one_shot.items}


class TestNonPositiveK:
    """Regression: k <= 0 must fail loudly at the API boundary."""

    @pytest.mark.parametrize("k", [0, -1, -10])
    def test_next_k_rejects_nonpositive(self, db, k):
        cursor = Engine.over(db).query(MINIMUM).cursor()
        with pytest.raises(ValueError, match="k must be at least 1"):
            cursor.next_k(k)
        assert cursor.pages_fetched == 0  # nothing was consumed

    @pytest.mark.parametrize("k", [0, -5])
    def test_engine_top_rejects_nonpositive(self, db, k):
        with pytest.raises(ValueError, match="k must be at least 1"):
            Engine.over(db).query(MINIMUM).top(k)

    def test_catalog_top_rejects_nonpositive(self, albums):
        from repro.subsystems.qbic import QbicSubsystem

        engine = Engine().register(
            QbicSubsystem(
                "qbic",
                {"Color": {a.album_id: a.cover_rgb for a in albums}},
            )
        )
        with pytest.raises(ValueError, match="k must be at least 1"):
            engine.query('Color ~ "red"').top(0)

    def test_cursor_rejects_nonpositive_default_page(self, db):
        session = db.session()
        with pytest.raises(ValueError, match="default page size"):
            ResultCursor(session, MINIMUM, default_k=0)

    def test_remaining_counts_down(self, db):
        cursor = Engine.over(db).query(MINIMUM).cursor()
        before = cursor.remaining
        cursor.next_k(4)
        assert cursor.remaining == before - 4
