"""Parallel ``run_many``: per-query sessions, one summed ledger.

The serving contract: ``run_many(..., parallel=N)`` returns answers and
batch-wide S/R **bit-identical** to the serial path — parallelism
changes wall-clock, never the Section 5 accounting. These tests pin
that parity on both backings, the forked-cursor atom reuse that
replaced the restart-based reuse (unsound once two plans interleave),
and the spec-normalisation regressions that rode along.
"""

import pytest

from repro.core.means import ARITHMETIC_MEAN
from repro.core.tconorms import MAXIMUM
from repro.core.tnorms import MINIMUM
from repro.engine import Engine
from repro.engine.batch import stats_of
from repro.exceptions import EngineConfigurationError
from repro.subsystems.qbic import QbicSubsystem
from repro.subsystems.relational import RelationalSubsystem
from repro.workloads.skeletons import independent_database

AGGS = [MINIMUM, ARITHMETIC_MEAN, MAXIMUM, MINIMUM, ARITHMETIC_MEAN]


def _catalog_engine():
    objs = [f"o{i}" for i in range(60)]
    engine = Engine()
    engine.register(
        RelationalSubsystem(
            "rel",
            {
                o: {"Artist": "Beatles" if i < 7 else f"a{i % 9}"}
                for i, o in enumerate(objs)
            },
        )
    )
    engine.register(
        QbicSubsystem(
            "img",
            {
                "Color": {o: (i / 60, 0.3, 0.2) for i, o in enumerate(objs)},
                "Texture": {o: (0.1, i / 60, 0.4) for i, o in enumerate(objs)},
            },
        )
    )
    return engine


#: Batch members sharing atoms across each other — the regime that
#: exercised the unsound restart()-based reuse.
SHARED_ATOM_QUERIES = [
    '(Color ~ "red") AND (Artist = "Beatles")',
    'Color ~ "red"',
    '(Color ~ "red") OR (Texture ~ "o5")',
    '(Texture ~ "o5") AND (Artist = "Beatles")',
    'Color ~ "red"',
]


class TestSourceBackedParallel:
    @pytest.fixture(scope="class")
    def db(self):
        return independent_database(3, 400, seed=11)

    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_answers_and_ledger_match_serial(self, db, workers):
        serial = Engine.over(db).run_many(AGGS, k=7)
        parallel = Engine.over(db).run_many(AGGS, k=7, parallel=workers)
        assert [a.items for a in serial] == [a.items for a in parallel]
        assert [stats_of(a) for a in serial] == [
            stats_of(a) for a in parallel
        ]
        assert parallel.total_sorted == serial.total_sorted
        assert parallel.total_random == serial.total_random

    def test_parallel_details(self, db):
        batch = Engine.over(db).run_many(AGGS, k=5, parallel=4)
        assert batch.details["parallel"] == 4
        assert batch.details["shared_session"] is False
        assert batch.details["queries"] == len(AGGS)

    def test_totals_are_per_member_sums(self, db):
        batch = Engine.over(db).run_many(AGGS, k=5, parallel=8)
        assert batch.total_sorted == sum(
            stats_of(a).sorted_cost for a in batch
        )
        assert batch.total_random == sum(
            stats_of(a).random_cost for a in batch
        )

    def test_live_session_backing_refuses_parallel(self, db):
        session = db.session()
        with pytest.raises(EngineConfigurationError, match="single-"):
            Engine.over(session).run_many(AGGS, k=5, parallel=2)

    def test_rejects_non_aggregation_specs_upfront(self, db):
        with pytest.raises(EngineConfigurationError):
            Engine.over(db).run_many(
                [MINIMUM, "not an aggregation"], k=5, parallel=2
            )

    @pytest.mark.parametrize("bad", [0, -1, True, 2.5])
    def test_rejects_bad_parallel_values(self, db, bad):
        with pytest.raises(EngineConfigurationError, match="parallel"):
            Engine.over(db).run_many([MINIMUM], k=5, parallel=bad)


class TestCatalogBackedParallel:
    @pytest.mark.parametrize("workers", [1, 4, 8])
    def test_shared_atom_parity_with_serial(self, workers):
        """The forked-cursor path: answers *and* per-query access
        counts must match the serial lane exactly on batches whose
        members share atoms."""
        serial = _catalog_engine().run_many(SHARED_ATOM_QUERIES, k=4)
        parallel = _catalog_engine().run_many(
            SHARED_ATOM_QUERIES, k=4, parallel=workers
        )
        assert [a.items for a in serial] == [a.items for a in parallel]
        assert [stats_of(a) for a in serial] == [
            stats_of(a) for a in parallel
        ]
        assert parallel.total_sorted == serial.total_sorted
        assert parallel.total_random == serial.total_random

    def test_shared_atoms_still_evaluated_once(self):
        batch = _catalog_engine().run_many(
            SHARED_ATOM_QUERIES, k=4, parallel=8
        )
        # Distinct atoms: Color~red, Artist=Beatles, Texture~o5.
        assert batch.details["atom_evaluations"] == 3
        # Color~red ×4, Texture~o5 ×2, Artist=Beatles ×2 -> five
        # further requests served off forks of the cached evaluations.
        assert batch.details["atom_reuses"] == 5
        assert batch.details["parallel"] == 8

    def test_forks_leave_cached_template_pristine(self):
        """Two plans interleaving over a shared atom must not see each
        other's cursor progress (the bug the fork path fixes)."""
        engine = _catalog_engine()
        batch = engine.run_many(
            ['Color ~ "red"', 'Color ~ "red"'], k=3, parallel=2
        )
        a, b = batch.answers
        assert a.items == b.items
        assert a.result.stats == b.result.stats
        # And each equals a standalone run of the same query.
        solo = engine.query('Color ~ "red"').top(3)
        assert a.items == solo.items
        assert a.result.stats == solo.result.stats

    def test_answers_match_individual_queries(self):
        engine = _catalog_engine()
        batch = engine.run_many(SHARED_ATOM_QUERIES, k=4, parallel=4)
        for text, batched in zip(SHARED_ATOM_QUERIES, batch):
            solo = engine.query(text).top(4)
            assert batched.items == solo.items


class TestSpecNormalisation:
    """Regression: ``(spec, True)`` passed isinstance(entry[1], int)."""

    def test_bool_is_not_a_k_override_source_backed(self):
        db = independent_database(2, 50, seed=0)
        with pytest.raises(EngineConfigurationError):
            Engine.over(db).run_many([(MINIMUM, True)], k=5)

    def test_bool_is_not_a_k_override_catalog_backed(self):
        with pytest.raises(EngineConfigurationError):
            _catalog_engine().run_many([('Color ~ "red"', False)], k=5)

    def test_int_override_still_works(self):
        db = independent_database(2, 50, seed=0)
        batch = Engine.over(db).run_many([(MINIMUM, 2), MAXIMUM], k=7)
        assert batch[0].k == 2
        assert batch[1].k == 7

    def test_rejects_nonpositive_k_override(self):
        db = independent_database(2, 50, seed=0)
        with pytest.raises(ValueError, match="k must be at least 1"):
            Engine.over(db).run_many([(MINIMUM, 0)], k=5)

    def test_rejects_nonpositive_batch_k(self):
        db = independent_database(2, 50, seed=0)
        with pytest.raises(ValueError, match="k must be at least 1"):
            Engine.over(db).run_many([MINIMUM], k=-2)


class TestUnforkableSources:
    """Sources without fork(): serial batches keep restart-based reuse
    (sound when plans run sequentially); parallel batches fall back to
    a fresh evaluation per use (never a shared mutating cursor)."""

    class _UnforkableSubsystem(RelationalSubsystem):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            self.evaluations = 0

        def evaluate(self, query):
            from repro.access.source import SortedRandomSource

            self.evaluations += 1
            inner = super().evaluate(query)

            class NoFork(SortedRandomSource):
                name = inner.name

                def __len__(self):
                    return len(inner)

                @property
                def position(self):
                    return inner.position

                def next_sorted(self):
                    return inner.next_sorted()

                def random_access(self, obj):
                    return inner.random_access(obj)

                def restart(self):
                    inner.restart()

            return NoFork()

    def _engine(self):
        objs = [f"o{i}" for i in range(20)]
        sub = self._UnforkableSubsystem(
            "rel",
            {o: {"Genre": "jazz" if i % 2 else "rock"}
             for i, o in enumerate(objs)},
        )
        return Engine().register(sub), sub

    def test_serial_batch_still_reuses_via_restart(self):
        engine, sub = self._engine()
        queries = ['Genre = "jazz"'] * 4
        batch = engine.run_many(queries, k=3)
        assert sub.evaluations == 1  # evaluated once, restarted thrice
        assert batch.details["atom_evaluations"] == 1
        assert batch.details["atom_reuses"] == 3
        first = batch.answers[0]
        for answer in batch.answers[1:]:
            assert answer.items == first.items
            assert answer.result.stats == first.result.stats

    def test_parallel_batch_re_evaluates_instead_of_sharing(self):
        engine, sub = self._engine()
        queries = ['Genre = "jazz"'] * 4
        batch = engine.run_many(queries, k=3, parallel=4)
        # No shared mutating cursor: each member got its own evaluation.
        assert sub.evaluations == 4
        assert batch.details["atom_evaluations"] == 4
        assert batch.details["atom_reuses"] == 0
        serial = self._engine()[0].run_many(queries, k=3)
        assert [a.items for a in batch] == [a.items for a in serial]
        assert batch.total_sorted == serial.total_sorted
        assert batch.total_random == serial.total_random


class TestKTypeValidation:
    """k=True / k=2.5 must fail at the boundary, not run as k=1 or
    crash deep in the paging machinery."""

    @pytest.mark.parametrize("bad", [True, False, 2.5, "3"])
    def test_run_many_rejects_non_int_k(self, bad):
        db = independent_database(2, 50, seed=0)
        with pytest.raises(ValueError, match="must be an integer"):
            Engine.over(db).run_many([MINIMUM], k=bad)

    @pytest.mark.parametrize("bad", [True, 2.5])
    def test_top_rejects_non_int_k(self, bad):
        db = independent_database(2, 50, seed=0)
        with pytest.raises(ValueError, match="must be an integer"):
            Engine.over(db).query(MINIMUM).top(bad)

    def test_index_like_ints_still_accepted(self):
        import numpy as np

        db = independent_database(2, 50, seed=0)
        result = Engine.over(db).query(MINIMUM).top(np.int64(3))
        assert len(result.items) == 3
