"""Batch execution: shared session / cost-tracker accounting."""

import pytest

from repro.algorithms.base import is_valid_top_k
from repro.core.means import ARITHMETIC_MEAN
from repro.core.tconorms import MAXIMUM
from repro.core.tnorms import MINIMUM
from repro.engine import Engine
from repro.engine.batch import stats_of
from repro.exceptions import EngineConfigurationError
from repro.subsystems.qbic import QbicSubsystem
from repro.subsystems.relational import RelationalSubsystem
from repro.workloads.skeletons import independent_database


class TestSourceBackedBatch:
    def test_totals_equal_sum_of_per_query_costs(self, db2):
        batch = Engine.over(db2).run_many(
            [MINIMUM, ARITHMETIC_MEAN, MAXIMUM], k=5
        )
        assert len(batch) == 3
        assert batch.total_sorted == sum(
            stats_of(a).sorted_cost for a in batch
        )
        assert batch.total_random == sum(
            stats_of(a).random_cost for a in batch
        )
        assert batch.details["shared_session"] is True

    def test_shared_tracker_matches_session_ledger(self):
        """The batch totals are literally one session's tracker."""
        db = independent_database(2, 200, seed=3)
        session = db.session()
        batch = Engine.over(session).run_many([MINIMUM, MAXIMUM], k=5)
        ledger = session.tracker.snapshot()
        assert batch.total_sorted == ledger.sorted_cost
        assert batch.total_random == ledger.random_cost

    def test_answers_are_correct(self, db2):
        batch = Engine.over(db2).run_many([MINIMUM, ARITHMETIC_MEAN], k=5)
        for agg, answer in zip((MINIMUM, ARITHMETIC_MEAN), batch):
            assert is_valid_top_k(
                answer.items, db2.overall_grades(agg), 5
            ), agg.name

    def test_per_entry_k_override(self, db2):
        batch = Engine.over(db2).run_many([(MINIMUM, 2), MAXIMUM], k=7)
        assert batch[0].k == 2
        assert batch[1].k == 7

    def test_middleware_cost_weighting(self, db2):
        from repro.access.cost import CostModel

        batch = Engine.over(db2).run_many([MINIMUM], k=5)
        model = CostModel(sorted_weight=1.0, random_weight=10.0)
        assert batch.middleware_cost(model) == pytest.approx(
            batch.total_sorted + 10.0 * batch.total_random
        )
        assert batch.middleware_cost() == batch.total_accesses

    def test_rejects_string_specs(self, db2):
        with pytest.raises(EngineConfigurationError):
            Engine.over(db2).run_many(["not an aggregation"], k=5)


class TestCatalogBackedBatch:
    @pytest.fixture
    def engine(self, albums):
        engine = Engine()
        engine.register(
            RelationalSubsystem(
                "store-db",
                {
                    a.album_id: {"Artist": a.artist, "Genre": a.genre}
                    for a in albums
                },
            )
        )
        engine.register(
            QbicSubsystem(
                "qbic",
                {
                    "Color": {a.album_id: a.cover_rgb for a in albums},
                    "Texture": {a.album_id: a.cover_texture for a in albums},
                },
            )
        )
        return engine

    def test_shared_atoms_evaluated_once(self, engine):
        batch = engine.run_many(
            [
                '(Color ~ "red") AND (Texture ~ "cd-0000")',
                '(Color ~ "red") AND (Genre = "jazz")',
                'Color ~ "red"',
            ],
            k=3,
        )
        # 'Color ~ "red"' appears three times but is evaluated once;
        # the distinct atoms are Color~red, Texture~cd-0000, Genre=jazz.
        assert batch.details["atom_evaluations"] == 3
        assert batch.details["atom_reuses"] == 2

    def test_batch_answers_match_individual_queries(self, engine):
        queries = ['Color ~ "red"', '(Color ~ "blue") OR (Texture ~ "cd-0001")']
        batch = engine.run_many(queries, k=4)
        for text, batched in zip(queries, batch):
            solo = engine.query(text).top(4)
            assert batched.items == solo.items

    def test_totals_equal_sum_of_per_query_costs(self, engine):
        batch = engine.run_many(
            ['Color ~ "red"', 'Texture ~ "cd-0000"'], k=3
        )
        assert batch.total_accesses == sum(
            stats_of(a).sum_cost for a in batch
        )
