"""The async facade: awaitable top-k, batches, and cursor paging.

No pytest-asyncio dependency: each test drives its coroutine with
``asyncio.run`` — the facade is the thing under test, not the runner.
"""

import asyncio

import pytest

from repro.core.means import ARITHMETIC_MEAN
from repro.core.tnorms import MINIMUM
from repro.engine import AsyncEngine, Engine
from repro.exceptions import EngineConfigurationError
from repro.subsystems.qbic import QbicSubsystem
from repro.subsystems.relational import RelationalSubsystem
from repro.workloads.skeletons import independent_database

N = 120


@pytest.fixture(scope="module")
def db():
    return independent_database(3, N, seed=5)


def _catalog_engine():
    objs = [f"o{i}" for i in range(30)]
    engine = Engine()
    engine.register(
        RelationalSubsystem(
            "rel",
            {
                o: {"Artist": "Beatles" if i < 4 else f"a{i % 5}"}
                for i, o in enumerate(objs)
            },
        )
    )
    engine.register(
        QbicSubsystem(
            "img",
            {"Color": {o: (i / 30, 0.2, 0.1) for i, o in enumerate(objs)}},
        )
    )
    return engine


class TestTopK:
    def test_source_backed_matches_sync(self, db):
        sync = Engine.over(db).query(MINIMUM).top(8)

        async def run():
            async with AsyncEngine(Engine.over(db)) as serving:
                return await serving.top_k(MINIMUM, k=8)

        result = asyncio.run(run())
        assert result.items == sync.items
        assert result.stats == sync.stats

    def test_catalog_backed_matches_sync(self):
        engine = _catalog_engine()
        sync = engine.query('Color ~ "red"').top(5)

        async def run():
            async with AsyncEngine(engine) as serving:
                return await serving.top_k('Color ~ "red"', k=5)

        result = asyncio.run(run())
        assert result.items == sync.items

    def test_concurrent_awaits_are_independent(self, db):
        """Many queries in flight at once: each gets its own session,
        so answers and per-query stats match solo runs exactly."""
        aggs = [MINIMUM, ARITHMETIC_MEAN] * 4
        solos = [Engine.over(db).query(a).top(6) for a in aggs]

        async def run():
            async with AsyncEngine(Engine.over(db), max_workers=8) as serving:
                return await asyncio.gather(
                    *(serving.top_k(a, k=6) for a in aggs)
                )

        results = asyncio.run(run())
        for solo, got in zip(solos, results):
            assert got.items == solo.items
            assert got.stats == solo.stats

    def test_strategy_passthrough(self, db):
        async def run():
            async with AsyncEngine(Engine.over(db)) as serving:
                return await serving.top_k(MINIMUM, k=5, strategy="fagin")

        assert asyncio.run(run()).algorithm.startswith("A0")


class TestRunMany:
    def test_delegates_with_pool_parallelism(self, db):
        serial = Engine.over(db).run_many([MINIMUM, ARITHMETIC_MEAN], k=6)

        async def run():
            async with AsyncEngine(Engine.over(db), max_workers=4) as serving:
                return await serving.run_many([MINIMUM, ARITHMETIC_MEAN], k=6)

        batch = asyncio.run(run())
        assert batch.details["parallel"] == 4
        assert [a.items for a in batch] == [a.items for a in serial]
        assert batch.total_sorted == serial.total_sorted
        assert batch.total_random == serial.total_random


class TestCursor:
    def test_async_for_pages_the_whole_population(self, db):
        async def run():
            async with AsyncEngine(Engine.over(db)) as serving:
                pages = []
                async for page in serving.cursor(MINIMUM, page_size=50):
                    pages.append(page)
                return pages

        pages = asyncio.run(run())
        assert sum(len(p.items) for p in pages) == N
        assert [len(p.items) for p in pages] == [50, 50, 20]
        fetched = [item.obj for page in pages for item in page.items]
        assert len(set(fetched)) == N  # no duplicates across pages

    def test_pages_match_sync_cursor(self, db):
        sync_cursor = Engine.over(db).query(MINIMUM).cursor()
        sync_pages = [sync_cursor.next_k(25) for _ in range(3)]

        async def run():
            async with AsyncEngine(Engine.over(db)) as serving:
                cursor = serving.cursor(MINIMUM)
                return [await cursor.next_k(25) for _ in range(3)]

        async_pages = asyncio.run(run())
        for sync_page, async_page in zip(sync_pages, async_pages):
            assert async_page.items == sync_page.items
            assert async_page.stats == sync_page.stats

    def test_concurrent_page_fetches_serialise(self, db):
        """Two awaits racing on one cursor must not interleave the
        incremental state: together they page exactly 2×k answers."""

        async def run():
            async with AsyncEngine(Engine.over(db)) as serving:
                cursor = serving.cursor(MINIMUM)
                first, second = await asyncio.gather(
                    cursor.next_k(10), cursor.next_k(10)
                )
                return cursor, first, second

        cursor, first, second = asyncio.run(run())
        assert cursor.answers_fetched == 20
        fetched = {item.obj for page in (first, second) for item in page.items}
        assert len(fetched) == 20

    def test_rejects_nonpositive_page_sizes(self, db):
        async def run():
            async with AsyncEngine(Engine.over(db)) as serving:
                with pytest.raises(ValueError, match="k must be at least 1"):
                    await serving.cursor(MINIMUM).next_k(0)
                with pytest.raises(ValueError, match="page size"):
                    serving.cursor(MINIMUM, page_size=0)

        asyncio.run(run())


class TestLifecycle:
    def test_refuses_live_session_backing(self, db):
        session = db.session()
        with pytest.raises(EngineConfigurationError, match="single-"):
            AsyncEngine(Engine.over(session))

    def test_closed_facade_refuses_queries(self, db):
        async def run():
            serving = AsyncEngine(Engine.over(db))
            await serving.aclose()
            with pytest.raises(EngineConfigurationError, match="closed"):
                await serving.top_k(MINIMUM, k=3)

        asyncio.run(run())

    def test_sync_close_is_idempotent(self, db):
        serving = AsyncEngine(Engine.over(db))
        serving.close()
        serving.close()

    def test_rejects_nonpositive_workers(self, db):
        with pytest.raises(ValueError, match="max_workers"):
            AsyncEngine(Engine.over(db), max_workers=0)


class TestRunManySerialOptOut:
    """parallel=None through the facade reaches the engine's serial
    shared-session batch semantics (the sentinel default, not None,
    means "use the pool width")."""

    def test_explicit_none_gets_shared_session(self, db):
        async def run():
            async with AsyncEngine(Engine.over(db), max_workers=4) as serving:
                return await serving.run_many(
                    [MINIMUM, ARITHMETIC_MEAN], k=6, parallel=None
                )

        batch = asyncio.run(run())
        assert batch.details["shared_session"] is True
        assert "parallel" not in batch.details

    def test_explicit_worker_count_overrides_pool(self, db):
        async def run():
            async with AsyncEngine(Engine.over(db), max_workers=4) as serving:
                return await serving.run_many([MINIMUM], k=6, parallel=2)

        assert asyncio.run(run()).details["parallel"] == 2


class TestCursorPageSizeDefault:
    def test_next_k_without_k_uses_configured_page_size(self, db):
        async def run():
            async with AsyncEngine(Engine.over(db)) as serving:
                cursor = serving.cursor(MINIMUM, page_size=5)
                return await cursor.next_k()

        assert len(asyncio.run(run()).items) == 5


class TestErrorPaths:
    """Serving-layer hardening: the facade's failure modes are clean,
    deterministic, and leave the shared store untouched."""

    def test_invalid_k_surfaces_as_value_error(self, db):
        async def run():
            async with AsyncEngine(Engine.over(db)) as serving:
                with pytest.raises(ValueError):
                    await serving.top_k(MINIMUM, k=-3)
                # The facade is still usable after a client error.
                return await serving.top_k(MINIMUM, k=3)

        assert len(asyncio.run(run()).items) == 3

    def test_cursor_rejects_invalid_page_requests(self, db):
        async def run():
            async with AsyncEngine(Engine.over(db)) as serving:
                with pytest.raises(ValueError, match="page size"):
                    serving.cursor(MINIMUM, page_size=0)
                cursor = serving.cursor(MINIMUM, page_size=5)
                with pytest.raises(ValueError, match="k must be"):
                    await cursor.next_k(0)

        asyncio.run(run())

    def test_closed_facade_refuses_everything(self, db):
        async def run():
            serving = AsyncEngine(Engine.over(db))
            cursor = serving.cursor(MINIMUM, page_size=5)
            await serving.aclose()
            with pytest.raises(EngineConfigurationError, match="closed"):
                await serving.top_k(MINIMUM, k=3)
            with pytest.raises(EngineConfigurationError, match="closed"):
                await serving.metrics_snapshot()
            with pytest.raises(EngineConfigurationError, match="closed"):
                await cursor.next_k(5)

        asyncio.run(run())

    def test_cancelled_top_k_leaves_engine_healthy(self, db):
        """Cancelling an in-flight await abandons delivery only; the
        per-query session means no shared state is left inconsistent."""
        solo = Engine.over(db).query(MINIMUM).top(6)

        def slow_factory():
            import time as _time

            _time.sleep(0.2)
            return db.session()

        async def run():
            async with AsyncEngine(Engine.over(slow_factory)) as serving:
                task = asyncio.ensure_future(serving.top_k(MINIMUM, k=6))
                await asyncio.sleep(0.02)
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task
                return await serving.top_k(MINIMUM, k=6)

        after = asyncio.run(run())
        assert after.items == solo.items
        assert after.stats == solo.stats

    def test_deadline_cancelled_cursor_page_keeps_store_consistent(self, db):
        """A timed-out page fetch (the serving layer's 504 path) must
        not corrupt the shared store: later queries and a fresh cursor
        still produce bit-identical answers."""
        solo = Engine.over(db).query(MINIMUM).top(6)

        def slow_factory():
            import time as _time

            _time.sleep(0.2)
            return db.session()

        async def run():
            async with AsyncEngine(Engine.over(slow_factory)) as serving:
                cursor = serving.cursor(MINIMUM, page_size=6)
                with pytest.raises(asyncio.TimeoutError):
                    await asyncio.wait_for(cursor.next_k(6), 0.02)
                fresh = serving.cursor(MINIMUM, page_size=6)
                page = await fresh.next_k(6)
                result = await serving.top_k(MINIMUM, k=6)
                return page, result

        page, result = asyncio.run(run())
        assert page.items == solo.items
        assert result.items == solo.items
        assert result.stats == solo.stats


class TestRemainingPassthrough:
    def test_none_before_first_page_then_counts_down(self, db):
        async def run():
            async with AsyncEngine(Engine.over(db)) as serving:
                cursor = serving.cursor(MINIMUM, page_size=10)
                before = cursor.remaining
                await cursor.next_k(10)
                return before, cursor.remaining

        before, after = asyncio.run(run())
        assert before is None
        assert after == N - 10


class TestMetricsSnapshotPassthrough:
    def test_matches_sync_ledger(self, db):
        async def run():
            async with AsyncEngine(Engine.over(db)) as serving:
                await serving.top_k(MINIMUM, k=5)
                return serving.engine, await serving.metrics_snapshot()

        engine, snapshot = asyncio.run(run())
        assert snapshot == engine.metrics_snapshot()
        assert snapshot["queries"] == 1
        assert snapshot["access"]["total"] > 0
