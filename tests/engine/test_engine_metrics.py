"""Engine.metrics_snapshot(): the cumulative serving ledger.

The snapshot is the process-wide counterpart of a single result's
AccessStats — every completed query, batch member, and cursor page
adds its accesses; catalog engines additionally report per-subsystem
RankingCache counters.
"""

import pytest

from repro.core.means import ARITHMETIC_MEAN
from repro.core.tnorms import MINIMUM
from repro.engine import Engine
from repro.subsystems.qbic import QbicSubsystem
from repro.subsystems.relational import RelationalSubsystem
from repro.workloads.skeletons import independent_database

N = 150


@pytest.fixture()
def db():
    return independent_database(3, N, seed=7)


def catalog_engine() -> Engine:
    objs = [f"o{i}" for i in range(40)]
    return (
        Engine()
        .register(
            RelationalSubsystem(
                "rel",
                {o: {"Artist": f"a{i % 4}"} for i, o in enumerate(objs)},
            )
        )
        .register(
            QbicSubsystem(
                "img",
                {
                    "Color": {
                        o: (i / 40, 0.3, 0.2) for i, o in enumerate(objs)
                    }
                },
            )
        )
    )


class TestSourceBacked:
    def test_fresh_engine_all_zero(self, db):
        snap = Engine.over(db).metrics_snapshot()
        assert snap["backing"] == "source"
        assert snap["queries"] == 0
        assert snap["cursor_pages"] == 0
        assert snap["access"] == {"sorted": 0, "random": 0, "total": 0}
        assert snap["ranking_caches"] == {}
        assert snap["cache_totals"] == {"hits": 0, "misses": 0}

    def test_query_adds_its_stats_exactly(self, db):
        engine = Engine.over(db)
        result = engine.query(MINIMUM).top(5)
        snap = engine.metrics_snapshot()
        assert snap["queries"] == 1
        assert snap["access"]["sorted"] == result.stats.sorted_cost
        assert snap["access"]["random"] == result.stats.random_cost
        assert snap["access"]["total"] == result.stats.sum_cost

    def test_queries_accumulate(self, db):
        engine = Engine.over(db)
        first = engine.query(MINIMUM).top(5)
        second = engine.query(ARITHMETIC_MEAN).top(5)
        snap = engine.metrics_snapshot()
        assert snap["queries"] == 2
        assert (
            snap["access"]["sorted"]
            == first.stats.sorted_cost + second.stats.sorted_cost
        )

    def test_cursor_pages_counted_separately(self, db):
        engine = Engine.over(db)
        cursor = engine.query(MINIMUM).cursor()
        pages = [cursor.next_k(10) for _ in range(3)]
        snap = engine.metrics_snapshot()
        assert snap["queries"] == 0
        assert snap["cursor_pages"] == 3
        assert snap["access"]["sorted"] == sum(
            page.stats.sorted_cost for page in pages
        )

    def test_run_many_counts_each_member(self, db):
        engine = Engine.over(db)
        batch = engine.run_many([MINIMUM, ARITHMETIC_MEAN, MINIMUM], k=4)
        snap = engine.metrics_snapshot()
        assert snap["queries"] == 3
        assert snap["access"]["sorted"] == batch.total_sorted
        assert snap["access"]["random"] == batch.total_random

    def test_parallel_run_many_matches_serial_ledger(self, db):
        serial_engine = Engine.over(db)
        serial_engine.run_many([MINIMUM, ARITHMETIC_MEAN] * 3, k=4)
        parallel_engine = Engine.over(db)
        parallel_engine.run_many(
            [MINIMUM, ARITHMETIC_MEAN] * 3, k=4, parallel=4
        )
        serial = serial_engine.metrics_snapshot()
        parallel = parallel_engine.metrics_snapshot()
        assert serial["access"] == parallel["access"]
        assert serial["queries"] == parallel["queries"] == 6

    def test_snapshot_is_json_safe(self, db):
        import json

        engine = Engine.over(db)
        engine.query(MINIMUM).top(3)
        json.dumps(engine.metrics_snapshot())


class TestPlannerBlock:
    def test_planner_block_reports_adaptive_state(self, db):
        engine = Engine.over(db)
        engine.query(MINIMUM).top(5)
        planner = Engine.over(db).metrics_snapshot()["planner"]
        assert planner["enabled"] is True
        assert set(planner) == {
            "enabled", "plan_cache", "chooser", "calibration",
        }
        planner = engine.metrics_snapshot()["planner"]
        assert planner["chooser"]["decisions"] == 1
        assert planner["calibration"]["__all__"]["observations"] == 1

    def test_plan_cache_counters_flow_through(self):
        engine = catalog_engine()
        engine.query('Color ~ "red"').top(5)
        engine.query('Color ~ "blue"').top(5)
        cache = engine.metrics_snapshot()["planner"]["plan_cache"]
        assert cache["misses"] == 1
        assert cache["hits"] == 1
        assert cache["entries"] == 1

    def test_disabled_context_reports_enabled_false(self, db):
        from repro.engine.context import ExecutionContext

        engine = Engine.over(db, ExecutionContext(adaptive=False))
        engine.query(MINIMUM).top(5)
        assert engine.metrics_snapshot()["planner"] == {"enabled": False}

    def test_planner_block_is_json_safe(self, db):
        import json

        engine = Engine.over(db)
        for _ in range(6):
            engine.query(MINIMUM).top(5)
        json.dumps(engine.metrics_snapshot()["planner"])


class TestCatalogBacked:
    def test_reports_per_subsystem_caches(self):
        engine = catalog_engine()
        engine.query('Color ~ "red"').top(5)
        snap = engine.metrics_snapshot()
        assert snap["backing"] == "catalog"
        assert set(snap["ranking_caches"]) == {"rel", "img"}
        img = snap["ranking_caches"]["img"]
        assert img["misses"] >= 1
        assert img["entries"] >= 1
        assert snap["cache_totals"]["misses"] >= 1

    def test_repeat_query_shows_cache_hits(self):
        engine = catalog_engine()
        engine.query('Color ~ "red"').top(5)
        engine.query('Color ~ "red"').top(5)
        snap = engine.metrics_snapshot()
        assert snap["cache_totals"]["hits"] >= 1
        assert snap["queries"] == 2

    def test_snapshot_does_not_mint_caches(self):
        """Reporting must peek, never create: a fresh catalog engine's
        snapshot reports zeros without instantiating RankingCaches."""
        engine = catalog_engine()
        snap = engine.metrics_snapshot()
        for counters in snap["ranking_caches"].values():
            assert counters["hits"] == 0
            assert counters["misses"] == 0
            assert counters["entries"] == 0
        for subsystem in engine.catalog.subsystems:
            assert "_ranking_cache" not in subsystem.__dict__
