"""Tests for the Engine facade and fluent QueryBuilder."""

import pytest

from repro.algorithms.base import is_valid_top_k
from repro.algorithms.ullman import UllmanAlgorithm
from repro.core.tnorms import MINIMUM
from repro.engine import Engine, ExecutionContext
from repro.exceptions import EngineConfigurationError, PlanningError
from repro.middleware.executor import QueryAnswer
from repro.middleware.plan import AlgorithmPlan, FilteredConjunctPlan
from repro.subsystems.qbic import QbicSubsystem
from repro.subsystems.relational import RelationalSubsystem
from repro.workloads.skeletons import independent_database


@pytest.fixture
def fed_engine(albums):
    from repro.middleware.planner import PlannerOptions

    engine = Engine(
        ExecutionContext(planner=PlannerOptions(selectivity_threshold=0.25))
    )
    engine.register(
        RelationalSubsystem(
            "store-db",
            {
                a.album_id: {"Artist": a.artist, "Genre": a.genre}
                for a in albums
            },
        )
    )
    engine.register(
        QbicSubsystem(
            "qbic",
            {"AlbumColor": {a.album_id: a.cover_rgb for a in albums}},
        )
    )
    return engine


class TestSourceBacked:
    def test_auto_selection_answers_correctly(self, db2):
        engine = Engine.over(db2)
        result = engine.query(MINIMUM).top(7)
        assert result.algorithm == "A0-prime"
        assert is_valid_top_k(result.items, db2.overall_grades(MINIMUM), 7)

    def test_forced_strategy_by_name(self, db2):
        result = Engine.over(db2).query(MINIMUM).strategy("fagin").top(5)
        assert result.algorithm == "A0"
        assert is_valid_top_k(result.items, db2.overall_grades(MINIMUM), 5)

    def test_forced_strategy_by_instance(self, db2):
        result = (
            Engine.over(db2)
            .query(MINIMUM)
            .strategy(UllmanAlgorithm(sorted_list=1))
            .top(3)
        )
        assert result.algorithm == "ullman"
        assert is_valid_top_k(result.items, db2.overall_grades(MINIMUM), 3)

    def test_using_chains_like_query_argument(self, db2):
        via_query = Engine.over(db2).query(MINIMUM).top(4)
        via_using = Engine.over(db2).query().using(MINIMUM).top(4)
        assert via_query.items == via_using.items

    def test_default_k_comes_from_context(self, db2):
        engine = Engine.over(db2, ExecutionContext(default_k=3))
        assert Engine.over(db2).query(MINIMUM).top().k == 10
        assert engine.query(MINIMUM).top().k == 3

    def test_no_random_access_restricts_selection(self, db2):
        result = Engine.over(db2, random_access=False).query(MINIMUM).top(5)
        assert result.algorithm == "NRA"
        assert result.stats.random_cost == 0

    def test_missing_aggregation_raises(self, db2):
        with pytest.raises(EngineConfigurationError, match="aggregation"):
            Engine.over(db2).query().top(5)

    def test_string_query_rejected(self, db2):
        with pytest.raises(EngineConfigurationError):
            Engine.over(db2).query("Color ~ 'red'").top(5)

    def test_register_rejected(self, db2):
        with pytest.raises(EngineConfigurationError):
            Engine.over(db2).register(object())

    def test_session_factory_backing(self):
        db = independent_database(2, 100, seed=5)
        engine = Engine.over(db.session)
        result = engine.query(MINIMUM).top(5)
        assert is_valid_top_k(result.items, db.overall_grades(MINIMUM), 5)

    def test_bad_backing_rejected(self):
        with pytest.raises(EngineConfigurationError):
            Engine.over(42)


class TestCatalogBacked:
    def test_string_query_returns_query_answer(self, fed_engine):
        answer = fed_engine.query('AlbumColor ~ "red"').top(5)
        assert isinstance(answer, QueryAnswer)
        assert answer.result.k == 5
        assert isinstance(answer.plan, AlgorithmPlan)

    def test_filtered_conjunct_plan_still_chosen(self, fed_engine):
        answer = fed_engine.query(
            '(Artist = "Beatles") AND (AlbumColor ~ "red")'
        ).top(3)
        assert isinstance(answer.plan, FilteredConjunctPlan)

    def test_strategy_override_on_algorithm_plan(self, fed_engine):
        answer = fed_engine.query('AlbumColor ~ "red"').strategy("nra").top(5)
        assert answer.result.algorithm == "NRA"
        assert "forced" in answer.plan.reason

    def test_strategy_override_rejected_on_filtered_plan(self, fed_engine):
        with pytest.raises(PlanningError, match="pluggable"):
            fed_engine.query(
                '(Artist = "Beatles") AND (AlbumColor ~ "red")'
            ).strategy("fagin").top(3)

    def test_using_rejected_for_catalog_queries(self, fed_engine):
        with pytest.raises(EngineConfigurationError, match="using"):
            fed_engine.query('AlbumColor ~ "red"').using(MINIMUM).top(3)

    def test_explain_mentions_strategy(self, fed_engine):
        text = fed_engine.query('AlbumColor ~ "red"').explain()
        assert "AlgorithmPlan" in text

    def test_plan_without_execution(self, fed_engine):
        plan = fed_engine.query('AlbumColor ~ "red"').plan()
        assert isinstance(plan, AlgorithmPlan)

    def test_engine_matches_garlic_shim(self, fed_engine):
        """The shim and the engine produce identical answers."""
        text = '(Artist = "Beatles") AND (AlbumColor ~ "red")'
        direct = fed_engine.query(text).top(4)
        from repro.middleware.garlic import Garlic

        garlic = Garlic()
        garlic._engine = fed_engine  # same catalog, same context
        with pytest.deprecated_call():
            shimmed = garlic.query(text, k=4)
        assert shimmed.items == direct.items
