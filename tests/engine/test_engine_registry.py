"""Tests for the strategy registry: capabilities, lookup, selection."""

import pytest

from repro.access.cost import CostModel
from repro.algorithms.disjunction import DisjunctionB0
from repro.algorithms.fa import FaginA0
from repro.algorithms.fa_min import FaginA0Min
from repro.algorithms.median import MedianTopK
from repro.algorithms.naive import NaiveAlgorithm
from repro.algorithms.nra import NoRandomAccessAlgorithm
from repro.algorithms.threshold import ThresholdAlgorithm
from repro.core.aggregation import FunctionAggregation
from repro.core.means import ARITHMETIC_MEAN, MEDIAN
from repro.core.tconorms import MAXIMUM
from repro.core.tnorms import MINIMUM
from repro.engine import registry as reg
from repro.engine.registry import (
    StrategyCapabilities,
    UnknownStrategyError,
    available_strategies,
    capable_strategies,
    create_strategy,
    get_registration,
    register_strategy,
    select_strategy,
)

NON_MONOTONE = FunctionAggregation(
    lambda *g: 1.0 - min(g), "anti", monotone=False
)


class TestRegistration:
    def test_all_algorithms_registered(self):
        names = set(available_strategies())
        assert {
            "fagin", "fagin-min", "b0", "median", "nra", "naive",
            "threshold", "ullman", "early-stop", "shrunken",
        } <= names

    def test_aliases_resolve(self):
        assert get_registration("A0").name == "fagin"
        assert get_registration("A0-prime").name == "fagin-min"
        assert get_registration("NRA").name == "nra"
        assert get_registration("TA").name == "threshold"

    def test_create_strategy_returns_fresh_instances(self):
        first, second = create_strategy("fagin"), create_strategy("fagin")
        assert isinstance(first, FaginA0)
        assert first is not second

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownStrategyError):
            get_registration("does-not-exist")

    def test_unknown_strategy_error_str_is_readable(self):
        """KeyError.__str__ would repr-quote the message; ours doesn't."""
        err = UnknownStrategyError("x", ("fagin",))
        assert str(err) == "no strategy named 'x' is registered (known: fagin)"

    def test_capability_metadata_is_honest(self):
        assert get_registration("nra").capabilities.needs_random_access is False
        assert get_registration("naive").capabilities.monotone_only is False
        assert get_registration("median").capabilities.min_lists == 3
        assert get_registration("fagin").capabilities.needs_random_access


class TestBatchAwareness:
    def test_batch_aware_strategies_lists_the_rewritten_hot_loops(self):
        names = reg.batch_aware_strategies()
        for expected in ("fagin", "fagin-min", "naive", "nra", "threshold"):
            assert expected in names

    def test_flag_defaults_false(self):
        from repro.engine.registry import StrategyCapabilities

        assert StrategyCapabilities().batch_aware is False

    def test_batch_unaware_strategies_not_listed(self):
        # The median construction and B0 still use unit accesses only.
        names = reg.batch_aware_strategies()
        assert "median" not in names


class TestCapabilityFiltering:
    def test_no_random_access_excludes_ra_strategies(self):
        names = capable_strategies(MINIMUM, 2, random_access=False)
        assert set(names) == {"naive", "nra"}

    def test_non_monotone_excludes_monotone_only(self):
        names = capable_strategies(NON_MONOTONE, 2)
        assert names == ("naive",)

    def test_min_lists_excludes_median_below_three(self):
        assert "median" not in capable_strategies(MEDIAN, 2)
        assert "median" in capable_strategies(MEDIAN, 3)

    def test_aggregation_guard_restricts_b0_and_a0_prime(self):
        with_min = capable_strategies(MINIMUM, 2)
        with_max = capable_strategies(MAXIMUM, 2)
        assert "fagin-min" in with_min and "b0" not in with_min
        assert "b0" in with_max and "fagin-min" not in with_max

    def test_strict_only_capability(self):
        """A strict-only registration is filtered by the strict flag."""
        name = "test-strict-only-strategy"
        register_strategy(
            name,
            FaginA0,
            StrategyCapabilities(monotone_only=True, strict_only=True),
        )
        try:
            # min is strict (t = 1 iff every argument is 1); max is
            # monotone but not strict (max(1, 0) = 1).
            assert name in capable_strategies(MINIMUM, 2)
            assert name not in capable_strategies(MAXIMUM, 2)
        finally:
            reg._REGISTRY.pop(name, None)


class TestSelection:
    """select_strategy reproduces the paper's decision table."""

    def test_table(self):
        assert isinstance(select_strategy(MAXIMUM, 2).algorithm, DisjunctionB0)
        assert isinstance(select_strategy(MEDIAN, 3).algorithm, MedianTopK)
        assert isinstance(select_strategy(MEDIAN, 2).algorithm, FaginA0)
        assert isinstance(select_strategy(MINIMUM, 2).algorithm, FaginA0Min)
        assert isinstance(
            select_strategy(ARITHMETIC_MEAN, 2).algorithm, FaginA0
        )
        assert isinstance(
            select_strategy(NON_MONOTONE, 2).algorithm, NaiveAlgorithm
        )

    def test_no_random_access_routes(self):
        assert isinstance(
            select_strategy(MINIMUM, 2, random_access=False).algorithm,
            NoRandomAccessAlgorithm,
        )
        assert isinstance(
            select_strategy(MAXIMUM, 2, random_access=False).algorithm,
            DisjunctionB0,
        )
        assert isinstance(
            select_strategy(NON_MONOTONE, 2, random_access=False).algorithm,
            NaiveAlgorithm,
        )

    def test_expensive_random_access_prefers_nra(self):
        pricey = CostModel(sorted_weight=1.0, random_weight=25.0)
        assert select_strategy(MINIMUM, 2, cost_model=pricey).name == "NRA"
        cheap = CostModel(sorted_weight=1.0, random_weight=2.0)
        assert select_strategy(MINIMUM, 2, cost_model=cheap).name == "A0-prime"

    def test_reasons_cite_the_paper(self):
        assert "Theorem" in select_strategy(MINIMUM, 2).reason
        assert "Remark 6.1" in select_strategy(MAXIMUM, 2).reason

    def test_require_forces_within_capability(self):
        choice = select_strategy(MINIMUM, 2, require="threshold")
        assert isinstance(choice.algorithm, ThresholdAlgorithm)
        assert "forced" in choice.reason

    def test_require_rejects_incapable_pairing(self):
        with pytest.raises(ValueError, match="cannot evaluate"):
            select_strategy(MINIMUM, 2, require="fagin", random_access=False)
        with pytest.raises(ValueError, match="cannot evaluate"):
            select_strategy(NON_MONOTONE, 2, require="fagin")

    def test_rejects_zero_lists(self):
        with pytest.raises(ValueError):
            select_strategy(MINIMUM, 0)
