"""Engine-level ε-approximate contracts: steering, certification,
access savings, ε=0 bit-parity, and the metrics/explain surfaces."""

from __future__ import annotations

import pytest

from repro.core.means import ARITHMETIC_MEAN
from repro.core.tnorms import MINIMUM
from repro.engine import Engine
from repro.engine.context import ExecutionContext
from repro.workloads.skeletons import independent_database

N, M, K = 400, 3, 10

EPSILONS = [0.0, 0.01, 0.05, 0.1, 0.2, 0.5]


@pytest.fixture()
def db():
    return independent_database(M, N, seed=31)


def answers_of(result):
    return [(item.obj, item.grade) for item in result.items]


def ledger_of(result):
    return (
        tuple(result.stats.sorted_by_list),
        tuple(result.stats.random_by_list),
    )


class TestEpsilonZeroParity:
    def test_epsilon_zero_is_bit_identical(self, db):
        """epsilon(0) must not perturb answers, ledger, or routing."""
        plain = Engine.over(db).query(MINIMUM).top(K)
        zero = Engine.over(db).query(MINIMUM).epsilon(0.0).top(K)
        assert answers_of(zero) == answers_of(plain)
        assert ledger_of(zero) == ledger_of(plain)
        assert zero.algorithm == plain.algorithm

    def test_context_epsilon_zero_is_default(self, db):
        plain = Engine.over(db).query(MINIMUM).top(K)
        ctx = Engine.over(db, ExecutionContext(epsilon=0.0))
        assert answers_of(ctx.query(MINIMUM).top(K)) == answers_of(plain)

    def test_exact_guarantee_recorded(self, db):
        result = Engine.over(db).query(MINIMUM).top(K)
        assert result.guarantee is not None
        assert result.guarantee.kind == "exact"


class TestEpsilonSteering:
    def test_epsilon_steers_to_ta(self, db):
        """ε > 0 must route to TA: A0's match-count stop cannot
        convert the slack into early termination."""
        result = Engine.over(db).query(MINIMUM).epsilon(0.2).top(K)
        assert result.algorithm == "TA"

    def test_forced_strategy_wins_over_steering(self, db):
        result = (
            Engine.over(db)
            .query(MINIMUM)
            .strategy("fagin")
            .epsilon(0.2)
            .top(K)
        )
        # Forced A0 runs to exact completion and says so.
        assert result.algorithm == "A0"
        assert result.guarantee.kind == "exact"

    def test_context_epsilon_applies_engine_wide(self, db):
        engine = Engine.over(db, ExecutionContext(epsilon=0.2))
        result = engine.query(MINIMUM).top(K)
        assert result.algorithm == "TA"

    def test_builder_epsilon_overrides_context(self, db):
        engine = Engine.over(db, ExecutionContext(epsilon=0.5))
        result = engine.query(MINIMUM).epsilon(0.0).top(K)
        assert result.guarantee.kind == "exact"

    def test_invalid_epsilon_rejected(self, db):
        with pytest.raises(ValueError):
            Engine.over(db).query(MINIMUM).epsilon(-0.1)
        with pytest.raises(ValueError):
            ExecutionContext(epsilon=float("nan"))


class TestCertifiedApproximation:
    @pytest.mark.parametrize("aggregation", [MINIMUM, ARITHMETIC_MEAN])
    def test_certificate_against_true_answers(self, db, aggregation):
        """Every ε run's k-th grade is within (1+ε) of the true k-th:
        the θ-approximation statement checked against a full oracle."""
        truth = db.true_top_k(aggregation, K)
        true_kth = truth[-1].grade
        for epsilon in EPSILONS:
            result = (
                Engine.over(db).query(aggregation).epsilon(epsilon).top(K)
            )
            got_kth = result.items[-1].grade
            assert (1.0 + epsilon) * got_kth >= true_kth - 1e-12
            if epsilon == 0.0:
                assert answers_of(result) == [
                    (item.obj, item.grade) for item in truth
                ]

    def test_access_counts_monotone_in_epsilon(self, db):
        """More slack can only stop earlier (forced TA keeps the
        routing fixed so only the stopping rule varies)."""
        totals = []
        for epsilon in EPSILONS:
            result = (
                Engine.over(db)
                .query(MINIMUM)
                .strategy("threshold")
                .epsilon(epsilon)
                .top(K)
            )
            totals.append(result.stats.sum_cost)
        assert totals == sorted(totals, reverse=True)
        assert totals[-1] < totals[0]  # ε=0.5 genuinely saves accesses

    def test_approximate_guarantee_recorded(self, db):
        result = (
            Engine.over(db)
            .query(MINIMUM)
            .strategy("threshold")
            .epsilon(0.2)
            .top(K)
        )
        assert result.guarantee.kind == "approximate"
        assert result.guarantee.epsilon == 0.2
        assert result.guarantee.threshold is not None
        # The certificate the guarantee states: (1+ε)·g_k ≥ τ.
        assert 1.2 * result.items[-1].grade >= result.guarantee.threshold


class TestBatchAndMetrics:
    def test_run_many_respects_context_epsilon(self, db):
        engine = Engine.over(db, ExecutionContext(epsilon=0.3))
        batch = engine.run_many([MINIMUM, ARITHMETIC_MEAN], k=K)
        for answer in batch:
            assert answer.guarantee.kind in ("approximate", "exact")
        # At least the TA-steered members certify the relaxation.
        assert any(a.guarantee.kind == "approximate" for a in batch)

    def test_quality_counters_in_metrics(self, db):
        engine = Engine.over(db)
        engine.query(MINIMUM).top(K)
        engine.query(MINIMUM).epsilon(0.3).top(K)
        quality = engine.metrics_snapshot()["quality"]
        assert quality["exact"] == 1
        assert quality["approximate"] == 1

    def test_explain_names_the_guarantee(self, db):
        text = Engine.over(db).query(MINIMUM).epsilon(0.25).explain()
        assert "guarantee" in text
        assert "0.25" in text
        exact_text = Engine.over(db).query(MINIMUM).explain()
        assert "exact" in exact_text
