"""Unit tests for the Section 8 mode-comparison machinery."""


from repro.access.cost import AccessStats
from repro.access.types import GradedItem
from repro.algorithms.base import TopKResult
from repro.core.query import atom
from repro.middleware.conjunction_modes import ModeComparison
from repro.middleware.executor import QueryAnswer
from repro.middleware.plan import FullScanPlan


def _answer(objects, grades, sorted_cost):
    result = TopKResult(
        items=tuple(GradedItem(o, g) for o, g in zip(objects, grades)),
        stats=AccessStats((sorted_cost,), (0,)),
        algorithm="stub",
    )
    query = atom("A")
    plan = FullScanPlan(query=query, reason="stub", atoms=(query,))
    return QueryAnswer(query=query, plan=plan, result=result)


class TestModeComparison:
    def test_same_objects_ignores_order(self):
        cmp = ModeComparison(
            external=_answer(["a", "b"], [0.9, 0.8], 10),
            internal=_answer(["b", "a"], [0.95, 0.85], 2),
        )
        assert cmp.same_objects

    def test_different_objects_detected(self):
        cmp = ModeComparison(
            external=_answer(["a", "b"], [0.9, 0.8], 10),
            internal=_answer(["a", "c"], [0.9, 0.7], 2),
        )
        assert not cmp.same_objects
        assert "DIFFER" in cmp.summary()

    def test_costs(self):
        cmp = ModeComparison(
            external=_answer(["a"], [0.9], 50),
            internal=_answer(["a"], [0.9], 3),
        )
        assert cmp.external_cost == 50
        assert cmp.internal_cost == 3

    def test_summary_structure(self):
        cmp = ModeComparison(
            external=_answer(["a"], [0.9], 50),
            internal=_answer(["a"], [0.9], 3),
        )
        summary = cmp.summary()
        assert "external" in summary and "internal" in summary
        assert "50 accesses" in summary and "3 accesses" in summary
