"""Tests for middleware query cursors (paged answers)."""

import pytest

from repro.exceptions import PlanningError
from repro.middleware.garlic import Garlic
from repro.subsystems.qbic import QbicSubsystem
from repro.subsystems.relational import RelationalSubsystem


@pytest.fixture
def garlic():
    import random

    rng = random.Random(11)
    objs = [f"o{i}" for i in range(100)]
    g = Garlic()
    g.register(
        QbicSubsystem(
            "qbic",
            {
                "Color": {o: (rng.random(), rng.random(), rng.random())
                          for o in objs},
                "Shape": {o: (rng.random(),) for o in objs},
            },
            named_targets={"Shape": {"round": (1.0,)}},
        )
    )
    g.register(
        RelationalSubsystem(
            "rel", {o: {"Tag": "x" if i < 5 else "y"}
                    for i, o in enumerate(objs)}
        )
    )
    return g


QUERY = '(Color ~ "red") AND (Shape ~ "round")'


class TestPaging:
    def test_pages_match_one_shot_query(self, garlic):
        cursor = garlic.open_cursor(QUERY)
        page1 = cursor.next_page(5)
        page2 = cursor.next_page(5)
        combined_grades = list(page1.grades()) + list(page2.grades())

        one_shot = garlic.query(QUERY, k=10)
        assert combined_grades == pytest.approx(
            list(one_shot.result.grades())
        )

    def test_pages_disjoint(self, garlic):
        cursor = garlic.open_cursor(QUERY)
        p1 = set(cursor.next_page(7).objects())
        p2 = set(cursor.next_page(7).objects())
        assert not p1 & p2

    def test_counters(self, garlic):
        cursor = garlic.open_cursor(QUERY)
        assert cursor.pages_fetched == 0
        cursor.next_page(4)
        cursor.next_page(4)
        assert cursor.pages_fetched == 2
        assert cursor.answers_fetched == 8

    def test_second_page_cheaper_than_fresh_query(self, garlic):
        cursor = garlic.open_cursor(QUERY)
        cursor.next_page(10)
        second = cursor.next_page(10)
        fresh = garlic.query(QUERY, k=20)
        assert second.stats.sum_cost < fresh.result.stats.sum_cost

    def test_repr(self, garlic):
        cursor = garlic.open_cursor(QUERY)
        cursor.next_page(3)
        assert "pages=1" in repr(cursor)


class TestCursorEligibility:
    def test_disjunction_not_cursorable(self, garlic):
        # Plans to B0 (an AlgorithmPlan) but with the max aggregation —
        # still monotone, so actually fine? B0 uses max which is
        # monotone; the cursor machinery is A0's and works for any
        # monotone aggregation, max included.
        cursor = garlic.open_cursor('(Color ~ "red") OR (Shape ~ "round")')
        page = cursor.next_page(3)
        assert page.k == 3

    def test_filtered_plan_not_cursorable(self, garlic):
        from repro.middleware.planner import PlannerOptions

        strict = Garlic(options=PlannerOptions(selectivity_threshold=0.5))
        for sub in garlic.catalog.subsystems:
            strict.register(sub)
        with pytest.raises(PlanningError, match="cursor"):
            strict.open_cursor('(Tag = "x") AND (Color ~ "red")')

    def test_full_scan_not_cursorable(self, garlic):
        with pytest.raises(PlanningError):
            garlic.open_cursor('NOT (Tag = "x") AND (Color ~ "red")')
