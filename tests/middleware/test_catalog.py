"""Tests for the attribute catalog."""

import pytest

from repro.core.query import AtomicQuery
from repro.exceptions import CatalogError
from repro.middleware.catalog import Catalog
from repro.subsystems.relational import RelationalSubsystem
from repro.subsystems.synthetic import SyntheticSubsystem


def _relational(name="rel", objs=("o1", "o2", "o3")):
    return RelationalSubsystem(
        name,
        {o: {"Artist": "Beatles" if o == "o1" else "Other", "Year": 1967}
         for o in objs},
    )


def _synthetic(name="syn", objs=("o1", "o2", "o3")):
    return SyntheticSubsystem(
        name, tables={"Color": {o: 0.5 for o in objs}}
    )


class TestRegistration:
    def test_register_and_lookup(self):
        cat = Catalog()
        rel = _relational()
        cat.register(rel)
        assert cat.subsystem_for(AtomicQuery("Artist", "Beatles", "=")) is rel
        assert cat.attributes == {"Artist", "Year"}

    def test_attribute_clash_rejected(self):
        cat = Catalog()
        cat.register(_relational("a"))
        with pytest.raises(CatalogError, match="already served"):
            cat.register(_relational("b"))

    def test_population_mismatch_rejected(self):
        cat = Catalog()
        cat.register(_relational())
        with pytest.raises(CatalogError, match="population"):
            cat.register(_synthetic(objs=("o1", "o2")))

    def test_same_population_accepted(self):
        cat = Catalog()
        cat.register(_relational())
        cat.register(_synthetic())
        assert cat.num_objects == 3
        assert len(cat.subsystems) == 2

    def test_unknown_attribute(self):
        cat = Catalog()
        cat.register(_relational())
        with pytest.raises(CatalogError, match="no subsystem serves"):
            cat.subsystem_for(AtomicQuery("Nope", "x"))

    def test_objects_before_registration(self):
        with pytest.raises(CatalogError):
            Catalog().objects


class TestMetadata:
    def test_selectivity_from_relational(self):
        cat = Catalog()
        cat.register(_relational())
        sel = cat.selectivity(AtomicQuery("Artist", "Beatles", "="))
        assert sel == pytest.approx(1 / 3)

    def test_selectivity_unavailable(self):
        cat = Catalog()
        cat.register(_synthetic())
        assert cat.selectivity(AtomicQuery("Color", "red", "~")) is None

    def test_is_crisp(self):
        cat = Catalog()
        cat.register(_relational())
        cat.register(_synthetic())
        assert cat.is_crisp(AtomicQuery("Artist", "Beatles", "="))
        assert not cat.is_crisp(AtomicQuery("Color", "red", "~"))
        # Crisp op on a graded subsystem is not "crisp" for planning.
        assert not cat.is_crisp(AtomicQuery("Color", "red", "="))

    def test_same_subsystem(self):
        cat = Catalog()
        cat.register(_relational())
        cat.register(_synthetic())
        same = cat.same_subsystem(
            [AtomicQuery("Artist", "x", "="), AtomicQuery("Year", 1967, "=")]
        )
        assert same is not None and same.name == "rel"
        mixed = cat.same_subsystem(
            [AtomicQuery("Artist", "x", "="), AtomicQuery("Color", "red", "~")]
        )
        assert mixed is None
