"""Garlic under non-standard fuzzy semantics.

Section 3 surveys many conjunction/disjunction rules; the middleware
must stay correct (and appropriately conservative) when configured
with any of them: no A0'/B0 shortcuts (those are min/max-specific), no
equivalence rewrites (Theorem 3.1), but still sublinear A0 evaluation
— the bounds are robust across monotone strict aggregations.
"""

import random

import pytest

from repro.algorithms.base import is_valid_top_k
from repro.core.graded_set import GradedSet
from repro.core.semantics import FuzzySemantics
from repro.core.tconorms import ALGEBRAIC_SUM, BOUNDED_SUM
from repro.core.tnorms import ALGEBRAIC_PRODUCT, BOUNDED_DIFFERENCE
from repro.middleware.garlic import Garlic
from repro.middleware.parser import parse_query
from repro.subsystems.qbic import QbicSubsystem

PRODUCT_SEMANTICS = FuzzySemantics(
    tnorm=ALGEBRAIC_PRODUCT, conorm=ALGEBRAIC_SUM
)
LUKASIEWICZ_SEMANTICS = FuzzySemantics(
    tnorm=BOUNDED_DIFFERENCE, conorm=BOUNDED_SUM
)


def _garlic(semantics):
    rng = random.Random(31)
    objs = [f"o{i}" for i in range(80)]
    g = Garlic(semantics=semantics)
    g.register(
        QbicSubsystem(
            "qbic",
            {
                "Color": {o: (rng.random(), rng.random(), rng.random())
                          for o in objs},
                "Shape": {o: (rng.random(),) for o in objs},
            },
            named_targets={"Shape": {"round": (1.0,)}},
        )
    )
    return g


def _oracle(garlic, text):
    query = parse_query(text)
    atom_sets = {}
    for a in query.atoms():
        src = garlic.catalog.subsystem_for(a).evaluate(a)
        atom_sets[a] = GradedSet(
            {obj: src.random_access(obj) for obj in garlic.catalog.objects}
        )
    return garlic.semantics.evaluate_sets(
        query, atom_sets, garlic.catalog.objects
    )


CONJUNCTION = '(Color ~ "red") AND (Shape ~ "round")'
DISJUNCTION = '(Color ~ "red") OR (Shape ~ "round")'


@pytest.mark.parametrize(
    "semantics",
    [PRODUCT_SEMANTICS, LUKASIEWICZ_SEMANTICS],
    ids=["product", "lukasiewicz"],
)
class TestNonStandardSemantics:
    def test_conjunction_answers_match_oracle(self, semantics):
        garlic = _garlic(semantics)
        answer = garlic.query(CONJUNCTION, k=5)
        assert is_valid_top_k(answer.items, _oracle(garlic, CONJUNCTION), 5)

    def test_disjunction_answers_match_oracle(self, semantics):
        garlic = _garlic(semantics)
        answer = garlic.query(DISJUNCTION, k=5)
        assert is_valid_top_k(answer.items, _oracle(garlic, DISJUNCTION), 5)

    def test_no_min_max_shortcuts(self, semantics):
        """A0'/B0 are min/max-specific; other semantics get generic A0."""
        garlic = _garlic(semantics)
        assert garlic.plan(CONJUNCTION).algorithm.name == "A0"
        assert garlic.plan(DISJUNCTION).algorithm.name == "A0"

    def test_no_idempotence_rewrites(self, semantics):
        """Theorem 3.1: rewriting A AND A -> A changes answers here."""
        garlic = _garlic(semantics)
        doubled = parse_query('(Color ~ "red") AND (Color ~ "red")')
        plan = garlic.plan(doubled)
        # The tree is preserved: both conjuncts still present.
        assert len(plan.query.children()) == 2

    def test_still_sublinear(self, semantics):
        garlic = _garlic(semantics)
        answer = garlic.query(CONJUNCTION, k=5)
        n = garlic.catalog.num_objects
        assert answer.result.stats.sum_cost < 2 * n

    def test_answers_differ_from_standard_semantics(self, semantics):
        """The semantics genuinely changes grades (not just plumbing)."""
        garlic = _garlic(semantics)
        standard = _garlic(FuzzySemantics())
        alt = garlic.query(CONJUNCTION, k=1).items[0]
        std = standard.query(CONJUNCTION, k=1).items[0]
        assert alt.grade != pytest.approx(std.grade)


class TestWeightedUnderNonStandardSemantics:
    def test_weighted_query_uses_configured_tnorm(self):
        garlic = _garlic(PRODUCT_SEMANTICS)
        text = 'WEIGHTED(2: Color ~ "red", 1: Shape ~ "round")'
        answer = garlic.query(text, k=5)
        assert is_valid_top_k(answer.items, _oracle(garlic, text), 5)
