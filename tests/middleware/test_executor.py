"""Tests for plan execution against live subsystems."""

import pytest

from repro.core.semantics import STANDARD_FUZZY
from repro.middleware.catalog import Catalog
from repro.middleware.executor import Executor
from repro.middleware.parser import parse_query
from repro.middleware.planner import Planner, PlannerOptions
from repro.subsystems.qbic import QbicSubsystem
from repro.subsystems.relational import RelationalSubsystem


@pytest.fixture
def setup():
    objs = [f"o{i}" for i in range(30)]
    cat = Catalog()
    cat.register(
        RelationalSubsystem(
            "rel",
            {
                o: {"Artist": "Beatles" if i < 2 else f"a{i % 5}"}
                for i, o in enumerate(objs)
            },
        )
    )
    cat.register(
        QbicSubsystem(
            "qbic",
            {
                "Color": {
                    o: (1.0 - i / 30, 0.1, 0.1) for i, o in enumerate(objs)
                },
                "Shape": {o: (i / 30,) for i, o in enumerate(objs)},
            },
            named_targets={"Shape": {"round": (1.0,)}},
        )
    )
    planner = Planner(cat, options=PlannerOptions())
    executor = Executor(cat, STANDARD_FUZZY)
    return cat, planner, executor


def _truth(cat, query_text):
    """Oracle: evaluate the query over all objects via the semantics."""
    query = parse_query(query_text)
    atom_sets = {}
    for a in query.atoms():
        source = cat.subsystem_for(a).evaluate(a)
        atom_sets[a] = {
            obj: source.random_access(obj) for obj in cat.objects
        }
    from repro.core.graded_set import GradedSet

    sets = {a: GradedSet(t) for a, t in atom_sets.items()}
    return STANDARD_FUZZY.evaluate_sets(query, sets, cat.objects)


class TestAlgorithmPlanExecution:
    def test_min_conjunction(self, setup):
        cat, planner, executor = setup
        text = '(Color ~ "red") AND (Shape ~ "round")'
        answer = executor.execute(planner.plan(parse_query(text)), 5)
        truth = _truth(cat, text)
        from repro.algorithms.base import is_valid_top_k

        assert is_valid_top_k(answer.items, truth, 5)

    def test_disjunction(self, setup):
        cat, planner, executor = setup
        text = '(Color ~ "red") OR (Shape ~ "round")'
        answer = executor.execute(planner.plan(parse_query(text)), 5)
        truth = _truth(cat, text)
        from repro.algorithms.base import is_valid_top_k

        assert is_valid_top_k(answer.items, truth, 5)
        assert answer.result.stats.sorted_cost == 10  # B0: m*k

    def test_cost_accounting_present(self, setup):
        __, planner, executor = setup
        answer = executor.execute(
            planner.plan(parse_query('(Color ~ "red") AND (Shape ~ "round")')),
            5,
        )
        assert answer.result.stats.sum_cost > 0
        assert "cost" in answer.explain()

    def test_k_validation(self, setup):
        __, planner, executor = setup
        with pytest.raises(ValueError):
            executor.execute(planner.plan(parse_query('Color ~ "red"')), 0)


class TestFilteredPlanExecution:
    def test_matches_oracle(self, setup):
        cat, planner, executor = setup
        text = '(Artist = "Beatles") AND (Color ~ "red")'
        plan = planner.plan(parse_query(text))
        from repro.middleware.plan import FilteredConjunctPlan

        assert isinstance(plan, FilteredConjunctPlan)
        answer = executor.execute(plan, 2)
        truth = _truth(cat, text)
        from repro.algorithms.base import is_valid_top_k

        assert is_valid_top_k(answer.items, truth, 2)

    def test_cost_proportional_to_match_set(self, setup):
        __, planner, executor = setup
        plan = planner.plan(
            parse_query('(Artist = "Beatles") AND (Color ~ "red")')
        )
        answer = executor.execute(plan, 2)
        stats = answer.result.stats
        match_size = answer.result.details["filter_set_size"]
        assert match_size == 2
        # |S|+1 sorted on the crisp stream, |S| random on the graded one.
        assert stats.sorted_cost == match_size + 1
        assert stats.random_cost == match_size

    def test_padding_with_zero_grades(self, setup):
        """k larger than the match set pads with certified-zero answers."""
        cat, planner, executor = setup
        plan = planner.plan(
            parse_query('(Artist = "Beatles") AND (Color ~ "red")')
        )
        answer = executor.execute(plan, 5)
        grades = answer.result.grades()
        assert len(grades) == 5
        assert grades[2:] == (0.0, 0.0, 0.0)
        truth = _truth(cat, '(Artist = "Beatles") AND (Color ~ "red")')
        from repro.algorithms.base import is_valid_top_k

        assert is_valid_top_k(answer.items, truth, 5)


class TestInternalPlanExecution:
    def test_internal_conjunction_cost_is_k(self, setup):
        cat, __, executor = setup
        planner = Planner(
            cat, options=PlannerOptions(allow_internal_conjunction=True)
        )
        plan = planner.plan(
            parse_query('(Color ~ "red") AND (Shape ~ "round")')
        )
        from repro.middleware.plan import InternalConjunctionPlan

        assert isinstance(plan, InternalConjunctionPlan)
        answer = executor.execute(plan, 4)
        assert answer.result.stats.sum_cost == 4
        assert answer.result.k == 4

    def test_internal_uses_subsystem_semantics(self, setup):
        """Averaged (QBIC) grades differ from Garlic's min grades."""
        cat, planner, executor = setup
        text = '(Color ~ "red") AND (Shape ~ "round")'
        external = executor.execute(planner.plan(parse_query(text)), 3)
        internal_planner = Planner(
            cat, options=PlannerOptions(allow_internal_conjunction=True)
        )
        internal = executor.execute(
            internal_planner.plan(parse_query(text)), 3
        )
        # Averaging dominates min pointwise, strictly so almost surely.
        assert internal.items[0].grade > external.items[0].grade


class TestFullScanExecution:
    def test_negated_query(self, setup):
        cat, planner, executor = setup
        text = 'NOT (Artist = "Beatles") AND (Color ~ "red")'
        answer = executor.execute(planner.plan(parse_query(text)), 3)
        truth = _truth(cat, text)
        from repro.algorithms.base import is_valid_top_k

        assert is_valid_top_k(answer.items, truth, 3)

    def test_full_scan_cost_linear(self, setup):
        cat, planner, executor = setup
        answer = executor.execute(
            planner.plan(
                parse_query('NOT (Artist = "Beatles") AND (Color ~ "red")')
            ),
            3,
        )
        assert answer.result.stats.sorted_cost == 2 * cat.num_objects
