"""Tests for plan execution against live subsystems."""

import pytest

from repro.core.semantics import STANDARD_FUZZY
from repro.middleware.catalog import Catalog
from repro.middleware.executor import Executor
from repro.middleware.parser import parse_query
from repro.middleware.planner import Planner, PlannerOptions
from repro.subsystems.qbic import QbicSubsystem
from repro.subsystems.relational import RelationalSubsystem


@pytest.fixture
def setup():
    objs = [f"o{i}" for i in range(30)]
    cat = Catalog()
    cat.register(
        RelationalSubsystem(
            "rel",
            {
                o: {"Artist": "Beatles" if i < 2 else f"a{i % 5}"}
                for i, o in enumerate(objs)
            },
        )
    )
    cat.register(
        QbicSubsystem(
            "qbic",
            {
                "Color": {
                    o: (1.0 - i / 30, 0.1, 0.1) for i, o in enumerate(objs)
                },
                "Shape": {o: (i / 30,) for i, o in enumerate(objs)},
            },
            named_targets={"Shape": {"round": (1.0,)}},
        )
    )
    planner = Planner(cat, options=PlannerOptions())
    executor = Executor(cat, STANDARD_FUZZY)
    return cat, planner, executor


def _truth(cat, query_text):
    """Oracle: evaluate the query over all objects via the semantics."""
    query = parse_query(query_text)
    atom_sets = {}
    for a in query.atoms():
        source = cat.subsystem_for(a).evaluate(a)
        atom_sets[a] = {
            obj: source.random_access(obj) for obj in cat.objects
        }
    from repro.core.graded_set import GradedSet

    sets = {a: GradedSet(t) for a, t in atom_sets.items()}
    return STANDARD_FUZZY.evaluate_sets(query, sets, cat.objects)


class TestAlgorithmPlanExecution:
    def test_min_conjunction(self, setup):
        cat, planner, executor = setup
        text = '(Color ~ "red") AND (Shape ~ "round")'
        answer = executor.execute(planner.plan(parse_query(text)), 5)
        truth = _truth(cat, text)
        from repro.algorithms.base import is_valid_top_k

        assert is_valid_top_k(answer.items, truth, 5)

    def test_disjunction(self, setup):
        cat, planner, executor = setup
        text = '(Color ~ "red") OR (Shape ~ "round")'
        answer = executor.execute(planner.plan(parse_query(text)), 5)
        truth = _truth(cat, text)
        from repro.algorithms.base import is_valid_top_k

        assert is_valid_top_k(answer.items, truth, 5)
        assert answer.result.stats.sorted_cost == 10  # B0: m*k

    def test_cost_accounting_present(self, setup):
        __, planner, executor = setup
        answer = executor.execute(
            planner.plan(parse_query('(Color ~ "red") AND (Shape ~ "round")')),
            5,
        )
        assert answer.result.stats.sum_cost > 0
        assert "cost" in answer.explain()

    def test_k_validation(self, setup):
        __, planner, executor = setup
        with pytest.raises(ValueError):
            executor.execute(planner.plan(parse_query('Color ~ "red"')), 0)


class TestFilteredPlanExecution:
    def test_matches_oracle(self, setup):
        cat, planner, executor = setup
        text = '(Artist = "Beatles") AND (Color ~ "red")'
        plan = planner.plan(parse_query(text))
        from repro.middleware.plan import FilteredConjunctPlan

        assert isinstance(plan, FilteredConjunctPlan)
        answer = executor.execute(plan, 2)
        truth = _truth(cat, text)
        from repro.algorithms.base import is_valid_top_k

        assert is_valid_top_k(answer.items, truth, 2)

    def test_cost_proportional_to_match_set(self, setup):
        __, planner, executor = setup
        plan = planner.plan(
            parse_query('(Artist = "Beatles") AND (Color ~ "red")')
        )
        answer = executor.execute(plan, 2)
        stats = answer.result.stats
        match_size = answer.result.details["filter_set_size"]
        assert match_size == 2
        # |S|+1 sorted on the crisp stream, |S| random on the graded one.
        assert stats.sorted_cost == match_size + 1
        assert stats.random_cost == match_size

    def test_padding_with_zero_grades(self, setup):
        """k larger than the match set pads with certified-zero answers."""
        cat, planner, executor = setup
        plan = planner.plan(
            parse_query('(Artist = "Beatles") AND (Color ~ "red")')
        )
        answer = executor.execute(plan, 5)
        grades = answer.result.grades()
        assert len(grades) == 5
        assert grades[2:] == (0.0, 0.0, 0.0)
        truth = _truth(cat, '(Artist = "Beatles") AND (Color ~ "red")')
        from repro.algorithms.base import is_valid_top_k

        assert is_valid_top_k(answer.items, truth, 5)


class TestFilteredBatchedExecution:
    """The filtered-conjunct strategy on the negotiated bulk transport."""

    @pytest.fixture
    def int_catalog(self):
        """An integer-id population: crisp relation + graded synthetic."""
        from repro.subsystems.synthetic import SyntheticSubsystem

        objs = list(range(1, 13))
        cat = Catalog()
        cat.register(
            RelationalSubsystem(
                "rel",
                {
                    i: {"Artist": "Beatles" if i == 1 else f"a{i % 3}"}
                    for i in objs
                },
            )
        )
        cat.register(
            SyntheticSubsystem(
                "syn", tables={"Score": {i: i / 20 for i in objs}}
            )
        )
        return cat

    def _filtered_plan(self, cat):
        from repro.core.query import And, AtomicQuery
        from repro.middleware.plan import FilteredConjunctPlan

        query = And(
            (
                AtomicQuery("Artist", "Beatles", "="),
                AtomicQuery("Score", None, "~"),
            )
        )
        plan = Planner(cat).plan(query)
        assert isinstance(plan, FilteredConjunctPlan)
        return plan

    def test_planner_negotiates_filtered_batch_size(self, int_catalog):
        from repro.subsystems import DEFAULT_BATCH_SIZE

        plan = self._filtered_plan(int_catalog)
        assert plan.batch_size == DEFAULT_BATCH_SIZE
        assert "batched" in plan.explain()

    def test_padding_sorts_int_ids_numerically(self, int_catalog):
        """Regression: phase-3 padding used ``repr`` order, so integer
        populations padded 10 < 2; the numeric tie_break_key pads
        2, 3, 4, ... after the single survivor."""
        executor = Executor(int_catalog, STANDARD_FUZZY)
        answer = executor.execute(self._filtered_plan(int_catalog), 5)
        assert [item.obj for item in answer.items] == [1, 2, 3, 4, 5]
        assert [item.grade for item in answer.items[1:]] == [0.0] * 4

    def test_filtered_routes_through_evaluate_batched(self, int_catalog):
        """With a negotiated batch size every filtered-plan source is
        minted through ``evaluate_batched``; the unit lane
        (batch_size=None) sticks to ``evaluate``. Both lanes must
        return identical items and identical per-list access counts."""
        import dataclasses

        calls = {"batched": 0, "unit_mints": 0}
        for sub in int_catalog.subsystems:
            original = sub.evaluate_batched

            def spy(query, batch_size=None, _original=original):
                calls["batched"] += 1
                return _original(query, batch_size)

            sub.evaluate_batched = spy
        executor = Executor(int_catalog, STANDARD_FUZZY)
        plan = self._filtered_plan(int_catalog)

        batched = executor.execute(plan, 3)
        assert calls["batched"] == 2  # one mint per atom, both subsystems

        unit_plan = dataclasses.replace(plan, batch_size=None)
        unit = executor.execute(unit_plan, 3)
        assert calls["batched"] == 2  # the unit lane never touched it

        assert unit.items == batched.items
        assert unit.result.stats == batched.result.stats

    def test_inexact_selectivity_never_over_reads(self):
        """A subsystem whose statistics are estimates (no
        ``selectivity_is_exact`` declaration) must not have them
        trusted for block sizing: a wild over-estimate would charge a
        whole page of sorted accesses where the unit lane charges
        |S| + 1. The batched lane falls back to unit-sized probe
        pages, so counts stay identical."""
        import dataclasses

        from repro.subsystems.synthetic import SyntheticSubsystem

        class OverEstimating(RelationalSubsystem):
            selectivity_is_exact = False

            def estimate_selectivity(self, query):
                exact = super().estimate_selectivity(query)
                return None if exact is None else min(1.0, exact * 50)

        objs = list(range(1, 13))
        cat = Catalog()
        cat.register(
            OverEstimating(
                "rel",
                {
                    i: {"Artist": "Beatles" if i <= 2 else f"a{i % 3}"}
                    for i in objs
                },
            )
        )
        cat.register(
            SyntheticSubsystem(
                "syn", tables={"Score": {i: i / 20 for i in objs}}
            )
        )
        from repro.core.query import And, AtomicQuery
        from repro.middleware.plan import FilteredConjunctPlan

        query = And(
            (
                AtomicQuery("Artist", "Beatles", "="),
                AtomicQuery("Score", None, "~"),
            )
        )
        plan = Planner(
            cat, options=PlannerOptions(selectivity_threshold=1.0)
        ).plan(query)
        assert isinstance(plan, FilteredConjunctPlan)
        assert plan.batch_size is not None
        executor = Executor(cat, STANDARD_FUZZY)
        batched = executor.execute(plan, 3)
        unit = executor.execute(
            dataclasses.replace(plan, batch_size=None), 3
        )
        match_size = batched.result.details["filter_set_size"]
        assert match_size == 2
        assert batched.result.stats.sorted_cost == match_size + 1
        assert batched.result.stats == unit.result.stats
        assert batched.items == unit.items

    def test_custom_hook_lane_keeps_counts(self, int_catalog):
        """A caller-supplied evaluation hook may serve data the
        catalogue's statistics do not describe, so the batched block
        read must not size pages from them — it probes unit-sized and
        charges exactly what the hook-free unit lane charges."""
        import dataclasses

        def hook(atom, batch_size=None):
            return int_catalog.subsystem_for(atom).evaluate_batched(
                atom, batch_size
            )

        plan = self._filtered_plan(int_catalog)
        hooked = Executor(int_catalog, STANDARD_FUZZY, evaluate_atom=hook)
        plain = Executor(int_catalog, STANDARD_FUZZY)
        via_hook = hooked.execute(plan, 3)
        unit = plain.execute(dataclasses.replace(plan, batch_size=None), 3)
        assert via_hook.items == unit.items
        assert via_hook.result.stats == unit.result.stats

    def test_tiny_page_cap_preserves_counts(self, int_catalog):
        """A deployment cap far below the block size pages the crisp
        block in several exchanges without moving the Section 5 counts:
        |S| + 1 sorted on the filter stream, |S| random per graded
        conjunct."""
        plan = Planner(int_catalog, batch_size=2).plan(
            self._filtered_plan(int_catalog).query
        )
        assert plan.batch_size == 2
        executor = Executor(int_catalog, STANDARD_FUZZY)
        answer = executor.execute(plan, 1)
        match_size = answer.result.details["filter_set_size"]
        assert match_size == 1
        assert answer.result.stats.sorted_cost == match_size + 1
        assert answer.result.stats.random_cost == match_size


class TestInternalPlanExecution:
    def test_internal_conjunction_cost_is_k(self, setup):
        cat, __, executor = setup
        planner = Planner(
            cat, options=PlannerOptions(allow_internal_conjunction=True)
        )
        plan = planner.plan(
            parse_query('(Color ~ "red") AND (Shape ~ "round")')
        )
        from repro.middleware.plan import InternalConjunctionPlan

        assert isinstance(plan, InternalConjunctionPlan)
        answer = executor.execute(plan, 4)
        assert answer.result.stats.sum_cost == 4
        assert answer.result.k == 4

    def test_internal_uses_subsystem_semantics(self, setup):
        """Averaged (QBIC) grades differ from Garlic's min grades."""
        cat, planner, executor = setup
        text = '(Color ~ "red") AND (Shape ~ "round")'
        external = executor.execute(planner.plan(parse_query(text)), 3)
        internal_planner = Planner(
            cat, options=PlannerOptions(allow_internal_conjunction=True)
        )
        internal = executor.execute(
            internal_planner.plan(parse_query(text)), 3
        )
        # Averaging dominates min pointwise, strictly so almost surely.
        assert internal.items[0].grade > external.items[0].grade


class TestFullScanExecution:
    def test_negated_query(self, setup):
        cat, planner, executor = setup
        text = 'NOT (Artist = "Beatles") AND (Color ~ "red")'
        answer = executor.execute(planner.plan(parse_query(text)), 3)
        truth = _truth(cat, text)
        from repro.algorithms.base import is_valid_top_k

        assert is_valid_top_k(answer.items, truth, 3)

    def test_full_scan_cost_linear(self, setup):
        cat, planner, executor = setup
        answer = executor.execute(
            planner.plan(
                parse_query('NOT (Artist = "Beatles") AND (Color ~ "red")')
            ),
            3,
        )
        assert answer.result.stats.sorted_cost == 2 * cat.num_objects
