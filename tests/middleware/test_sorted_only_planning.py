"""Sorted-only federations: planning and failure modes.

Satellite coverage for the capability model of Section 4, footnote 5:
a subsystem that cannot answer "the grade of any given object" — no
random access — must steer the planner to the NRA-style sorted-only
strategies, while anything that *does* attempt a random access against
such a subsystem fails with a clean
:class:`~repro.exceptions.SubsystemCapabilityError` rather than a
silent miscount.
"""

import pytest

from repro.core.query import AtomicQuery, And
from repro.core.tnorms import MINIMUM
from repro.engine import Engine
from repro.exceptions import SubsystemCapabilityError
from repro.middleware.plan import AlgorithmPlan
from repro.subsystems import StreamOnlySubsystem, SyntheticSubsystem


def _tables(attrs, num_objects=30, seed=5):
    import random

    rng = random.Random(seed)
    return {
        attr: {obj: rng.random() for obj in range(1, num_objects + 1)}
        for attr in attrs
    }


@pytest.fixture
def sorted_only_engine():
    """Two subsystems, one of them stream-only (no random access)."""
    engine = Engine()
    engine.register(SyntheticSubsystem("full", tables=_tables(["a"])))
    engine.register(
        StreamOnlySubsystem(
            SyntheticSubsystem("streaming", tables=_tables(["b"], seed=9))
        )
    )
    return engine


QUERY = And([AtomicQuery("a", None, "~"), AtomicQuery("b", None, "~")])


class TestPlannerRouting:
    def test_monotone_query_routes_to_nra(self, sorted_only_engine):
        plan = sorted_only_engine.plan(QUERY)
        assert isinstance(plan, AlgorithmPlan)
        assert plan.algorithm.name == "NRA"
        assert "random access" in plan.reason

    def test_sorted_only_subsystem_still_negotiates_batches(
        self, sorted_only_engine
    ):
        # Random access and batching are orthogonal capabilities: the
        # stream-only wrapper forwards the inner subsystem's batch
        # support, so the NRA plan still rides the bulk path.
        plan = sorted_only_engine.plan(QUERY)
        assert plan.batch_size is not None

    def test_executed_answer_matches_full_capability_answer(
        self, sorted_only_engine
    ):
        """NRA over the degraded federation returns the same top-k as
        A0 over the same data with full capabilities."""
        full_engine = Engine()
        full_engine.register(SyntheticSubsystem("full", tables=_tables(["a"])))
        full_engine.register(
            SyntheticSubsystem("streaming", tables=_tables(["b"], seed=9))
        )
        degraded = sorted_only_engine.query(QUERY).top(5)
        reference = full_engine.query(QUERY).top(5)
        assert degraded.items == reference.items
        assert degraded.result.stats.random_cost == 0

    def test_all_streaming_federation_also_plans_sorted_only(self):
        engine = Engine()
        engine.register(
            StreamOnlySubsystem(
                SyntheticSubsystem("s1", tables=_tables(["a"]))
            )
        )
        plan = engine.plan(AtomicQuery("a", None, "~"))
        assert isinstance(plan, AlgorithmPlan)
        assert plan.algorithm.name in ("NRA", "B0", "naive")


class TestCleanFailures:
    def test_forcing_a_random_access_strategy_is_rejected_at_selection(
        self, sorted_only_engine
    ):
        with pytest.raises(ValueError, match="capable strategies"):
            sorted_only_engine.query(QUERY).strategy("fagin").top(5)

    def test_random_access_against_stream_only_source_raises(self):
        sub = StreamOnlySubsystem(
            SyntheticSubsystem("streaming", tables=_tables(["b"]))
        )
        source = sub.evaluate(AtomicQuery("b", None, "~"))
        with pytest.raises(SubsystemCapabilityError, match="random access"):
            source.random_access(1)

    def test_bulk_random_access_raises_the_same_error(self):
        sub = StreamOnlySubsystem(
            SyntheticSubsystem("streaming", tables=_tables(["b"]))
        )
        source = sub.evaluate_batched(AtomicQuery("b", None, "~"), 8)
        with pytest.raises(SubsystemCapabilityError, match="random access"):
            source.random_access_many([1, 2, 3])

    def test_running_a0_by_hand_over_stream_only_sources_raises(self):
        """Bypassing the planner does not bypass the capability check:
        the source itself refuses, loudly."""
        from repro.access import MiddlewareSession
        from repro.algorithms.fa import FaginA0

        sub = StreamOnlySubsystem(
            SyntheticSubsystem(
                "streaming", tables=_tables(["a", "b"], num_objects=20)
            )
        )
        session = MiddlewareSession.over_sources(
            [
                sub.evaluate(AtomicQuery("a", None, "~")),
                sub.evaluate(AtomicQuery("b", None, "~")),
            ]
        )
        with pytest.raises(SubsystemCapabilityError):
            FaginA0().top_k(session, MINIMUM, 5)

    def test_internal_conjunction_unsupported_raises_capability_error(self):
        sub = SyntheticSubsystem("syn", tables=_tables(["a", "b"]))
        with pytest.raises(SubsystemCapabilityError, match="internal"):
            sub.evaluate_conjunction(
                [AtomicQuery("a", None, "~"), AtomicQuery("b", None, "~")]
            )
