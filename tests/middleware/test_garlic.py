"""End-to-end tests for the Garlic facade on the CD-store example."""

import pytest

from repro.middleware.garlic import Garlic
from repro.middleware.planner import PlannerOptions
from repro.subsystems.qbic import QbicSubsystem
from repro.subsystems.relational import RelationalSubsystem
from repro.subsystems.text import TextSubsystem


@pytest.fixture
def garlic(albums):
    g = Garlic(options=PlannerOptions(selectivity_threshold=0.25))
    g.register(
        RelationalSubsystem(
            "store-db",
            {
                a.album_id: {
                    "Artist": a.artist,
                    "Year": a.year,
                    "Genre": a.genre,
                }
                for a in albums
            },
        )
    )
    g.register(
        QbicSubsystem(
            "qbic",
            {
                "AlbumColor": {a.album_id: a.cover_rgb for a in albums},
                "Texture": {a.album_id: a.cover_texture for a in albums},
                "Shape": {a.album_id: (a.shape_roundness,) for a in albums},
            },
            named_targets={"Shape": {"round": (1.0,)}},
        )
    )
    g.register(
        TextSubsystem(
            "blurbs",
            {a.album_id: a.blurb for a in albums},
            attribute="Blurb",
        )
    )
    return g


class TestRunningExample:
    def test_beatles_red_albums(self, garlic, albums):
        """The paper's flagship query returns only Beatles albums,
        sorted by closeness to red."""
        answer = garlic.query(
            '(Artist = "Beatles") AND (AlbumColor ~ "red")', k=4
        )
        by_id = {a.album_id: a for a in albums}
        returned = [by_id[item.obj] for item in answer.items]
        assert all(a.artist == "Beatles" for a in returned)
        grades = answer.result.grades()
        assert list(grades) == sorted(grades, reverse=True)
        # The two seeded red covers should lead.
        assert returned[0].title in ("Sgt. Pepper", "Please Please Me")

    def test_color_and_shape(self, garlic):
        answer = garlic.query('(AlbumColor ~ "red") AND (Shape ~ "round")', k=5)
        assert answer.result.k == 5
        assert answer.plan.explain()

    def test_disjunction_uses_b0(self, garlic):
        answer = garlic.query(
            '(AlbumColor ~ "red") OR (Shape ~ "round")', k=5
        )
        assert answer.result.algorithm == "B0"
        assert answer.result.stats.sum_cost == 10

    def test_text_subsystem_integration(self, garlic, albums):
        answer = garlic.query('Blurb ~ "luminous jazz record"', k=5)
        assert answer.result.k == 5
        assert all(item.grade > 0 for item in answer.items[:1])

    def test_weighted_query(self, garlic):
        answer = garlic.query(
            'WEIGHTED(2: AlbumColor ~ "red", 1: Shape ~ "round")', k=3
        )
        assert answer.result.k == 3

    def test_negation_falls_back_to_full_scan(self, garlic):
        answer = garlic.query('NOT (Genre = "rock") AND (Blurb ~ "soul")', k=3)
        assert answer.result.algorithm == "naive"

    def test_parsed_query_object_accepted(self, garlic):
        from repro.middleware.parser import parse_query

        q = parse_query('(AlbumColor ~ "red") AND (Shape ~ "round")')
        answer = garlic.query(q, k=2)
        assert answer.result.k == 2


class TestFacade:
    def test_explain_without_execution(self, garlic):
        text = garlic.explain('(AlbumColor ~ "red") AND (Shape ~ "round")')
        assert "A0-prime" in text

    def test_plan_exposed(self, garlic):
        plan = garlic.plan('(AlbumColor ~ "red") OR (Shape ~ "round")')
        assert plan.explain()

    def test_invalid_conjunction_mode(self, garlic):
        with pytest.raises(ValueError, match="external"):
            garlic.query('AlbumColor ~ "red"', conjunction="sideways")

    def test_register_chains(self, albums):
        g = Garlic()
        returned = g.register(
            RelationalSubsystem(
                "r", {a.album_id: {"Artist": a.artist} for a in albums}
            )
        )
        assert returned is g

    def test_repr(self, garlic):
        assert "Catalog" in repr(garlic)


class TestConjunctionModes:
    def test_internal_mode_pushdown(self, garlic):
        answer = garlic.query(
            '(AlbumColor ~ "red") AND (Texture ~ "cd-0000")',
            k=3,
            conjunction="internal",
        )
        assert answer.result.algorithm == "internal-conjunction"
        assert answer.result.stats.sum_cost == 3

    def test_compare_modes_helper(self, garlic):
        from repro.middleware.conjunction_modes import (
            compare_conjunction_modes,
        )

        cmp = compare_conjunction_modes(
            garlic, '(AlbumColor ~ "red") AND (Texture ~ "cd-0000")', k=3
        )
        assert cmp.internal_cost < cmp.external_cost
        assert "external" in cmp.summary()
