"""Tests for the planner's strategy table."""

import pytest

from repro.core.semantics import FuzzySemantics
from repro.core.tconorms import ALGEBRAIC_SUM
from repro.core.tnorms import ALGEBRAIC_PRODUCT
from repro.exceptions import CatalogError
from repro.middleware.catalog import Catalog
from repro.middleware.parser import parse_query
from repro.middleware.plan import (
    AlgorithmPlan,
    FilteredConjunctPlan,
    FullScanPlan,
    InternalConjunctionPlan,
)
from repro.middleware.planner import Planner, PlannerOptions
from repro.subsystems.qbic import QbicSubsystem
from repro.subsystems.relational import RelationalSubsystem


@pytest.fixture
def catalog():
    objs = [f"o{i}" for i in range(40)]
    cat = Catalog()
    cat.register(
        RelationalSubsystem(
            "rel",
            {
                o: {"Artist": "Beatles" if i < 3 else f"artist-{i % 7}"}
                for i, o in enumerate(objs)
            },
        )
    )
    cat.register(
        QbicSubsystem(
            "qbic",
            {
                "Color": {o: (i / 40, 0.5, 0.5) for i, o in enumerate(objs)},
                "Shape": {o: (i / 40,) for i, o in enumerate(objs)},
            },
            named_targets={"Shape": {"round": (1.0,)}},
        )
    )
    return cat


def _planner(catalog, **kwargs):
    return Planner(catalog, options=PlannerOptions(**kwargs))


class TestStrategySelection:
    def test_beatles_query_uses_filtered_plan(self, catalog):
        plan = _planner(catalog).plan(
            parse_query('(Artist = "Beatles") AND (Color ~ "red")')
        )
        assert isinstance(plan, FilteredConjunctPlan)
        assert plan.filter_atoms[0].attribute == "Artist"

    def test_unselective_crisp_conjunct_not_filtered(self, catalog):
        # 'artist-0' matches ~6/40 = 0.15 > the 0.1 default threshold.
        plan = _planner(catalog).plan(
            parse_query('(Artist = "artist-0") AND (Color ~ "red")')
        )
        assert isinstance(plan, AlgorithmPlan)

    def test_threshold_tunable(self, catalog):
        plan = _planner(catalog, selectivity_threshold=0.5).plan(
            parse_query('(Artist = "artist-0") AND (Color ~ "red")')
        )
        assert isinstance(plan, FilteredConjunctPlan)

    def test_all_crisp_conjuncts_no_filter_plan(self, catalog):
        """With no graded conjunct left, the filtered split is moot."""
        plan = _planner(catalog).plan(
            parse_query('(Artist = "Beatles") AND (Artist = "Beatles")')
        )
        # Dedup rewrite collapses to a single atom -> AlgorithmPlan.
        assert isinstance(plan, AlgorithmPlan)

    def test_min_conjunction_selects_a0_prime(self, catalog):
        plan = _planner(catalog).plan(
            parse_query('(Color ~ "red") AND (Shape ~ "round")')
        )
        assert isinstance(plan, AlgorithmPlan)
        assert plan.algorithm.name == "A0-prime"

    def test_max_disjunction_selects_b0(self, catalog):
        plan = _planner(catalog).plan(
            parse_query('(Color ~ "red") OR (Shape ~ "round")')
        )
        assert isinstance(plan, AlgorithmPlan)
        assert plan.algorithm.name == "B0"

    def test_nested_monotone_selects_a0(self, catalog):
        plan = _planner(catalog).plan(
            parse_query('(Artist = "Beatles") OR ((Color ~ "red") AND (Shape ~ "round"))')
        )
        assert isinstance(plan, AlgorithmPlan)
        assert plan.algorithm.name == "A0"

    def test_negation_selects_full_scan(self, catalog):
        plan = _planner(catalog).plan(
            parse_query('NOT (Artist = "Beatles") AND (Color ~ "red")')
        )
        assert isinstance(plan, FullScanPlan)

    def test_unknown_attribute_fails_fast(self, catalog):
        with pytest.raises(CatalogError):
            _planner(catalog).plan(parse_query('Bogus ~ "x"'))

    def test_weighted_conjunction_selects_a0(self, catalog):
        plan = _planner(catalog).plan(
            parse_query('WEIGHTED(2: Color ~ "red", 1: Shape ~ "round")')
        )
        assert isinstance(plan, AlgorithmPlan)
        assert plan.algorithm.name == "A0"
        assert plan.aggregation.monotone


class TestInternalConjunction:
    def test_disabled_by_default(self, catalog):
        plan = _planner(catalog).plan(
            parse_query('(Color ~ "red") AND (Shape ~ "round")')
        )
        assert not isinstance(plan, InternalConjunctionPlan)

    def test_enabled_when_opted_in(self, catalog):
        plan = _planner(catalog, allow_internal_conjunction=True).plan(
            parse_query('(Color ~ "red") AND (Shape ~ "round")')
        )
        assert isinstance(plan, InternalConjunctionPlan)
        assert plan.subsystem.name == "qbic"

    def test_cross_subsystem_conjunction_not_pushed(self, catalog):
        plan = _planner(catalog, allow_internal_conjunction=True).plan(
            parse_query('(Artist = "Beatles") AND (Color ~ "red")')
        )
        assert not isinstance(plan, InternalConjunctionPlan)


class TestRewrites:
    def test_idempotence_dedup_under_standard_semantics(self, catalog):
        planner = _planner(catalog)
        q = parse_query('(Color ~ "red") AND (Color ~ "red")')
        rewritten = planner.rewrite(q)
        assert rewritten == parse_query('Color ~ "red"')

    def test_no_rewrites_under_non_standard_semantics(self, catalog):
        """Theorem 3.1: only min/max license equivalence rewrites."""
        sem = FuzzySemantics(tnorm=ALGEBRAIC_PRODUCT, conorm=ALGEBRAIC_SUM)
        planner = Planner(catalog, semantics=sem)
        q = parse_query('(Color ~ "red") AND (Color ~ "red")')
        assert planner.rewrite(q) == q

    def test_explain_mentions_strategy(self, catalog):
        plan = _planner(catalog).plan(
            parse_query('(Color ~ "red") AND (Shape ~ "round")')
        )
        assert "A0-prime" in plan.explain()
