"""Tests for query-to-aggregation compilation."""

import pytest

from repro.core.query import And, Not, Or, atom
from repro.core.semantics import STANDARD_FUZZY
from repro.middleware.compile import CompiledQueryAggregation

A, B, C = atom("A"), atom("B"), atom("C")


class TestCompilation:
    def test_flat_and_is_min(self):
        compiled = CompiledQueryAggregation(And((A, B)), STANDARD_FUZZY)
        assert compiled(0.3, 0.8) == 0.3
        assert compiled.atoms == (A, B)
        assert compiled.arity == 2

    def test_nested_tree(self):
        compiled = CompiledQueryAggregation(
            And((A, Or((B, C)))), STANDARD_FUZZY
        )
        # min(0.9, max(0.2, 0.6)) = 0.6
        assert compiled(0.9, 0.2, 0.6) == pytest.approx(0.6)

    def test_repeated_atom_shares_grade(self):
        compiled = CompiledQueryAggregation(
            And((A, Or((A, B)))), STANDARD_FUZZY
        )
        assert compiled.arity == 2  # A appears twice but is one argument
        # absorption under min/max: value == grade of A
        assert compiled(0.4, 0.9) == pytest.approx(0.4)

    def test_flags_flow_from_classification(self):
        conj = CompiledQueryAggregation(And((A, B)), STANDARD_FUZZY)
        assert conj.monotone and conj.strict
        disj = CompiledQueryAggregation(Or((A, B)), STANDARD_FUZZY)
        assert disj.monotone and not disj.strict
        neg = CompiledQueryAggregation(Not(A), STANDARD_FUZZY)
        assert not neg.monotone

    def test_single_atom_compiles_to_identity(self):
        compiled = CompiledQueryAggregation(A, STANDARD_FUZZY)
        assert compiled.arity == 1
        assert compiled(0.37) == pytest.approx(0.37)

    def test_matches_semantics_evaluate(self):
        import itertools

        query = Or((And((A, B)), C))
        compiled = CompiledQueryAggregation(query, STANDARD_FUZZY)
        for ga, gb, gc in itertools.product((0.0, 0.3, 0.7, 1.0), repeat=3):
            direct = STANDARD_FUZZY.evaluate(query, {A: ga, B: gb, C: gc})
            assert compiled(ga, gb, gc) == pytest.approx(direct)
