"""Tests for the query-language parser."""

import pytest

from repro.core.query import And, AtomicQuery, Not, Or, Weighted
from repro.exceptions import ParseError
from repro.middleware.parser import parse_query, render_query


class TestAtoms:
    def test_crisp_atom(self):
        q = parse_query('Artist = "Beatles"')
        assert q == AtomicQuery("Artist", "Beatles", op="=")

    def test_graded_atom(self):
        q = parse_query('AlbumColor ~ "red"')
        assert q == AtomicQuery("AlbumColor", "red", op="~")

    def test_numeric_targets(self):
        assert parse_query("Year = 1967") == AtomicQuery("Year", 1967, "=")
        assert parse_query("Score ~ 0.5") == AtomicQuery("Score", 0.5, "~")

    def test_identifier_target(self):
        q = parse_query("Shape ~ round")
        assert q.target == "round"

    def test_escaped_string(self):
        q = parse_query(r'Title = "A \"quoted\" name"')
        assert q.target == 'A "quoted" name'

    def test_dotted_identifier(self):
        q = parse_query('album.color ~ "red"')
        assert q.attribute == "album.color"


class TestConnectives:
    def test_the_running_example(self):
        q = parse_query('(Artist = "Beatles") AND (AlbumColor ~ "red")')
        assert isinstance(q, And)
        assert len(q.operands) == 2

    def test_or(self):
        q = parse_query('(A ~ "x") OR (B ~ "y")')
        assert isinstance(q, Or)

    def test_not(self):
        q = parse_query('NOT (Genre = "rock")')
        assert isinstance(q, Not)

    def test_double_negation(self):
        q = parse_query('NOT NOT (A ~ "x")')
        assert isinstance(q, Not)
        assert isinstance(q.operand, Not)

    def test_precedence_and_binds_tighter_than_or(self):
        q = parse_query('A ~ "x" OR B ~ "y" AND C ~ "z"')
        assert isinstance(q, Or)
        assert isinstance(q.operands[1], And)

    def test_parentheses_override(self):
        q = parse_query('(A ~ "x" OR B ~ "y") AND C ~ "z"')
        assert isinstance(q, And)
        assert isinstance(q.operands[0], Or)

    def test_nary_flattening(self):
        q = parse_query('A ~ "1" AND B ~ "2" AND C ~ "3"')
        assert isinstance(q, And)
        assert len(q.operands) == 3

    def test_keywords_case_insensitive(self):
        q = parse_query('A ~ "x" and B ~ "y"')
        assert isinstance(q, And)

    def test_not_binds_tighter_than_and(self):
        q = parse_query('NOT A = "x" AND B ~ "y"')
        assert isinstance(q, And)
        assert isinstance(q.operands[0], Not)


class TestWeighted:
    def test_weighted_query(self):
        q = parse_query('WEIGHTED(2: Color ~ "red", 1: Shape ~ "round")')
        assert isinstance(q, Weighted)
        assert q.weights == pytest.approx((2 / 3, 1 / 3))
        assert len(q.operands) == 2

    def test_weighted_with_fractional_weights(self):
        q = parse_query('WEIGHTED(0.7: A ~ "x", 0.3: B ~ "y")')
        assert q.weights == pytest.approx((0.7, 0.3))

    def test_weighted_nested_query(self):
        q = parse_query('WEIGHTED(1: A ~ "x" AND B ~ "y", 1: C ~ "z")')
        assert isinstance(q.operands[0], And)


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "AND",
            "Artist =",
            'Artist "Beatles"',
            '(A ~ "x"',
            'A ~ "x") AND',
            'A ~ "x" B ~ "y"',
            "Artist < 5",
            "WEIGHTED(A ~ 1)",
            '@bad ~ "x"',
        ],
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(ParseError):
            parse_query(text)

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_query('Artist & "x"')
        assert excinfo.value.position is not None


class TestRenderRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            'Artist = "Beatles"',
            '(Artist = "Beatles") AND (AlbumColor ~ "red")',
            '(A ~ "x") OR (B ~ "y") OR (C ~ "z")',
            'NOT (Genre = "rock")',
            'WEIGHTED(2: Color ~ "red", 1: Shape ~ "round")',
            'A ~ "x" AND (B ~ "y" OR C ~ "z")',
            "Year = 1967",
            r'Title = "say \"hi\""',
        ],
    )
    def test_round_trips(self, text):
        parsed = parse_query(text)
        assert parse_query(render_query(parsed)) == parsed
