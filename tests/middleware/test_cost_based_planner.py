"""Tests for the cost-based conjunction planning mode."""

import pytest

from repro.core.query import And, AtomicQuery
from repro.middleware.catalog import Catalog
from repro.middleware.plan import AlgorithmPlan, FilteredConjunctPlan
from repro.middleware.planner import Planner, PlannerOptions
from repro.subsystems.qbic import QbicSubsystem
from repro.subsystems.relational import RelationalSubsystem


def _catalog(selectivity: float, n: int = 1000):
    objs = [f"o{i}" for i in range(n)]
    matches = max(1, int(selectivity * n))
    cat = Catalog()
    cat.register(
        RelationalSubsystem(
            "rel",
            {
                o: {"Artist": "Beatles" if i < matches else f"a{i}"}
                for i, o in enumerate(objs)
            },
        )
    )
    cat.register(
        QbicSubsystem(
            "qbic",
            {"Color": {o: (i / n, 0.5, 0.5) for i, o in enumerate(objs)}},
        )
    )
    return cat


QUERY = And(
    (AtomicQuery("Artist", "Beatles", "="), AtomicQuery("Color", "red", "~"))
)


def _plan(selectivity, **options):
    cat = _catalog(selectivity)
    planner = Planner(
        cat, options=PlannerOptions(cost_based=True, **options)
    )
    return planner.plan(QUERY)


class TestCostBasedDecision:
    def test_selective_conjunct_filtered(self):
        # sel=0.01, N=1000: filtered ~ 21 accesses; A0 envelope ~ 400.
        plan = _plan(0.01)
        assert isinstance(plan, FilteredConjunctPlan)
        assert "cost-based" in plan.reason

    def test_unselective_conjunct_not_filtered(self):
        # sel=0.5, N=1000: filtered ~ 1001 accesses; A0 envelope ~ 400.
        plan = _plan(0.5)
        assert isinstance(plan, AlgorithmPlan)

    def test_crossover_respects_k(self):
        """Larger expected k inflates the A0 estimate, favouring the
        filter at higher selectivities."""
        sel = 0.3  # filtered ~ 601
        small_k = _plan(sel, expected_k=1)  # A0 ~ 4*sqrt(1000) ~ 126
        large_k = _plan(sel, expected_k=100)  # A0 ~ 1265
        assert isinstance(small_k, AlgorithmPlan)
        assert isinstance(large_k, FilteredConjunctPlan)

    def test_factor_knob(self):
        sel = 0.3
        tight = _plan(sel, expected_k=10, expected_k_factor=1.0)
        loose = _plan(sel, expected_k=10, expected_k_factor=10.0)
        assert isinstance(tight, AlgorithmPlan)
        assert isinstance(loose, FilteredConjunctPlan)

    def test_no_crisp_conjunct_falls_through(self):
        cat = _catalog(0.01)
        planner = Planner(cat, options=PlannerOptions(cost_based=True))
        q = And(
            (AtomicQuery("Color", "red", "~"), AtomicQuery("Color", "blue", "~"))
        )
        plan = planner.plan(q)
        assert isinstance(plan, AlgorithmPlan)

    def test_reason_carries_both_estimates(self):
        plan = _plan(0.01)
        assert "accesses" in plan.reason and "envelope" in plan.reason


class TestEstimateAccuracy:
    def test_filtered_estimate_matches_actual_cost(self):
        """The estimate ~2|S|+1 must track the measured cost closely."""
        from repro.core.semantics import STANDARD_FUZZY
        from repro.middleware.executor import Executor

        sel, n = 0.02, 1000
        cat = _catalog(sel, n)
        planner = Planner(cat, options=PlannerOptions(cost_based=True))
        plan = planner.plan(QUERY)
        assert isinstance(plan, FilteredConjunctPlan)
        answer = Executor(cat, STANDARD_FUZZY).execute(plan, 10)
        actual = answer.result.stats.sum_cost
        estimate = (sel * n + 1) + sel * n
        assert actual == pytest.approx(estimate, rel=0.2)
