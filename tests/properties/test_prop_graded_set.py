"""Hypothesis property tests for GradedSet algebra."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.graded_set import GradedSet

grades = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
objects = st.text(alphabet="abcdefgh", min_size=1, max_size=3)
graded_sets = st.dictionaries(objects, grades, max_size=12).map(GradedSet)


class TestLatticeLaws:
    """Min/max set algebra forms a distributive lattice."""

    @given(a=graded_sets, b=graded_sets)
    def test_intersection_commutative(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @given(a=graded_sets, b=graded_sets)
    def test_union_commutative(self, a, b):
        assert a.union(b) == b.union(a)

    @given(a=graded_sets, b=graded_sets, c=graded_sets)
    @settings(max_examples=50)
    def test_intersection_associative(self, a, b, c):
        assert a.intersect(b).intersect(c) == a.intersect(b.intersect(c))

    @given(a=graded_sets)
    def test_idempotence(self, a):
        assert a.intersect(a) == a
        assert a.union(a) == a

    @given(a=graded_sets, b=graded_sets, c=graded_sets)
    @settings(max_examples=50)
    def test_distributivity(self, a, b, c):
        lhs = a.intersect(b.union(c))
        rhs = a.intersect(b).union(a.intersect(c))
        assert lhs == rhs

    @given(a=graded_sets, b=graded_sets)
    def test_absorption(self, a, b):
        # Domains matter: compare grades on the union of domains.
        lhs = a.union(a.intersect(b))
        for obj in set(a.as_dict()) | set(b.as_dict()):
            assert lhs.grade(obj) == pytest.approx(a.grade(obj))


class TestDeMorgan:
    @given(a=graded_sets, b=graded_sets)
    @settings(max_examples=50)
    def test_de_morgan_over_shared_universe(self, a, b):
        universe = set(a.as_dict()) | set(b.as_dict()) | {"zz"}
        lhs = a.union(b).negate(universe)
        rhs = a.negate(universe).intersect(b.negate(universe))
        assert lhs.approx_equal(rhs)

    @given(a=graded_sets)
    def test_double_negation(self, a):
        universe = set(a.as_dict()) | {"zz"}
        back = a.negate(universe).negate(universe)
        for obj in a.as_dict():
            assert back.grade(obj) == pytest.approx(a.grade(obj))


class TestStructuralInvariants:
    @given(a=graded_sets)
    def test_iteration_sorted_descending(self, a):
        grades_in_order = [g for _, g in a]
        assert grades_in_order == sorted(grades_in_order, reverse=True)

    @given(a=graded_sets, k=st.integers(min_value=0, max_value=12))
    def test_top_k_dominates_rest(self, a, k):
        if k > len(a):
            return
        top = a.top(k)
        if len(top) == 0:
            return
        worst_kept = min(g for _, g in top)
        for obj, g in a:
            if obj not in top:
                assert g <= worst_kept + 1e-12

    @given(a=graded_sets)
    def test_support_removes_only_zeros(self, a):
        support = a.support()
        assert all(g > 0 for _, g in support)
        dropped = set(a.as_dict()) - set(support.as_dict())
        assert all(a.grade(obj) == 0.0 for obj in dropped)

    @given(a=graded_sets, alpha=grades)
    def test_cut_monotone_in_alpha(self, a, alpha):
        low_cut = a.cut(min(alpha, 0.3))
        high_cut = a.cut(max(alpha, 0.3))
        assert high_cut <= low_cut
