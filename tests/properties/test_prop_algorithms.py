"""Hypothesis property tests for the algorithms.

The central invariant: on arbitrary scoring databases (random grades,
including ties and crisp values), every applicable algorithm returns a
valid top-k answer — checked against the ground-truth oracle.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.access.scoring_database import ScoringDatabase
from repro.algorithms.base import is_valid_top_k
from repro.algorithms.disjunction import DisjunctionB0
from repro.algorithms.fa import FaginA0
from repro.algorithms.fa_min import FaginA0Min
from repro.algorithms.fa_variants import EarlyStopFagin, ShrunkenFagin
from repro.algorithms.median import MedianTopK
from repro.algorithms.threshold import ThresholdAlgorithm
from repro.algorithms.ullman import UllmanAlgorithm
from repro.core.means import ARITHMETIC_MEAN, MEDIAN
from repro.core.tconorms import MAXIMUM
from repro.core.tnorms import ALGEBRAIC_PRODUCT, MINIMUM

# Grades drawn from a coarse lattice to provoke plenty of ties.
lattice_grades = st.sampled_from([0.0, 0.1, 0.25, 0.5, 0.5, 0.75, 1.0])
fine_grades = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
any_grades = st.one_of(lattice_grades, fine_grades)


@st.composite
def scoring_databases(draw, min_lists=2, max_lists=3, min_objects=1):
    num_lists = draw(st.integers(min_value=min_lists, max_value=max_lists))
    num_objects = draw(st.integers(min_value=min_objects, max_value=14))
    lists = []
    for __ in range(num_lists):
        grades = draw(
            st.lists(
                any_grades, min_size=num_objects, max_size=num_objects
            )
        )
        lists.append(dict(enumerate(grades)))
    return ScoringDatabase(lists)


@st.composite
def db_and_k(draw, **kwargs):
    db = draw(scoring_databases(**kwargs))
    k = draw(st.integers(min_value=1, max_value=db.num_objects))
    return db, k


class TestMinConjunctionFamily:
    @given(case=db_and_k())
    @settings(max_examples=120, deadline=None)
    def test_a0(self, case):
        db, k = case
        truth = db.overall_grades(MINIMUM)
        result = FaginA0().top_k(db.session(), MINIMUM, k)
        assert is_valid_top_k(result.items, truth, k)

    @given(case=db_and_k())
    @settings(max_examples=120, deadline=None)
    def test_a0_prime(self, case):
        db, k = case
        truth = db.overall_grades(MINIMUM)
        result = FaginA0Min().top_k(db.session(), MINIMUM, k)
        assert is_valid_top_k(result.items, truth, k)

    @given(case=db_and_k())
    @settings(max_examples=80, deadline=None)
    def test_variants(self, case):
        db, k = case
        truth = db.overall_grades(MINIMUM)
        for alg in (EarlyStopFagin(), ShrunkenFagin()):
            result = alg.top_k(db.session(), MINIMUM, k)
            assert is_valid_top_k(result.items, truth, k), alg.name

    @given(case=db_and_k())
    @settings(max_examples=80, deadline=None)
    def test_threshold_algorithm(self, case):
        db, k = case
        truth = db.overall_grades(MINIMUM)
        result = ThresholdAlgorithm().top_k(db.session(), MINIMUM, k)
        assert is_valid_top_k(result.items, truth, k)

    @given(case=db_and_k())
    @settings(max_examples=80, deadline=None)
    def test_ullman(self, case):
        db, k = case
        truth = db.overall_grades(MINIMUM)
        result = UllmanAlgorithm().top_k(db.session(), MINIMUM, k)
        assert is_valid_top_k(result.items, truth, k)

    @given(case=db_and_k())
    @settings(max_examples=100, deadline=None)
    def test_nra(self, case):
        from repro.algorithms.nra import NoRandomAccessAlgorithm

        db, k = case
        truth = db.overall_grades(MINIMUM)
        result = NoRandomAccessAlgorithm().top_k(db.session(), MINIMUM, k)
        assert is_valid_top_k(result.items, truth, k)
        assert result.stats.random_cost == 0


class TestOtherAggregations:
    @given(case=db_and_k())
    @settings(max_examples=80, deadline=None)
    def test_a0_product(self, case):
        db, k = case
        truth = db.overall_grades(ALGEBRAIC_PRODUCT)
        result = FaginA0().top_k(db.session(), ALGEBRAIC_PRODUCT, k)
        assert is_valid_top_k(result.items, truth, k)

    @given(case=db_and_k())
    @settings(max_examples=80, deadline=None)
    def test_a0_mean(self, case):
        db, k = case
        truth = db.overall_grades(ARITHMETIC_MEAN)
        result = FaginA0().top_k(db.session(), ARITHMETIC_MEAN, k)
        assert is_valid_top_k(result.items, truth, k)

    @given(case=db_and_k())
    @settings(max_examples=100, deadline=None)
    def test_b0_max(self, case):
        db, k = case
        truth = db.overall_grades(MAXIMUM)
        result = DisjunctionB0().top_k(db.session(), MAXIMUM, k)
        assert is_valid_top_k(result.items, truth, k)

    @given(case=db_and_k(min_lists=3, max_lists=4))
    @settings(max_examples=60, deadline=None)
    def test_median_algorithm(self, case):
        db, k = case
        truth = db.overall_grades(MEDIAN)
        result = MedianTopK().top_k(db.session(), MEDIAN, k)
        assert is_valid_top_k(result.items, truth, k)


class TestCostInvariants:
    @given(case=db_and_k())
    @settings(max_examples=60, deadline=None)
    def test_b0_cost_formula(self, case):
        """B0: exactly sum_i min(k, N) sorted accesses, zero random."""
        db, k = case
        result = DisjunctionB0().top_k(db.session(), MAXIMUM, k)
        expected = db.num_lists * min(k, db.num_objects)
        assert result.stats.sorted_cost == expected
        assert result.stats.random_cost == 0

    @given(case=db_and_k())
    @settings(max_examples=60, deadline=None)
    def test_a0_sorted_cost_is_m_times_t(self, case):
        db, k = case
        result = FaginA0().top_k(db.session(), MINIMUM, k)
        assert result.stats.sorted_cost == db.num_lists * result.details["T"]

    @given(case=db_and_k())
    @settings(max_examples=60, deadline=None)
    def test_a0_prime_never_more_random_than_a0(self, case):
        db, k = case
        a0 = FaginA0().top_k(db.session(), MINIMUM, k)
        a0p = FaginA0Min().top_k(db.session(), MINIMUM, k)
        assert a0p.stats.random_cost <= a0.stats.random_cost

    @given(case=db_and_k())
    @settings(max_examples=60, deadline=None)
    def test_sum_cost_never_exceeds_full_scan_per_list(self, case):
        """No algorithm reads more than all of every list + all random.

        Coarse sanity: each list yields at most N sorted accesses, and
        random accesses are bounded by m*N when every grade is fetched.
        """
        db, k = case
        m, n = db.num_lists, db.num_objects
        for alg in (FaginA0(), FaginA0Min(), ThresholdAlgorithm()):
            result = alg.top_k(db.session(), MINIMUM, k)
            assert result.stats.sorted_cost <= m * n
            assert result.stats.random_cost <= m * n
