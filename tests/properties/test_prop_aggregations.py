"""Hypothesis property tests for the aggregation catalogue.

Randomized verification of the Section 3 axioms over the full unit
cube, complementing the deterministic grid checks in tests/core.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import assume, given, settings

from repro.core.aggregation import DualTConorm
from repro.core.means import (
    ARITHMETIC_MEAN,
    GEOMETRIC_MEAN,
    HARMONIC_MEAN,
    MEDIAN,
)
from repro.core.negations import SugenoNegation, YagerNegation
from repro.core.tconorms import DUAL_PAIRS, TCONORMS
from repro.core.tnorms import DRASTIC_PRODUCT, TNORMS
from repro.core.weights import FaginWimmersWeighting
from repro.core.tnorms import MINIMUM

grades = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)

ALL_TNORMS = sorted(TNORMS.values(), key=lambda t: t.name)
ALL_TCONORMS = sorted(TCONORMS.values(), key=lambda s: s.name)


@pytest.mark.parametrize("tnorm", ALL_TNORMS, ids=lambda t: t.name)
class TestTNormProperties:
    @given(x=grades, y=grades)
    def test_commutative(self, tnorm, x, y):
        assert tnorm(x, y) == pytest.approx(tnorm(y, x), abs=1e-12)

    @given(x=grades)
    def test_one_is_identity(self, tnorm, x):
        assert tnorm(x, 1.0) == pytest.approx(x, abs=1e-12)

    @given(x=grades, y=grades)
    def test_bounded_by_min(self, tnorm, x, y):
        assert tnorm(x, y) <= min(x, y) + 1e-12

    @given(x=grades, y=grades)
    def test_bounded_below_by_drastic(self, tnorm, x, y):
        assert tnorm(x, y) >= DRASTIC_PRODUCT(x, y) - 1e-12

    @given(x=grades, y=grades, z=grades)
    @settings(max_examples=60)
    def test_associative(self, tnorm, x, y, z):
        left = tnorm(tnorm(x, y), z)
        right = tnorm(x, tnorm(y, z))
        assert left == pytest.approx(right, abs=1e-9)

    @given(x=grades, x2=grades, y=grades)
    def test_monotone_in_first_argument(self, tnorm, x, x2, y):
        lo, hi = min(x, x2), max(x, x2)
        assert tnorm(lo, y) <= tnorm(hi, y) + 1e-12

    @given(x=grades, y=grades)
    def test_strictness_direction(self, tnorm, x, y):
        """t = 1 implies both arguments are 1."""
        if tnorm(x, y) >= 1.0:
            assert x == 1.0 and y == 1.0


# Grades bounded away from the rounding-degenerate neighbourhoods of 0
# and 1 (for x < ~1e-16, 1-x rounds to exactly 1.0, which flips the
# branch of the *discontinuous* drastic connectives — an artifact of
# float arithmetic, not of the duality).
duality_grades = st.one_of(
    st.just(0.0),
    st.just(1.0),
    st.floats(min_value=1e-9, max_value=1.0 - 1e-9, allow_nan=False),
)


@pytest.mark.parametrize(
    "t_name,s_name", sorted(DUAL_PAIRS.items()), ids=lambda p: str(p)
)
class TestDuality:
    @given(x=duality_grades, y=duality_grades)
    @settings(max_examples=60)
    def test_de_morgan(self, t_name, s_name, x, y):
        tnorm, conorm = TNORMS[t_name], TCONORMS[s_name]
        derived = DualTConorm(tnorm)
        assert conorm(x, y) == pytest.approx(derived(x, y), abs=1e-9)


class TestMeans:
    @given(gs=st.lists(grades, min_size=1, max_size=6))
    def test_means_between_min_and_max(self, gs):
        for mean in (ARITHMETIC_MEAN, GEOMETRIC_MEAN, HARMONIC_MEAN):
            value = mean(*gs)
            assert min(gs) - 1e-9 <= value <= max(gs) + 1e-9

    @given(gs=st.lists(grades, min_size=1, max_size=6))
    def test_pythagorean_ordering(self, gs):
        """harmonic <= geometric <= arithmetic."""
        h, g, a = HARMONIC_MEAN(*gs), GEOMETRIC_MEAN(*gs), ARITHMETIC_MEAN(*gs)
        assert h <= g + 1e-9
        assert g <= a + 1e-9

    @given(gs=st.lists(grades, min_size=3, max_size=7))
    def test_median_is_an_order_statistic(self, gs):
        assert MEDIAN(*gs) in gs

    @given(gs=st.lists(grades, min_size=1, max_size=5))
    def test_idempotence_on_equal_arguments(self, gs):
        g = gs[0]
        equal = [g] * len(gs)
        for mean in (ARITHMETIC_MEAN, GEOMETRIC_MEAN, MEDIAN):
            assert mean(*equal) == pytest.approx(g, abs=1e-12)


class TestNegations:
    @given(x=grades, lam=st.floats(min_value=-0.99, max_value=20.0))
    def test_sugeno_involutive(self, x, lam):
        neg = SugenoNegation(lam)
        assert neg(neg(x)) == pytest.approx(x, abs=1e-8)

    @given(x=grades, w=st.floats(min_value=0.25, max_value=8.0))
    def test_yager_involutive(self, x, w):
        # The tolerance is loose because for large w and small x the
        # round trip is ill-conditioned: the recovered x carries an
        # absolute error of about eps / x**(w - 1). Below x**(w-1)
        # ~ 1e-12 (but above the abs tolerance) n(x) is closer to 1
        # than 1's neighbouring float, so no double-precision
        # implementation can invert it — skip that sliver, exactly as
        # duality_grades above skips the drastic connectives' corner.
        neg = YagerNegation(w)
        assume(x <= 1e-3 or x ** max(w - 1.0, 0.0) >= 1e-12)
        assert neg(neg(x)) == pytest.approx(x, rel=5e-3, abs=1e-3)


class TestWeightedFormula:
    @given(
        gs=st.lists(grades, min_size=2, max_size=5),
        raw=st.lists(
            st.floats(min_value=0.01, max_value=10.0), min_size=2, max_size=5
        ),
    )
    @settings(max_examples=80)
    def test_between_min_and_max(self, gs, raw):
        m = min(len(gs), len(raw))
        gs, raw = gs[:m], raw[:m]
        w = FaginWimmersWeighting(MINIMUM, raw)
        value = w(*gs)
        assert min(gs) - 1e-9 <= value <= max(gs) + 1e-9

    @given(gs=st.lists(grades, min_size=2, max_size=5))
    def test_equal_weights_recover_min(self, gs):
        w = FaginWimmersWeighting(MINIMUM, [1.0] * len(gs))
        assert w(*gs) == pytest.approx(min(gs), abs=1e-12)
