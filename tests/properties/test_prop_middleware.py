"""Hypothesis property tests at the middleware level.

Random query trees compiled against random graded data: compiled
aggregations must agree with direct semantic evaluation; planned and
executed answers must match the exhaustive oracle.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.graded_set import GradedSet
from repro.core.query import And, AtomicQuery, Or, Weighted
from repro.core.semantics import STANDARD_FUZZY
from repro.middleware.compile import CompiledQueryAggregation

grades = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)

ATOMS = tuple(AtomicQuery(name, "t", "~") for name in ("A", "B", "C", "D"))


@st.composite
def monotone_queries(draw, depth=2):
    """Random negation-free query trees over a fixed atom pool."""
    if depth == 0 or draw(st.booleans()):
        return draw(st.sampled_from(ATOMS))
    kind = draw(st.integers(min_value=0, max_value=2))
    n = draw(st.integers(min_value=2, max_value=3))
    operands = [draw(monotone_queries(depth=depth - 1)) for _ in range(n)]
    if kind == 0:
        return And(operands)
    if kind == 1:
        return Or(operands)
    weights = [draw(st.integers(min_value=1, max_value=5)) for _ in operands]
    return Weighted(operands, weights)


class TestCompiledAggregation:
    @given(query=monotone_queries(), data=st.data())
    @settings(max_examples=150, deadline=None)
    def test_compiled_matches_semantics(self, query, data):
        compiled = CompiledQueryAggregation(query, STANDARD_FUZZY)
        valuation = {
            atom: data.draw(grades, label=atom.attribute)
            for atom in compiled.atoms
        }
        direct = STANDARD_FUZZY.evaluate(query, valuation)
        via_compiled = compiled(*(valuation[a] for a in compiled.atoms))
        assert via_compiled == pytest.approx(direct, abs=1e-12)

    @given(query=monotone_queries())
    @settings(max_examples=100, deadline=None)
    def test_negation_free_trees_classified_monotone(self, query):
        compiled = CompiledQueryAggregation(query, STANDARD_FUZZY)
        assert compiled.monotone

    @given(query=monotone_queries(), data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_compiled_monotonicity_numerically(self, query, data):
        """Raising any atom's grade never lowers the compiled value."""
        compiled = CompiledQueryAggregation(query, STANDARD_FUZZY)
        base = {
            atom: data.draw(grades, label=atom.attribute)
            for atom in compiled.atoms
        }
        bumped_atom = data.draw(
            st.sampled_from(compiled.atoms), label="bumped"
        )
        bumped = dict(base)
        bumped[bumped_atom] = min(1.0, base[bumped_atom] + 0.25)
        lo = compiled(*(base[a] for a in compiled.atoms))
        hi = compiled(*(bumped[a] for a in compiled.atoms))
        assert hi >= lo - 1e-12


class TestSetLevelAgreement:
    @given(
        query=monotone_queries(),
        table=st.dictionaries(
            st.sampled_from(["x", "y", "z", "w"]),
            st.tuples(grades, grades, grades, grades),
            min_size=1,
            max_size=4,
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_pointwise_equals_setwise(self, query, table):
        atoms = query.atoms()
        atom_sets = {
            atom: GradedSet(
                {obj: row[i % 4] for obj, row in table.items()}
            )
            for i, atom in enumerate(atoms)
        }
        set_result = STANDARD_FUZZY.evaluate_sets(
            query, atom_sets, table.keys()
        )
        for obj in table:
            valuation = {a: atom_sets[a].grade(obj) for a in atoms}
            assert set_result.grade(obj) == pytest.approx(
                STANDARD_FUZZY.evaluate(query, valuation)
            )
