"""Hypothesis round-trip tests for the query language."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.query import And, AtomicQuery, Not, Or, Query, Weighted
from repro.middleware.parser import parse_query, render_query

attributes = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,6}", fullmatch=True).filter(
    lambda s: s.lower() not in {"and", "or", "not", "weighted"}
)
string_targets = st.text(
    alphabet=st.characters(blacklist_characters='"\\', min_codepoint=32, max_codepoint=126),
    max_size=8,
)
number_targets = st.one_of(
    st.integers(min_value=0, max_value=10**6),
    st.floats(min_value=0, max_value=100, allow_nan=False).map(
        lambda f: round(f, 3)
    ),
)
targets = st.one_of(string_targets, number_targets)


@st.composite
def atoms(draw):
    return AtomicQuery(
        draw(attributes), draw(targets), draw(st.sampled_from(["=", "~"]))
    )


@st.composite
def queries(draw, depth=2):
    if depth == 0:
        return draw(atoms())
    branch = draw(st.integers(min_value=0, max_value=4))
    if branch == 0:
        return draw(atoms())
    if branch == 1:
        return Not(draw(queries(depth=depth - 1)))
    if branch == 4:
        n = draw(st.integers(min_value=1, max_value=3))
        ops = [draw(queries(depth=depth - 1)) for _ in range(n)]
        weights = [draw(st.integers(min_value=1, max_value=9)) for _ in ops]
        return Weighted(ops, weights)
    connective = And if branch == 2 else Or
    n = draw(st.integers(min_value=2, max_value=3))
    operands = [draw(queries(depth=depth - 1)) for _ in range(n)]
    # Same-type children flatten; that is part of the round-trip contract.
    return connective(operands)


class TestRoundTrip:
    @given(q=queries())
    @settings(max_examples=200, deadline=None)
    def test_render_then_parse_is_identity(self, q: Query):
        assert parse_query(render_query(q)) == q

    @given(q=queries())
    @settings(max_examples=100, deadline=None)
    def test_render_is_stable(self, q: Query):
        once = render_query(q)
        twice = render_query(parse_query(once))
        assert once == twice

    @given(q=queries())
    @settings(max_examples=100, deadline=None)
    def test_atoms_preserved(self, q: Query):
        assert parse_query(render_query(q)).atoms() == q.atoms()
