"""Hypothesis property tests for the access layer."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.access.cost import AccessStats, CostModel, CostTracker
from repro.access.scoring_database import ScoringDatabase
from repro.access.source import MaterializedSource
from repro.exceptions import ExhaustedSourceError

grades = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
grade_tables = st.dictionaries(
    st.integers(min_value=0, max_value=30), grades, min_size=1, max_size=20
)


class TestSourceConsistency:
    @given(table=grade_tables)
    @settings(max_examples=100, deadline=None)
    def test_sorted_stream_is_non_increasing(self, table):
        source = MaterializedSource("s", table)
        stream = []
        while not source.exhausted:
            stream.append(source.next_sorted())
        assert len(stream) == len(table)
        for earlier, later in zip(stream, stream[1:]):
            assert earlier.grade >= later.grade

    @given(table=grade_tables)
    @settings(max_examples=100, deadline=None)
    def test_random_access_agrees_with_stream(self, table):
        source = MaterializedSource("s", table)
        while not source.exhausted:
            item = source.next_sorted()
            assert source.random_access(item.obj) == item.grade

    @given(table=grade_tables)
    @settings(max_examples=60, deadline=None)
    def test_restart_replays_identically(self, table):
        source = MaterializedSource("s", table)
        first = [source.next_sorted() for _ in range(len(table))]
        source.restart()
        second = [source.next_sorted() for _ in range(len(table))]
        assert first == second

    @given(table=grade_tables)
    @settings(max_examples=60, deadline=None)
    def test_exhaustion_is_sticky(self, table):
        source = MaterializedSource("s", table)
        for _ in range(len(table)):
            source.next_sorted()
        with pytest.raises(ExhaustedSourceError):
            source.next_sorted()
        with pytest.raises(ExhaustedSourceError):
            source.next_sorted()


class TestScoringDatabaseProperties:
    @given(
        tables=st.lists(grade_tables, min_size=1, max_size=3),
        data=st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_skeleton_round_trip(self, tables, data):
        # Align all lists on the first table's object set.
        domain = sorted(tables[0])
        lists = []
        for t in tables:
            lists.append(
                {obj: t.get(obj, 0.37) for obj in domain}
            )
        db = ScoringDatabase(lists)
        sk = db.skeleton()
        assert db.consistent_with(sk)
        assert sk.num_lists == db.num_lists
        assert sk.objects == db.objects

    @given(tables=st.lists(grade_tables, min_size=2, max_size=2))
    @settings(max_examples=60, deadline=None)
    def test_session_isolated_from_database(self, tables):
        domain = sorted(tables[0])
        lists = [{obj: t.get(obj, 0.5) for obj in domain} for t in tables]
        db = ScoringDatabase(lists)
        s1, s2 = db.session(), db.session()
        s1.sources[0].next_sorted()
        assert s2.sources[0].position == 0
        assert s2.tracker.snapshot().sum_cost == 0


class TestCostArithmetic:
    stats_strategy = st.builds(
        AccessStats,
        st.tuples(
            st.integers(min_value=0, max_value=1000),
            st.integers(min_value=0, max_value=1000),
        ),
        st.tuples(
            st.integers(min_value=0, max_value=1000),
            st.integers(min_value=0, max_value=1000),
        ),
    )

    @given(a=stats_strategy, b=stats_strategy)
    def test_addition_componentwise(self, a, b):
        total = a + b
        assert total.sorted_cost == a.sorted_cost + b.sorted_cost
        assert total.random_cost == a.random_cost + b.random_cost

    @given(
        a=stats_strategy,
        c1=st.floats(min_value=0.01, max_value=100),
        c2=st.floats(min_value=0.01, max_value=100),
    )
    def test_sandwich_inequality(self, a, c1, c2):
        """Inequality (1) of Section 5, for arbitrary positive c1, c2."""
        model = CostModel(sorted_weight=c1, random_weight=c2)
        cost = model.cost(a)
        assert min(c1, c2) * a.sum_cost <= cost + 1e-9
        assert cost <= max(c1, c2) * a.sum_cost + 1e-9

    @given(
        charges=st.lists(
            st.tuples(st.integers(0, 2), st.booleans()),
            max_size=50,
        )
    )
    def test_tracker_accumulates_exactly(self, charges):
        tracker = CostTracker(3)
        expected_s, expected_r = [0, 0, 0], [0, 0, 0]
        for idx, is_sorted in charges:
            if is_sorted:
                tracker.charge_sorted(idx)
                expected_s[idx] += 1
            else:
                tracker.charge_random(idx)
                expected_r[idx] += 1
        snapshot = tracker.snapshot()
        assert list(snapshot.sorted_by_list) == expected_s
        assert list(snapshot.random_by_list) == expected_r
