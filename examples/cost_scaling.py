"""The sqrt(N) law, drawn: A0 vs naive access cost as N grows.

Regenerates the paper's central quantitative picture (Theorem 5.3) as
an ASCII log-log chart: the naive algorithm's cost is a straight line
of slope 1, A0's a straight line of slope (m-1)/m = 1/2 for two
conjuncts.

Run:  python examples/cost_scaling.py
"""

import math

from repro import FaginA0, MINIMUM
from repro.analysis.experiments import measure_costs
from repro.analysis.fitting import fit_power_law
from repro.workloads import independent_database

NS = (250, 500, 1000, 2000, 4000, 8000, 16000)
K = 10
TRIALS = 8
WIDTH = 58


def main() -> None:
    print(f"A0 vs naive: total accesses for top-{K}, m=2, "
          f"independent lists ({TRIALS} trials per N)\n")
    a0_costs = []
    for n in NS:
        summary = measure_costs(
            lambda seed, n=n: independent_database(2, n, seed=seed),
            FaginA0(),
            MINIMUM,
            k=K,
            trials=TRIALS,
        )
        a0_costs.append(summary.mean_sum)

    naive_costs = [2 * n for n in NS]
    top = max(naive_costs)

    def bar(value: float) -> str:
        # log scale: 0 chars at cost=10, WIDTH chars at the maximum.
        length = int(WIDTH * math.log(value / 10) / math.log(top / 10))
        return "#" * max(1, length)

    print(f"{'N':>6s}  {'naive':>8s}  {'A0':>8s}   cost (log scale)")
    for n, naive, a0 in zip(NS, naive_costs, a0_costs):
        print(f"{n:6d}  {naive:8.0f}  {a0:8.0f}   naive |{bar(naive)}")
        print(f"{'':6s}  {'':8s}  {'':8s}   A0    |{bar(a0)}")

    fit = fit_power_law(NS, a0_costs)
    print(f"\nA0 fitted growth:    cost ~ {fit.coefficient:.2f} * "
          f"N^{fit.exponent:.3f}   (Theorem 5.3 predicts exponent 0.5)")
    print("naive growth:        cost = 2 * N^1.000   (linear)")
    speedup = naive_costs[-1] / a0_costs[-1]
    print(f"\nat N={NS[-1]}: A0 is {speedup:.0f}x cheaper — and the gap "
          "keeps widening like sqrt(N).")


if __name__ == "__main__":
    main()
