"""Quickstart: top-k fuzzy aggregation over two ranked sources.

Builds the paper's formal setting directly — two independent ranked
lists over the same N objects — and compares the naive linear scan with
Fagin's Algorithm (A0), then pages through further answers with the
resumable variant ("continue where we left off", Section 4).

Run:  python examples/quickstart.py
"""

from repro import FaginA0, IncrementalFagin, MINIMUM, NaiveAlgorithm
from repro.analysis.bounds import a0_cost_bound
from repro.workloads import independent_database

N = 10_000
K = 10


def main() -> None:
    # The Section 5 model: m = 2 independent lists over N objects,
    # uniform grades. Each list is reachable only through sorted access
    # (stream the next-best object) and random access (grade of a named
    # object) — the middleware interface of Section 4.
    db = independent_database(num_lists=2, num_objects=N, seed=42)

    print(f"database: m=2 lists over N={N} objects; want top k={K}\n")

    naive = NaiveAlgorithm().top_k(db.session(), MINIMUM, K)
    print("naive algorithm (read everything):")
    print(f"  cost: {naive.stats.sum_cost} accesses "
          f"({naive.stats.sorted_cost} sorted + {naive.stats.random_cost} random)")

    fa = FaginA0().top_k(db.session(), MINIMUM, K)
    bound = a0_cost_bound(N, 2, K)
    print("\nFagin's Algorithm A0 (Theorem 5.3: O(sqrt(N*k)) whp):")
    print(f"  cost: {fa.stats.sum_cost} accesses "
          f"({fa.stats.sorted_cost} sorted + {fa.stats.random_cost} random)")
    print(f"  bound N^(1/2)*k^(1/2) = {bound:.0f}; "
          f"sorted depth T = {fa.details['T']}")
    print(f"  speedup over naive: {naive.stats.sum_cost / fa.stats.sum_cost:.1f}x")

    print("\ntop answers (identical for both algorithms):")
    for rank, (obj, grade) in enumerate(fa.items, start=1):
        print(f"  {rank:2d}. object {obj:6} grade {grade:.4f}")
    assert sorted(fa.grades()) == sorted(naive.grades())

    # Paging: the paper's "continue where we left off".
    print("\nincremental paging with IncrementalFagin:")
    inc = IncrementalFagin(db.session(), MINIMUM)
    first = inc.next_batch(K)
    second = inc.next_batch(K)
    print(f"  batch 1 (answers 1-{K}):  cost {first.stats.sum_cost} accesses")
    print(f"  batch 2 (answers {K + 1}-{2 * K}): cost {second.stats.sum_cost} "
          "accesses (reuses prior sorted progress)")


if __name__ == "__main__":
    main()
