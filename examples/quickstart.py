"""Quickstart: top-k fuzzy aggregation through the unified Engine.

Builds the paper's formal setting directly — two independent ranked
lists over the same N objects — and drives everything through one
`Engine`: strategy auto-selection vs a forced naive scan, cursor paging
("continue where we left off", Section 4), and a batch sharing one
session and cost ledger.

Run:  python examples/quickstart.py
"""

from repro import ARITHMETIC_MEAN, Engine, MAXIMUM, MINIMUM
from repro.analysis.bounds import a0_cost_bound
from repro.workloads import independent_database

N = 10_000
K = 10


def main() -> None:
    # The Section 5 model: m = 2 independent lists over N objects,
    # uniform grades. Each list is reachable only through sorted access
    # (stream the next-best object) and random access (grade of a named
    # object) — the middleware interface of Section 4.
    db = independent_database(num_lists=2, num_objects=N, seed=42)
    engine = Engine.over(db)

    print(f"database: m=2 lists over N={N} objects; want top k={K}\n")

    naive = engine.query(MINIMUM).strategy("naive").top(K)
    print("naive algorithm (read everything):")
    print(f"  cost: {naive.stats.sum_cost} accesses "
          f"({naive.stats.sorted_cost} sorted + {naive.stats.random_cost} random)")

    # Auto-selection consults the strategy registry: standard fuzzy
    # conjunction -> A0' (Theorem 4.4). Force classic A0 instead to
    # match the Theorem 5.3 cost envelope.
    fa = engine.query(MINIMUM).strategy("fagin").top(K)
    bound = a0_cost_bound(N, 2, K)
    print("\nFagin's Algorithm A0 (Theorem 5.3: O(sqrt(N*k)) whp):")
    print(f"  cost: {fa.stats.sum_cost} accesses "
          f"({fa.stats.sorted_cost} sorted + {fa.stats.random_cost} random)")
    print(f"  bound N^(1/2)*k^(1/2) = {bound:.0f}; "
          f"sorted depth T = {fa.details['T']}")
    print(f"  speedup over naive: {naive.stats.sum_cost / fa.stats.sum_cost:.1f}x")

    auto = engine.query(MINIMUM).top(K)
    print(f"\nauto-selected strategy: {auto.algorithm} "
          f"(cost {auto.stats.sum_cost} accesses)")

    print("\ntop answers (identical for every correct strategy):")
    for rank, (obj, grade) in enumerate(fa.items, start=1):
        print(f"  {rank:2d}. object {obj:6} grade {grade:.4f}")
    assert sorted(fa.grades()) == sorted(naive.grades())

    # Paging: the paper's "continue where we left off".
    print("\nincremental paging with a ResultCursor:")
    cursor = engine.query(MINIMUM).cursor()
    first = cursor.next_k(K)
    second = cursor.next_k(K)
    print(f"  page 1 (answers 1-{K}):  cost {first.stats.sum_cost} accesses")
    print(f"  page 2 (answers {K + 1}-{2 * K}): cost {second.stats.sum_cost} "
          "accesses (reuses prior sorted progress)")

    # Batch execution: three aggregations, one session, one ledger.
    batch = engine.run_many([MINIMUM, ARITHMETIC_MEAN, MAXIMUM], k=K)
    print("\nbatch of three aggregations over one shared session:")
    for answer in batch:
        print(f"  {answer.algorithm:10s} cost {answer.stats.sum_cost} accesses")
    print(f"  batch total: S={batch.total_sorted} sorted + "
          f"R={batch.total_random} random = {batch.total_accesses}")


if __name__ == "__main__":
    main()
