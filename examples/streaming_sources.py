"""Evaluating over subsystems that cannot do random access.

Section 4 models two access modes and footnote 5 notes the paper
*assumes* random access is available ("which, in fact, it can" — for
QBIC). This example shows what the middleware does when that assumption
fails: a stream-only ranked source (think: a remote engine that only
returns results page by page) forces the planner onto the
No-Random-Access algorithm, which certifies the top-k from sorted
streams alone using upper/lower bound bookkeeping.

Run:  python examples/streaming_sources.py
"""

from repro import Garlic, MINIMUM
from repro.access.cost import CostModel
from repro.algorithms import FaginA0Min, NoRandomAccessAlgorithm, choose_algorithm
from repro.subsystems import QbicSubsystem, StreamOnlySubsystem, SyntheticSubsystem
from repro.workloads import Uniform, independent_database


def middleware_demo() -> None:
    objs = [f"track-{i:04d}" for i in range(2000)]
    # A similarity engine that CAN do random access ...
    import random

    rng = random.Random(5)
    qbic = QbicSubsystem(
        "audio-features",
        {"Timbre": {o: (rng.random(), rng.random()) for o in objs}},
    )
    # ... federated with a remote popularity feed that can only stream.
    popularity = StreamOnlySubsystem(
        SyntheticSubsystem(
            "popularity-feed",
            generated={"Popularity": Uniform()},
            objects=objs,
            seed=9,
        )
    )

    garlic = Garlic()
    garlic.register(qbic)
    garlic.register(popularity)

    # Vector targets are not query-language literals, so build the AST
    # directly (query by value on Timbre, any target on the feed).
    from repro.core.query import And, AtomicQuery

    query = And(
        (
            AtomicQuery("Timbre", (0.8, 0.2), "~"),
            AtomicQuery("Popularity", "this-week", "~"),
        )
    )
    print("query:", query)
    print("plan: ", garlic.explain(query))
    answer = garlic.query(query, k=5)
    stats = answer.result.stats
    print(f"cost:  {stats.sorted_cost} sorted + {stats.random_cost} random "
          f"(random access is impossible on the feed — and unused)\n")
    for rank, (obj, grade) in enumerate(answer.items, start=1):
        print(f"  {rank}. [{grade:.4f}] {obj}")


def cost_model_demo() -> None:
    print("\n--- cost-model-driven selection -------------------------")
    print("Section 5's middleware cost is c1*S + c2*R; when random")
    print("accesses are expensive, the selection table flips to NRA:\n")
    for ratio in (1, 5, 10, 50):
        model = CostModel(sorted_weight=1.0, random_weight=float(ratio))
        choice = choose_algorithm(MINIMUM, 2, cost_model=model)
        print(f"  c2/c1 = {ratio:3d}  ->  {choice.name}")

    db = independent_database(2, 2000, seed=3)
    expensive = CostModel(sorted_weight=1.0, random_weight=50.0)
    a0p = FaginA0Min().top_k(db.session(), MINIMUM, 10)
    nra = NoRandomAccessAlgorithm().top_k(db.session(), MINIMUM, 10)
    print(f"\n  measured at c2/c1 = 50, N = 2000, k = 10:")
    print(f"    A0' weighted cost: {a0p.stats.middleware_cost(expensive):8.0f}"
          f"   (S={a0p.stats.sorted_cost}, R={a0p.stats.random_cost})")
    print(f"    NRA weighted cost: {nra.stats.middleware_cost(expensive):8.0f}"
          f"   (S={nra.stats.sorted_cost}, R=0)")


if __name__ == "__main__":
    middleware_demo()
    cost_model_demo()
