"""Concurrent serving: one shared store, many queries in flight.

Demonstrates the PR 5 concurrency subsystem end to end:

* a ``ColumnarScoringDatabase`` as the shared read-only store;
* ``Engine.run_many(..., parallel=8)`` with its serial-parity ledger;
* the ``AsyncEngine`` facade: awaitable top-k, gathered concurrent
  queries, and ``async for`` paging.

Run with::

    PYTHONPATH=src python examples/async_serving.py
"""

import asyncio

from repro import MINIMUM
from repro.access import ColumnarScoringDatabase
from repro.core.means import ARITHMETIC_MEAN
from repro.engine import AsyncEngine, Engine
from repro.workloads import independent_database

N, M, K = 20_000, 3, 10


def build_store() -> ColumnarScoringDatabase:
    return ColumnarScoringDatabase.from_scoring_database(
        independent_database(M, N, seed=42)
    )


def parallel_batch(engine: Engine) -> None:
    specs = [MINIMUM, ARITHMETIC_MEAN] * 8
    serial = engine.run_many(specs, k=K)
    parallel = engine.run_many(specs, k=K, parallel=8)
    assert [a.items for a in serial] == [a.items for a in parallel]
    print(
        f"run_many x{len(specs)}: serial ledger S={serial.total_sorted} "
        f"R={serial.total_random}; parallel=8 ledger "
        f"S={parallel.total_sorted} R={parallel.total_random} (identical)"
    )


async def serve(engine: Engine) -> None:
    async with AsyncEngine(engine, max_workers=8) as serving:
        # One awaited query.
        top = await serving.top_k(MINIMUM, k=K)
        print(f"await top_k: {top.items[0].obj!r} @ {top.items[0].grade:.4f}")

        # A burst of concurrent queries, each in its own session.
        results = await asyncio.gather(
            *(serving.top_k(MINIMUM, k=K) for _ in range(16))
        )
        assert all(r.items == top.items for r in results)
        print(f"await gather(16): all identical, S={top.stats.sorted_cost} each")

        # Async paging: Section 4's "continue where we left off".
        pages = 0
        async for page in serving.cursor(MINIMUM, page_size=5):
            pages += 1
            if pages >= 3:
                break
        print(f"async for: fetched {pages} pages of {5}")


def main() -> None:
    store = build_store()
    engine = Engine.over(store)
    parallel_batch(engine)
    asyncio.run(serve(engine))


if __name__ == "__main__":
    main()
