"""Multi-feature image search: query by example over three features.

The Section 2 footnote scenario: "selecting an image I (that might be
predominantly red) and asking for other images whose colors are 'close
to' that of image I". We index a synthetic photo collection by colour,
texture and shape, pick a query image, and retrieve its nearest
neighbours under the conjunction of all three feature matches —
comparing every applicable algorithm's access cost on the same query.

Run:  python examples/image_search.py
"""

import random

from repro import (
    FaginA0,
    FaginA0Min,
    MINIMUM,
    NaiveAlgorithm,
    ThresholdAlgorithm,
)
from repro.access.session import MiddlewareSession
from repro.core.query import AtomicQuery
from repro.core.weights import FaginWimmersWeighting
from repro.subsystems import QbicSubsystem

NUM_IMAGES = 5_000
K = 8


def build_collection(seed: int = 3) -> QbicSubsystem:
    rng = random.Random(seed)
    images = [f"img-{i:05d}" for i in range(NUM_IMAGES)]
    return QbicSubsystem(
        "photo-index",
        {
            "color": {img: (rng.random(), rng.random(), rng.random())
                      for img in images},
            "texture": {img: (rng.random(), rng.random())
                        for img in images},
            "shape": {img: (rng.random(),) for img in images},
        },
        bandwidths={"color": 0.3, "texture": 0.3, "shape": 0.25},
    )


def session_for(qbic: QbicSubsystem, example: str) -> MiddlewareSession:
    """One ranked source per feature, all querying by the example image."""
    sources = [
        qbic.evaluate(AtomicQuery(feature, example, "~"))
        for feature in ("color", "texture", "shape")
    ]
    return MiddlewareSession.over_sources(sources, num_objects=NUM_IMAGES)


def main() -> None:
    qbic = build_collection()
    example = "img-01234"
    print(f"query by example: images most similar to {example!r} "
          f"across colour+texture+shape (N={NUM_IMAGES}, k={K})\n")

    algorithms = (
        NaiveAlgorithm(),
        FaginA0(),
        FaginA0Min(),
        ThresholdAlgorithm(),
    )
    reference = None
    print(f"{'algorithm':12s} {'sorted':>8s} {'random':>8s} {'total':>8s}")
    for alg in algorithms:
        result = alg.top_k(session_for(qbic, example), MINIMUM, K)
        stats = result.stats
        print(f"{alg.name:12s} {stats.sorted_cost:8d} "
              f"{stats.random_cost:8d} {stats.sum_cost:8d}")
        if reference is None:
            reference = result
        else:
            assert sorted(result.grades()) == sorted(reference.grades())

    print("\ntop matches (grade = min over the three feature similarities):")
    for rank, (obj, grade) in enumerate(reference.items, start=1):
        marker = "  <- the example itself" if obj == example else ""
        print(f"  {rank}. [{grade:.4f}] {obj}{marker}")

    # Weighted variant ([FW97]): colour matters twice as much as
    # texture, four times as much as shape — still monotone, so A0
    # still applies (Section 4).
    weighted = FaginWimmersWeighting(MINIMUM, [4, 2, 1])
    result = FaginA0().top_k(session_for(qbic, example), weighted, K)
    print("\nsame query, colour-heavy weights (4:2:1) via [FW97]:")
    for rank, (obj, grade) in enumerate(result.items, start=1):
        print(f"  {rank}. [{grade:.4f}] {obj}")


if __name__ == "__main__":
    main()
