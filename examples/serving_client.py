"""End-to-end walkthrough of the repro.serving HTTP API.

Boots a :class:`ServingServer` in-process on an ephemeral port (no
subprocess, no fixed port to collide on), then drives it with plain
``urllib`` the way any HTTP client would:

* ``POST /v1/query`` — one-shot top-k, and the bit-identical check
  against a direct :class:`Engine` call on the same store;
* ``deadline_ms`` — an unmeetable deadline returns a structured 504
  and leaves the engine healthy;
* ``POST /v1/cursor`` + ``GET /v1/cursor/{id}/next`` — Section 4's
  "continue where we left off" paging as a wire protocol;
* ``GET /metrics`` — qps, latency percentiles, engine access totals;
* graceful shutdown with the drain summary.

Run with::

    PYTHONPATH=src python examples/serving_client.py
"""

import asyncio
import json
import urllib.error
import urllib.request

from repro import MINIMUM
from repro.access import ColumnarScoringDatabase
from repro.engine import Engine
from repro.serving import ServingApp, ServingConfig, ServingServer
from repro.workloads import independent_database

N, M, K = 5_000, 3, 10


def call(url: str, payload: dict | None = None, method: str | None = None):
    request = urllib.request.Request(
        url,
        data=None if payload is None else json.dumps(payload).encode(),
        method=method or ("POST" if payload is not None else "GET"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def exercise(base: str, engine: Engine) -> None:
    # One-shot query — and the acceptance check: the HTTP answer is
    # bit-identical to calling the engine directly.
    status, answer = call(f"{base}/v1/query", {"aggregation": "min", "k": K})
    direct = engine.query(MINIMUM).top(K)
    assert status == 200 and [
        (item["obj"], item["grade"]) for item in answer["items"]
    ] == [(obj, grade) for obj, grade in direct.items]
    print(
        f"query: top-{K} via {answer['algorithm']} in "
        f"S={answer['stats']['sorted']} R={answer['stats']['random']} "
        "accesses — bit-identical to the direct engine call"
    )

    # An unmeetable deadline: structured 504, engine still healthy.
    status, envelope = call(
        f"{base}/v1/query",
        {"aggregation": "mean", "k": K, "deadline_ms": 1},
    )
    if status == 504:
        print(f"deadline_ms=1: {envelope['error']['code']} (engine unharmed)")
    else:  # a small store can genuinely answer within 1 ms
        print("deadline_ms=1: store answered inside the deadline")

    # Paging session: open a cursor, pull three pages.
    status, opened = call(
        f"{base}/v1/cursor", {"aggregation": "min", "page_size": 5}
    )
    assert status == 201
    cursor = opened["cursor_id"]
    for _ in range(3):
        status, page = call(f"{base}/v1/cursor/{cursor}/next")
        top = ", ".join(f"{i['obj']}={i['grade']:.3f}" for i in page["items"])
        print(f"cursor page {page['pages_fetched']}: {top}")
    call(f"{base}/v1/cursor/{cursor}", method="DELETE")

    # The metrics plane.
    status, metrics = call(f"{base}/metrics")
    server, eng = metrics["server"], metrics["engine"]
    print(
        f"metrics: {server['requests_total']} requests, "
        f"qps={server['qps']}, p99={server['latency']['p99_ms']} ms, "
        f"engine accesses S={eng['access']['sorted']} "
        f"R={eng['access']['random']}"
    )


async def main() -> None:
    store = ColumnarScoringDatabase.from_scoring_database(
        independent_database(M, N, seed=42)
    )
    engine = Engine.over(store)
    server = ServingServer(
        ServingApp(engine, ServingConfig(port=0))  # ephemeral port
    )
    await server.start()
    base = f"http://127.0.0.1:{server.port}"
    print(f"serving on {base}")

    # urllib is blocking; run the client walkthrough off the loop.
    await asyncio.get_running_loop().run_in_executor(
        None, exercise, base, engine
    )

    summary = await server.shutdown()
    print(f"drained: {json.dumps(summary)}")


if __name__ == "__main__":
    asyncio.run(main())
