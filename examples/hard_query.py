"""The provably hard query Q AND NOT Q (Section 7).

Demonstrates the paper's negative result live: on the self-negated
pair of lists, Fagin's Algorithm — provably optimal for independent
conjuncts — degrades to a full linear scan, because the second list's
order is exactly the reverse of the first's and the prefix intersection
stays empty until depth N/2. Theorem 7.1 shows this is not A0's fault:
*every* correct algorithm pays Theta(N) here.

Run:  python examples/hard_query.py
"""

from repro import FaginA0, MINIMUM, NaiveAlgorithm
from repro.algorithms.hard_query import SelfNegatedScan, hard_query_depth
from repro.workloads import hard_query_database, independent_database

NS = (500, 1000, 2000, 4000)
K = 1


def main() -> None:
    print("Q AND NOT Q, Q fully fuzzy: mu peaks at 1/2 for the object "
          "whose mu_Q is closest to 1/2 (Section 7)\n")
    header = (f"{'N':>6s}  {'A0 hard':>9s}  {'A0 indep':>9s}  "
              f"{'naive':>7s}  {'aware scan':>10s}  {'T = (N+k)/2':>12s}")
    print(header)
    for n in NS:
        hard = hard_query_database(n, seed=n)
        indep = independent_database(2, n, seed=n)

        a0_hard = FaginA0().top_k(hard.session(), MINIMUM, K)
        a0_indep = FaginA0().top_k(indep.session(), MINIMUM, K)
        naive = NaiveAlgorithm().top_k(hard.session(), MINIMUM, K)
        scan = SelfNegatedScan().top_k(hard.session(), MINIMUM, K)

        print(f"{n:6d}  {a0_hard.stats.sum_cost:9d}  "
              f"{a0_indep.stats.sum_cost:9d}  {naive.stats.sum_cost:7d}  "
              f"{scan.stats.sum_cost:10d}  {hard_query_depth(n, K):12d}")

    print("\nreading the table:")
    print("  * 'A0 hard'   — A0 on the self-negated pair: linear in N")
    print("    (its sorted phase must reach depth (N+k)/2 before the")
    print("    first match appears — the reversed permutation keeps the")
    print("    prefix intersection empty until the middle).")
    print("  * 'A0 indep'  — the same algorithm on independent lists of")
    print("    the same size: ~2*sqrt(N), the Theorem 5.3 regime.")
    print("  * 'aware scan' — even knowing list 2 = 1 - list 1 only")
    print("    halves the constant (N instead of 2N): Theorem 7.1's")
    print("    Omega(N) lower bound is about information, not cleverness.")

    n = 2000
    hard = hard_query_database(n, seed=1)
    result = SelfNegatedScan().top_k(hard.session(), MINIMUM, 3)
    print(f"\ntop 3 answers at N={n} (grades approach but never exceed 0.5):")
    for rank, (obj, grade) in enumerate(result.items, start=1):
        print(f"  {rank}. object {obj:6} grade {grade:.6f}")


if __name__ == "__main__":
    main()
