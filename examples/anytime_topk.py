"""Anytime and ε-approximate top-k: certified answers under a deadline.

Two ways to trade latency for certified quality, both from the paper's
framework:

* **ε-approximate** (the theta-approximation of Fagin-Lotem-Naor):
  relax TA's stopping rule to (1+ε)·g_k >= τ and stop earlier. The
  answer comes back with a machine-checkable certificate — every
  returned grade is within a (1+ε) factor of anything excluded.
* **anytime** (Section 4's "continue where we left off"): page the
  exact ranking through a cursor and stop whenever the clock runs out.
  Every page tightens a certified upper bound on everything not yet
  returned, so stopping early yields an exact prefix plus a bound on
  what was missed.

Run:  python examples/anytime_topk.py
"""

import time

from repro import Engine, MINIMUM
from repro.workloads import independent_database

N = 10_000
M = 3
K = 10

EPSILONS = (0.0, 0.01, 0.05, 0.1, 0.2, 0.5)

#: The per-query time budget the anytime walk simulates, seconds.
DEADLINE_S = 0.02


def epsilon_sweep(db) -> None:
    """Access counts across the ε sweep, certificates checked live."""
    truth = db.true_top_k(MINIMUM, K)
    true_kth = truth[-1].grade
    print(f"ε sweep (forced TA, k={K}; true k-th grade {true_kth:.4f}):")
    print(f"  {'ε':>5}  {'accesses':>9}  {'saving':>7}  "
          f"{'k-th grade':>10}  guarantee")
    baseline = None
    for epsilon in EPSILONS:
        result = (
            Engine.over(db)
            .query(MINIMUM)
            .strategy("threshold")
            .epsilon(epsilon)
            .top(K)
        )
        cost = result.stats.sum_cost
        baseline = cost if baseline is None else baseline
        got_kth = result.items[-1].grade
        # The theta-approximation certificate, checked against the
        # oracle: anything excluded is within (1+ε) of what we kept.
        assert (1.0 + epsilon) * got_kth >= true_kth - 1e-12
        print(f"  {epsilon:5.2f}  {cost:9d}  {1 - cost / baseline:7.1%}  "
              f"{got_kth:10.4f}  {result.guarantee.kind}"
              + (f" (τ={result.guarantee.threshold:.4f})"
                 if result.guarantee.threshold is not None else ""))


def anytime_walk(db) -> None:
    """Deadline-driven paging: exact prefix + live remaining bound."""
    print(f"\nanytime cursor under a {DEADLINE_S * 1e3:.0f} ms deadline:")
    cursor = Engine.over(db).query(MINIMUM).cursor()
    deadline = time.perf_counter() + DEADLINE_S
    page_no = 0
    while time.perf_counter() < deadline:
        page = cursor.next_k(K)
        page_no += 1
        bounds = cursor.live_bounds()
        print(f"  page {page_no}: answers {bounds['answers_certified']:3d}  "
              f"last grade {bounds['last_grade']:.4f}  "
              f"remaining ≤ {bounds['remaining_upper']:.4f}")
    certified = cursor.stop()
    guarantee = certified.guarantee
    print(f"  stop(): {certified.answers} answers certified "
          f"({guarantee.kind}); everything unreturned is "
          f"≤ {guarantee.threshold:.4f}")
    # The certificate is checkable against the full oracle: the prefix
    # is the exact top-r and the bound covers the best hidden grade.
    truth = db.true_top_k(MINIMUM, certified.answers + 1)
    assert [i.grade for i in certified.items] == [
        i.grade for i in truth[: certified.answers]
    ]
    assert guarantee.threshold >= truth[certified.answers].grade - 1e-12
    print("  oracle check: prefix exact, bound covers the best hidden grade")


def main() -> None:
    db = independent_database(M, N, seed=42)
    print(f"database: m={M} independent lists over N={N} objects\n")
    epsilon_sweep(db)
    anytime_walk(db)
    print("\nBoth modes return *certified* results: the ε answer carries "
          "its threshold,\nthe anytime prefix its remaining-upper bound — "
          "nothing is silently lossy.")


if __name__ == "__main__":
    main()
