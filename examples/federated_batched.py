"""A cross-subsystem query through the engine's bulk path.

The Garlic scenario of Sections 1-2, at federation scale: a relational
store owns the crisp attributes, a QBIC-like image server owns the
cover art, and a synthetic "recommendations" pod owns a graded score —
three data servers, one query. All three declare
``supports_batched_access``, so the planner negotiates a batch size
for the whole federation and the executor mints every source through
``evaluate_batched``: ranked *pages* per round trip instead of one
object at a time, with access counts identical to the unit protocol
(Section 5's cost model counts objects, not messages).

The demo runs the same query three ways and prints the plan, the
negotiated batch size, the answers, and the per-list access counts:

1. the engine's default bulk path (subsystem-negotiated pages);
2. the engine capped at tiny 64-object pages (a deployment knob,
   ``ExecutionContext.batch_size``);
3. a federation degraded to unit access (batch capability stripped),
   demonstrating the planner's unit fallback.

Run:  python examples/federated_batched.py
"""

import random

from repro.engine import Engine, ExecutionContext
from repro.subsystems import (
    QbicSubsystem,
    RelationalSubsystem,
    SyntheticSubsystem,
)

NUM_ALBUMS = 4_000
K = 5

GENRES = ("rock", "soul", "jazz", "folk")
ARTISTS = ("Beatles", "Aretha Franklin", "Mingus", "Nick Drake")


def build_engine(seed: int = 42, context: ExecutionContext | None = None):
    rng = random.Random(seed)
    albums = list(range(1, NUM_ALBUMS + 1))
    relational = RelationalSubsystem(
        "store-db",
        {
            album: {
                "Artist": rng.choice(ARTISTS),
                "Genre": rng.choice(GENRES),
            }
            for album in albums
        },
    )
    qbic = QbicSubsystem(
        "qbic",
        {
            "AlbumColor": {
                album: (rng.random(), rng.random(), rng.random())
                for album in albums
            }
        },
    )
    recommender = SyntheticSubsystem(
        "reco-pod",
        tables={"Affinity": {album: rng.random() for album in albums}},
    )
    engine = Engine(context)
    engine.register(relational).register(qbic).register(recommender)
    return engine


QUERY = '(AlbumColor ~ "red") AND (Affinity ~ "listener-7")'


def show(label: str, engine: Engine) -> None:
    plan = engine.plan(QUERY)
    answer = engine.query(QUERY).top(K)
    stats = answer.result.stats
    batch = getattr(plan, "batch_size", None)
    transport = f"batched pages of {batch}" if batch else "unit access"
    print(f"--- {label}")
    print(f"    plan: {plan.explain()}")
    print(f"    transport: {transport}")
    for item in answer.items:
        print(f"      album {item.obj:>5}  grade {item.grade:.4f}")
    print(
        f"    cost: S={stats.sorted_cost} sorted + R={stats.random_cost} "
        f"random = {stats.sum_cost} accesses "
        f"(per list S={list(stats.sorted_by_list)})"
    )


def main() -> None:
    print(f"{NUM_ALBUMS} albums across 3 subsystems; top {K} for {QUERY}\n")

    bulk = build_engine()
    show("engine bulk path (negotiated batch size)", bulk)

    capped = build_engine(context=ExecutionContext(batch_size=64))
    show("deployment-capped pages (ExecutionContext.batch_size=64)", capped)

    # Strip batch capability from one member: negotiation falls back to
    # unit access for the whole query — identical answers and counts.
    degraded = build_engine()
    for subsystem in degraded.catalog.subsystems:
        if subsystem.name == "reco-pod":
            subsystem.supports_batched_access = False
    show("degraded federation (one unit-only member)", degraded)

    print(
        "\nNote: all three transports charge identical access counts — "
        "batching changes round trips, never the Section 5 cost model."
    )


if __name__ == "__main__":
    main()
