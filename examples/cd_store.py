"""The paper's running example: the compact-disk store (Section 2).

Federates three simulated subsystems behind the Garlic middleware —

* a relational store holding crisp attributes (Artist, Year, Genre),
* a QBIC-like image engine scoring album-cover colour and shape,
* a text engine scoring free-text blurbs —

and runs the queries the paper discusses, showing for each the physical
strategy the planner chose and the access cost it paid.

Run:  python examples/cd_store.py
"""

from repro import Garlic
from repro.middleware import PlannerOptions, compare_conjunction_modes
from repro.subsystems import QbicSubsystem, RelationalSubsystem, TextSubsystem
from repro.workloads import cd_store


def build_store(num_albums: int = 200) -> tuple[Garlic, dict]:
    albums = cd_store(num_albums, seed=7)
    garlic = Garlic(options=PlannerOptions(selectivity_threshold=0.2))
    garlic.register(
        RelationalSubsystem(
            "store-db",
            {
                a.album_id: {"Artist": a.artist, "Year": a.year, "Genre": a.genre}
                for a in albums
            },
        )
    )
    garlic.register(
        QbicSubsystem(
            "qbic",
            {
                "AlbumColor": {a.album_id: a.cover_rgb for a in albums},
                "Texture": {a.album_id: a.cover_texture for a in albums},
                "Shape": {a.album_id: (a.shape_roundness,) for a in albums},
            },
            named_targets={"Shape": {"round": (1.0,), "square": (0.0,)}},
        )
    )
    garlic.register(
        TextSubsystem(
            "blurbs", {a.album_id: a.blurb for a in albums}, attribute="Blurb"
        )
    )
    return garlic, {a.album_id: a for a in albums}


def show(garlic, catalog, text, k=5):
    print("=" * 72)
    print(f"query: {text}")
    answer = garlic.query(text, k=k)
    print(f"plan:  {answer.plan.explain()}")
    stats = answer.result.stats
    print(f"cost:  {stats.sum_cost} accesses "
          f"({stats.sorted_cost} sorted + {stats.random_cost} random)")
    for rank, (obj, grade) in enumerate(answer.items, start=1):
        album = catalog[obj]
        print(f"  {rank}. [{grade:.3f}] {album.artist} - {album.title} "
              f"({album.year}, {album.genre})")
    print()


def main() -> None:
    garlic, catalog = build_store()

    # The mismatch query of Section 2: crisp conjunct + graded conjunct.
    # The planner picks the filtered strategy of Section 4.
    show(garlic, catalog, '(Artist = "Beatles") AND (AlbumColor ~ "red")')

    # Two graded conjuncts from different features: A0' (Theorem 4.4).
    show(garlic, catalog, '(AlbumColor ~ "red") AND (Shape ~ "round")')

    # The disjunction: algorithm B0, m*k accesses total (Theorem 4.5).
    show(garlic, catalog, '(AlbumColor ~ "blue") OR (Shape ~ "square")')

    # User-weighted conjunction ([FW97]): colour twice as important.
    show(garlic, catalog, 'WEIGHTED(2: AlbumColor ~ "red", 1: Shape ~ "round")')

    # Text retrieval federated alongside everything else.
    show(garlic, catalog, '(Genre = "jazz") AND (Blurb ~ "luminous piano")')

    # Negation: falls back to the naive scan — and Section 7 proves
    # that in the worst case nothing better exists.
    show(garlic, catalog, 'NOT (Genre = "rock") AND (AlbumColor ~ "red")')

    # Section 8: internal vs external conjunction, inside QBIC.
    print("=" * 72)
    print("Section 8: internal vs external conjunction "
          "(QBIC averages; Garlic takes min)")
    comparison = compare_conjunction_modes(
        garlic, '(AlbumColor ~ "red") AND (Texture ~ "cd-0000")', k=3
    )
    print(comparison.summary())


if __name__ == "__main__":
    main()
