"""The paper's running example: the compact-disk store (Section 2).

Federates three simulated subsystems behind the unified Engine —

* a relational store holding crisp attributes (Artist, Year, Genre),
* a QBIC-like image engine scoring album-cover colour and shape,
* a text engine scoring free-text blurbs —

and runs the queries the paper discusses, showing for each the physical
strategy the planner chose and the access cost it paid. A closing batch
re-runs the graded queries through ``engine.run_many``, sharing one
atom-evaluation cache across them.

Run:  python examples/cd_store.py
"""

from repro import Engine, ExecutionContext
from repro.middleware import PlannerOptions, compare_conjunction_modes
from repro.subsystems import QbicSubsystem, RelationalSubsystem, TextSubsystem
from repro.workloads import cd_store


def build_store(num_albums: int = 200) -> tuple[Engine, dict]:
    albums = cd_store(num_albums, seed=7)
    engine = Engine(
        ExecutionContext(planner=PlannerOptions(selectivity_threshold=0.2))
    )
    engine.register(
        RelationalSubsystem(
            "store-db",
            {
                a.album_id: {"Artist": a.artist, "Year": a.year, "Genre": a.genre}
                for a in albums
            },
        )
    )
    engine.register(
        QbicSubsystem(
            "qbic",
            {
                "AlbumColor": {a.album_id: a.cover_rgb for a in albums},
                "Texture": {a.album_id: a.cover_texture for a in albums},
                "Shape": {a.album_id: (a.shape_roundness,) for a in albums},
            },
            named_targets={"Shape": {"round": (1.0,), "square": (0.0,)}},
        )
    )
    engine.register(
        TextSubsystem(
            "blurbs", {a.album_id: a.blurb for a in albums}, attribute="Blurb"
        )
    )
    return engine, {a.album_id: a for a in albums}


def show(engine, catalog, text, k=5):
    print("=" * 72)
    print(f"query: {text}")
    answer = engine.query(text).top(k)
    print(f"plan:  {answer.plan.explain()}")
    stats = answer.result.stats
    print(f"cost:  {stats.sum_cost} accesses "
          f"({stats.sorted_cost} sorted + {stats.random_cost} random)")
    for rank, (obj, grade) in enumerate(answer.items, start=1):
        album = catalog[obj]
        print(f"  {rank}. [{grade:.3f}] {album.artist} - {album.title} "
              f"({album.year}, {album.genre})")
    print()


def main() -> None:
    engine, catalog = build_store()

    # The mismatch query of Section 2: crisp conjunct + graded conjunct.
    # The planner picks the filtered strategy of Section 4.
    show(engine, catalog, '(Artist = "Beatles") AND (AlbumColor ~ "red")')

    # Two graded conjuncts from different features: A0' (Theorem 4.4).
    show(engine, catalog, '(AlbumColor ~ "red") AND (Shape ~ "round")')

    # The disjunction: algorithm B0, m*k accesses total (Theorem 4.5).
    show(engine, catalog, '(AlbumColor ~ "blue") OR (Shape ~ "square")')

    # User-weighted conjunction ([FW97]): colour twice as important.
    show(engine, catalog, 'WEIGHTED(2: AlbumColor ~ "red", 1: Shape ~ "round")')

    # Text retrieval federated alongside everything else.
    show(engine, catalog, '(Genre = "jazz") AND (Blurb ~ "luminous piano")')

    # Negation: falls back to the naive scan — and Section 7 proves
    # that in the worst case nothing better exists.
    show(engine, catalog, 'NOT (Genre = "rock") AND (AlbumColor ~ "red")')

    # Section 8: internal vs external conjunction, inside QBIC.
    print("=" * 72)
    print("Section 8: internal vs external conjunction "
          "(QBIC averages; Garlic takes min)")
    comparison = compare_conjunction_modes(
        engine, '(AlbumColor ~ "red") AND (Texture ~ "cd-0000")', k=3
    )
    print(comparison.summary())

    # Batch execution: the graded queries again, one shared atom cache.
    print("=" * 72)
    batch = engine.run_many(
        [
            '(AlbumColor ~ "red") AND (Shape ~ "round")',
            '(AlbumColor ~ "blue") OR (Shape ~ "square")',
            '(AlbumColor ~ "red") AND (Texture ~ "cd-0000")',
        ],
        k=3,
    )
    print("batch of 3 queries through engine.run_many:")
    print(f"  atom evaluations: {batch.details['atom_evaluations']} "
          f"(reused {batch.details['atom_reuses']} cached)")
    print(f"  total cost: S={batch.total_sorted} + R={batch.total_random} "
          f"= {batch.total_accesses} accesses")


if __name__ == "__main__":
    main()
