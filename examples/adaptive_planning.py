"""Adaptive planning: the plan cache and the measured-history chooser.

Demonstrates the adaptive planning layer end to end on a two-subsystem
federation:

* **plan cache** — the first query of a shape pays the full planning
  pass; every repeat with different constants is a shape lookup plus a
  constant rebind (cold vs cached mint is timed below);
* **calibrated cost model** — wall-clock observations refine the
  abstract access-count model into per-subsystem microseconds,
  surfaced in ``explain()`` and ``metrics_snapshot()``;
* **chooser** — per-shape measured access histories let the engine
  *override* the static planner's pick when the evidence says another
  registry strategy is cheaper, without ever changing answers.

The chooser options here are deliberately aggressive (explore early
and often) so the static -> explore -> override arc fits in a short
script; the library defaults explore far more conservatively.

Run with::

    PYTHONPATH=src python examples/adaptive_planning.py
"""

import time

from repro.core.query import And, AtomicQuery
from repro.engine import Engine, ExecutionContext
from repro.engine.adaptive import AdaptiveOptions
from repro.subsystems import SyntheticSubsystem
from repro.workloads import independent_database

N, M, K = 10_000, 3, 10


def build_engine(context: ExecutionContext | None = None) -> Engine:
    """The m graded lists split across two batch-capable subsystems."""
    db = independent_database(M, N, seed=42)
    tables = [db.graded_set(i).as_dict() for i in range(M)]
    engine = Engine(context)
    engine.register(
        SyntheticSubsystem(
            "pod-a", tables={f"a{i}": tables[i] for i in range(0, M, 2)}
        )
    )
    engine.register(
        SyntheticSubsystem(
            "pod-b", tables={f"a{i}": tables[i] for i in range(1, M, 2)}
        )
    )
    return engine


def conjunction() -> And:
    return And(tuple(AtomicQuery(f"a{i}", None, "~") for i in range(M)))


def plan_cache_demo() -> None:
    print("=== plan cache: cold mint vs cached lookup ===")
    engine = build_engine()
    query = conjunction()

    start = time.perf_counter()
    plan = engine.query(query).plan()
    cold_ms = (time.perf_counter() - start) * 1e3

    rounds = 200
    start = time.perf_counter()
    for _ in range(rounds):
        engine.query(query).plan()
    cached_us = (time.perf_counter() - start) * 1e6 / rounds

    cache = engine.metrics_snapshot()["planner"]["plan_cache"]
    print(f"strategy planned: {type(plan).__name__}")
    print(f"cold plan:   {cold_ms:8.3f} ms  (full planning pass)")
    print(f"cached plan: {cached_us:8.1f} us  (shape lookup + rebind)")
    print(
        f"cache counters: {cache['hits']} hits / {cache['misses']} miss, "
        f"{cache['entries']} entries\n"
    )


def chooser_demo() -> None:
    print("=== chooser: static -> explore -> measured override ===")
    # Aggressive exploration so the arc is visible in 40 queries.
    engine = build_engine(
        ExecutionContext(
            adaptive_options=AdaptiveOptions(
                explore_after=5, explore_every=5, min_trials=2
            )
        )
    )
    static = build_engine(ExecutionContext(adaptive=False))
    query = conjunction()

    expected = [(i.obj, i.grade) for i in static.query(query).top(K).items]
    static_cost = static.query(query).top(K).result.stats.sum_cost

    costs: list[int] = []
    for round_index in range(40):
        answer = engine.query(query).top(K)
        # Adaptivity never changes answers — only how they are found.
        assert [(i.obj, i.grade) for i in answer.items] == expected
        cost = answer.result.stats.sum_cost
        if not costs or cost != costs[-1]:
            # A cost change marks a strategy change: the static pick,
            # an exploration trial, or the measured override settling.
            print(f"query {round_index + 1:>3}  S+R={cost}")
        costs.append(cost)

    chooser = engine.metrics_snapshot()["planner"]["chooser"]
    print(
        f"\nstatic planner's pick costs {static_cost} accesses per "
        f"query; the chooser settled at {costs[-1]} "
        f"({static_cost / costs[-1]:.2f}x cheaper)"
    )
    print(
        f"chooser counters: {chooser['decisions']} decisions, "
        f"{chooser['explorations']} explorations, "
        f"{chooser['overrides']} overrides\n"
    )


def explain_demo() -> None:
    print("=== explain(): the adaptive block ===")
    engine = build_engine()
    query = conjunction()
    engine.query(query).top(K)  # seed cache, calibration and history
    report = engine.query(query).explain()
    lines = report.splitlines()
    start = lines.index("--- adaptive planning ---")
    for line in lines[start:]:
        print(line)
    print()


def main() -> None:
    plan_cache_demo()
    chooser_demo()
    explain_demo()


if __name__ == "__main__":
    main()
