"""E11 — Section 4's "minor improvements": A0' and per-list depths.

"algorithm A0' has better performance than A0, since we do random
access only for the candidates … (whereas algorithm A0' performs
better than algorithm A0 by only a constant factor)." The table splits
sorted vs random accesses per variant: identical sorted phases,
shrinking random phases, identical answers.
"""

from repro.algorithms.fa import FaginA0
from repro.algorithms.fa_min import FaginA0Min
from repro.algorithms.fa_variants import EarlyStopFagin, ShrunkenFagin
from repro.analysis.experiments import measure_costs
from repro.analysis.tables import format_table
from repro.core.tnorms import MINIMUM
from repro.workloads.skeletons import independent_database

from conftest import print_experiment_header

N = 4000
K = 10
VARIANTS = (
    ("A0", FaginA0()),
    ("A0-early-stop", EarlyStopFagin()),
    ("A0-shrunken (per-list T_i)", ShrunkenFagin()),
    ("A0' (candidates)", FaginA0Min()),
)


def test_e11_variant_savings(benchmark, trials):
    print_experiment_header(
        "E11",
        "A0 variants: constant-factor random-access savings, "
        "same sorted phase, same answers (Section 4)",
    )
    def make(seed):
        return independent_database(2, N, seed=seed)

    baseline = None
    rows = []
    for label, alg in VARIANTS:
        summary = measure_costs(make, alg, MINIMUM, K, trials=trials)
        if baseline is None:
            baseline = summary
        rows.append(
            (
                label,
                summary.mean_sorted,
                summary.mean_random,
                summary.mean_sum,
                summary.mean_sum / baseline.mean_sum,
            )
        )
    print(
        format_table(
            ("variant", "mean S", "mean R", "mean S+R", "vs A0"),
            rows,
            title=f"\nN = {N}, k = {K}, m = 2",
        )
    )
    a0_random = rows[0][2]
    shrunken_random = rows[2][2]
    prime_random = rows[3][2]
    assert shrunken_random <= a0_random
    assert prime_random < a0_random  # the A0' headline saving
    # The savings are constant-factor, not asymptotic: sorted costs match.
    assert rows[3][1] == rows[0][1]

    db = independent_database(2, N, seed=0)

    def run():
        return FaginA0Min().top_k(db.session(), MINIMUM, K)

    benchmark(run)
