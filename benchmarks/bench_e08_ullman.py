"""E8 — Section 9: Ullman's algorithm under the two grade regimes.

* Capped regime ("the maximum value of the grades … under A1 is, say,
  0.9" with A2 uniform): expected stop after <= 10 objects, flat in N.
* Uniform regime (both lists uniform — Landau's analysis): expected
  stop Theta(sqrt(N)) — "no better than our algorithm A0".
"""

import statistics

from repro.algorithms.ullman import UllmanAlgorithm
from repro.analysis.fitting import fit_power_law
from repro.analysis.tables import format_table
from repro.core.tnorms import MINIMUM
from repro.workloads.distributions import Capped, Uniform
from repro.workloads.skeletons import independent_database

from conftest import print_experiment_header

NS = (500, 2000, 8000)
TRIALS = 40


def _mean_seen(n, dists):
    seen = []
    for seed in range(TRIALS):
        db = independent_database(
            2, n, seed=seed, distributions=list(dists)
        )
        result = UllmanAlgorithm(stop_rule="paper").top_k(
            db.session(), MINIMUM, 1
        )
        seen.append(result.details["objects_seen"])
    return statistics.fmean(seen)


def test_e08_ullman_regimes(benchmark):
    print_experiment_header(
        "E8",
        "Ullman's algorithm: constant cost when A1 is capped at 0.9; "
        "Theta(sqrt(N)) when both lists are uniform (Section 9)",
    )
    rows, capped_means, uniform_means = [], [], []
    for n in NS:
        capped = _mean_seen(n, (Capped(0.9), Uniform()))
        uniform = _mean_seen(n, (Uniform(), Uniform()))
        capped_means.append(capped)
        uniform_means.append(uniform)
        rows.append((n, capped, uniform, n**0.5))
    print(
        format_table(
            (
                "N",
                "capped regime mean seen",
                "uniform regime mean seen",
                "sqrt(N)",
            ),
            rows,
            title=f"\nobjects seen before stopping (k = 1, {TRIALS} trials)",
        )
    )
    # Capped: expectation <= 10, flat in N.
    assert all(mean <= 25 for mean in capped_means)
    assert max(capped_means) / min(capped_means) < 3.0
    # Uniform: grows like sqrt(N).
    fit = fit_power_law(NS, uniform_means)
    print(f"uniform-regime growth exponent: {fit.exponent:.3f} (Landau: 0.5)")
    assert 0.3 <= fit.exponent <= 0.7

    db = independent_database(
        2, 8000, seed=0, distributions=[Capped(0.9), Uniform()]
    )

    def run():
        db.session()  # fresh cursors per round
        return UllmanAlgorithm(stop_rule="paper").top_k(
            db.session(), MINIMUM, 1
        )

    benchmark(run)
