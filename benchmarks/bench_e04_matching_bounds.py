"""E4 — Theorems 6.4/6.5: matching upper and lower bounds (Theta).

Two checks:

1. the ratio cost / (N^((m-1)/m) k^(1/m)) stays inside a constant band
   across two decades of N — the Theta sandwich;
2. the lower-bound envelope: the fraction of runs with cost below
   theta * bound never exceeds theta^m (plus sampling noise), for a
   grid of theta — Theorem 6.4's probability statement, verbatim.
"""

from repro.algorithms.fa import FaginA0
from repro.analysis.bounds import a0_cost_bound, lower_bound_probability
from repro.analysis.experiments import measure_costs, run_trials
from repro.analysis.tables import format_table
from repro.core.tnorms import MINIMUM
from repro.workloads.skeletons import independent_database

from conftest import print_experiment_header

M = 2
K = 5
NS = (500, 2000, 8000)
THETAS = (0.2, 0.35, 0.5, 0.75)
LB_TRIALS = 120
LB_N = 2000


def test_e04_matching_bounds(benchmark, trials):
    print_experiment_header(
        "E4",
        "Theta(N^((m-1)/m) k^(1/m)): constant-band ratios (upper) and "
        "the theta^m envelope (lower, Theorem 6.4)",
    )
    # --- Theta band -----------------------------------------------------
    rows, ratios = [], []
    for n in NS:
        summary = measure_costs(
            lambda seed, n=n: independent_database(M, n, seed=seed),
            FaginA0(),
            MINIMUM,
            k=K,
            trials=trials,
        )
        ratio = summary.mean_sum / a0_cost_bound(n, M, K)
        ratios.append(ratio)
        rows.append((n, summary.mean_sum, a0_cost_bound(n, M, K), ratio))
    print(
        format_table(
            ("N", "mean S+R", "bound", "cost/bound"),
            rows,
            title=f"\nTheta band (m = {M}, k = {K})",
        )
    )
    band = max(ratios) / min(ratios)
    print(f"band width (max ratio / min ratio): {band:.3f}")
    assert band < 2.0, "cost/bound ratio should be N-independent"

    # --- Lower-bound envelope -------------------------------------------
    results = run_trials(
        lambda seed: independent_database(M, LB_N, seed=seed),
        FaginA0(),
        MINIMUM,
        K,
        trials=LB_TRIALS,
    )
    costs = [r.stats.sum_cost for r in results]
    bound = a0_cost_bound(LB_N, M, K)
    rows = []
    for theta in THETAS:
        frac = sum(c <= theta * bound for c in costs) / len(costs)
        envelope = lower_bound_probability(theta, M)
        rows.append((theta, theta * bound, frac, envelope))
        assert frac <= envelope + 0.08, (
            f"theta={theta}: {frac:.3f} beats the theta^m={envelope:.3f} "
            "envelope"
        )
    print(
        format_table(
            (
                "theta",
                "theta*bound",
                f"Pr[cost <= theta*bound] (n={LB_TRIALS})",
                "theta^m limit",
            ),
            rows,
            title=f"\nLower-bound envelope at N = {LB_N}",
        )
    )

    db = independent_database(M, LB_N, seed=0)

    def run():
        return FaginA0().top_k(db.session(), MINIMUM, K)

    benchmark(run)
