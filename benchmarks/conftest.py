"""Shared helpers for the benchmark harness.

Each ``bench_eNN_*.py`` regenerates one experiment from DESIGN.md's
index: it prints the table EXPERIMENTS.md records (who wins, growth
exponents, crossovers) and registers one representative run with
pytest-benchmark for wall-clock tracking.

All measured runs execute through the unified
:class:`~repro.engine.engine.Engine` —
:func:`repro.analysis.experiments.run_trials` forces each benchmark's
algorithm as the engine strategy, and :func:`engine_top_k` below is the
same path for one-off representative runs — so the harness times the
execution path users actually hit.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.engine.engine import Engine


def print_experiment_header(experiment_id: str, claim: str) -> None:
    """A uniform banner so bench output reads like EXPERIMENTS.md."""
    print()
    print("=" * 72)
    print(f"{experiment_id}: {claim}")
    print("=" * 72)


def engine_top_k(database, aggregation, k, strategy=None):
    """One top-k run through the unified engine.

    ``strategy`` is a registry name, an algorithm instance, or None for
    auto-selection.
    """
    builder = Engine.over(database).query(aggregation)
    if strategy is not None:
        builder = builder.strategy(strategy)
    return builder.top(k)


@pytest.fixture(scope="session")
def trials() -> int:
    """Default number of random-database trials per configuration."""
    return 10
