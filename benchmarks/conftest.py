"""Shared helpers for the benchmark harness.

Each ``bench_eNN_*.py`` regenerates one experiment from DESIGN.md's
index: it prints the table EXPERIMENTS.md records (who wins, growth
exponents, crossovers) and registers one representative run with
pytest-benchmark for wall-clock tracking.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


def print_experiment_header(experiment_id: str, claim: str) -> None:
    """A uniform banner so bench output reads like EXPERIMENTS.md."""
    print()
    print("=" * 72)
    print(f"{experiment_id}: {claim}")
    print("=" * 72)


@pytest.fixture(scope="session")
def trials() -> int:
    """Default number of random-database trials per configuration."""
    return 10
