"""E18 — weighted conjunctions ([FW97], cited in Section 4).

"this algorithm applies also when the user can weight the relative
importance of the conjuncts … since such 'weighted conjunctions' are
also monotone."

Two facts to regenerate: (a) A0's access cost under a weighted
conjunction is identical to the unweighted run (the access pattern is
aggregation-independent), so weighting is free; (b) the *answers*
respond to the weights — as colour's weight grows, the top answers'
colour grades improve at the expense of shape grades.
"""

import statistics

from repro.algorithms.fa import FaginA0
from repro.analysis.tables import format_table
from repro.core.tnorms import MINIMUM
from repro.core.weights import FaginWimmersWeighting
from repro.workloads.skeletons import independent_database

from conftest import print_experiment_header

N = 4000
K = 10
WEIGHT_SPLITS = ((1, 1), (2, 1), (5, 1), (10, 1))


def test_e18_weighted_conjunctions(benchmark, trials):
    print_experiment_header(
        "E18",
        "[FW97] weighted conjunctions: same A0 cost, answers shift "
        "with the weights",
    )
    rows = []
    base_cost = None
    for w_color, w_shape in WEIGHT_SPLITS:
        agg = FaginWimmersWeighting(MINIMUM, [w_color, w_shape])
        costs, color_grades, shape_grades = [], [], []
        for seed in range(trials):
            db = independent_database(2, N, seed=seed)
            result = FaginA0().top_k(db.session(), agg, K)
            costs.append(result.stats.sum_cost)
            for obj, __ in result.items:
                color_grades.append(db.grade(0, obj))
                shape_grades.append(db.grade(1, obj))
        mean_cost = statistics.fmean(costs)
        if base_cost is None:
            base_cost = mean_cost
        rows.append(
            (
                f"{w_color}:{w_shape}",
                mean_cost,
                statistics.fmean(color_grades),
                statistics.fmean(shape_grades),
            )
        )
    print(
        format_table(
            (
                "weights (colour:shape)",
                "A0 S+R",
                "mean colour grade of answers",
                "mean shape grade",
            ),
            rows,
            title=f"\nN = {N}, k = {K}",
        )
    )
    # (a) weighting is free: identical access cost at every split.
    assert all(r[1] == base_cost for r in rows)
    # (b) answers track the weights: colour grades rise monotonically,
    # shape grades fall, as colour's importance grows.
    color_means = [r[2] for r in rows]
    shape_means = [r[3] for r in rows]
    assert color_means == sorted(color_means)
    assert shape_means == sorted(shape_means, reverse=True)
    # The shift is modest in absolute grade terms (the top answers are
    # already near-perfect on both lists), but must be real: the
    # *shape sacrifice* is the visible effect of up-weighting colour.
    assert color_means[-1] > color_means[0]
    assert shape_means[0] - shape_means[-1] > 0.02

    db = independent_database(2, N, seed=0)
    heavy = FaginWimmersWeighting(MINIMUM, [10, 1])

    def run():
        return FaginA0().top_k(db.session(), heavy, K)

    benchmark(run)
