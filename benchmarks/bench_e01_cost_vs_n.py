"""E1 — Theorem 5.3: A0 middleware cost is O(N^((m-1)/m) * k^(1/m)).

Regenerates the paper's headline scaling claim: for independent atomic
queries, A0's cost grows with exponent (m-1)/m in N — square root for
two conjuncts, two-thirds power for three — far below the naive
algorithm's linear growth.
"""

from repro.algorithms.fa import FaginA0
from repro.analysis.bounds import a0_cost_bound
from repro.analysis.experiments import measure_costs
from repro.analysis.fitting import fit_power_law
from repro.analysis.tables import format_table
from repro.core.tnorms import MINIMUM
from repro.workloads.skeletons import independent_database

from conftest import engine_top_k, print_experiment_header

K = 10
NS_M2 = (500, 1000, 2000, 4000, 8000)
NS_M3 = (500, 1000, 2000, 4000)


def _sweep(m, ns, trials):
    rows = []
    costs = []
    for n in ns:
        summary = measure_costs(
            lambda seed, n=n: independent_database(m, n, seed=seed),
            FaginA0(),
            MINIMUM,
            k=K,
            trials=trials,
        )
        bound = a0_cost_bound(n, m, K)
        costs.append(summary.mean_sum)
        rows.append(
            (n, summary.mean_sum, summary.max_sum, bound,
             summary.mean_sum / bound)
        )
    fit = fit_power_law(ns, costs)
    return rows, fit


def test_e01_cost_scaling_in_n(benchmark, trials):
    print_experiment_header(
        "E1",
        "A0 cost ~ N^((m-1)/m) k^(1/m) (Theorem 5.3); naive is linear",
    )
    for m, ns, expected in ((2, NS_M2, 0.5), (3, NS_M3, 2 / 3)):
        rows, fit = _sweep(m, ns, trials)
        print(
            format_table(
                ("N", "mean S+R", "max S+R", "bound", "cost/bound"),
                rows,
                title=f"\nm = {m} conjuncts, k = {K} (independent lists)",
            )
        )
        print(
            f"fitted exponent: {fit.exponent:.3f} "
            f"(paper predicts {expected:.3f}), R^2 = {fit.r_squared:.4f}"
        )
        assert abs(fit.exponent - expected) < 0.15, (
            f"scaling exponent {fit.exponent:.3f} strays from "
            f"{expected:.3f}"
        )

    # Timed representative run: one A0 evaluation at m=2, N=4000,
    # through the engine (the path every user query takes).
    db = independent_database(2, 4000, seed=0)

    def run():
        return engine_top_k(db, MINIMUM, K, strategy=FaginA0())

    result = benchmark(run)
    assert result.k == K
