"""Perf-regression harness: wall-clock + access-count trajectory.

Times FA / TA / NRA / naive over independent *and* correlated
workloads (the FKG-inequality line in PAPERS.md marks positively
associated lists as the adversarial regime for wall-clock, so rho > 0
is benchmarked, not just the Section 5 independence model) at several
(N, m, k) points, on two backings:

* **legacy** — the pre-batching ``MaterializedSource`` path: a session
  minted from the row-oriented :class:`ScoringDatabase` (full O(N*m)
  ranking re-validation per mint), every source wrapped in
  :class:`UnbatchedSource` so every access is a unit access, driven by
  the ``_prepr_*`` reference runners below — faithful replicas of the
  seed-commit hot loops (one object per list per round, per-call
  aggregation validation, full sort of all aggregate grades);
* **columnar** — :class:`ColumnarScoringDatabase` sessions (O(m)
  mint) consumed by the current algorithms through the batched access
  protocol and the vectorized kernels of :mod:`repro.core.kernels`.

Three further lanes extend the trajectory:

* **scalar** (mean-family configs) — the current algorithms with the
  aggregation hidden behind a kernel-less wrapper, isolating what the
  vectorized computation phase alone buys (``kernel_speedup`` =
  scalar_ms / columnar_ms). The compare gate requires >= 1.5x on the
  computation-heavy algorithms (NRA, naive) of every N >= 10k
  mean-family config.
* **federated** configs — queries spanning two batch-capable
  subsystems through the full engine stack (plan, negotiate batch
  size, ``evaluate_batched``); the legacy lane is the same federation
  behind ``UnbatchedSource`` driven by the seed-replica runner.

Each measurement is the median of ``--repeats`` runs of *mint session
+ run algorithm* (minting is part of the path: the pre-batching code
re-sorted/re-validated per session). Every config asserts that the
lanes return identical answers with identical per-list sorted and
random access counts — batches and kernels are implementation detail;
the paper cost model is unchanged.

Output goes to ``BENCH_topk.json``. Modes:

    PYTHONPATH=src python benchmarks/perf_harness.py              # full
    PYTHONPATH=src python benchmarks/perf_harness.py --quick      # CI subset
    PYTHONPATH=src python benchmarks/perf_harness.py --quick \\
        --compare BENCH_topk.json                                 # gate

``--compare BASELINE`` fails (exit 1) when, on any config/algorithm
both files cover, (a) the access counts differ from the baseline's —
a deterministic semantics change — or (b) the columnar-vs-legacy
speedup fell more than 20 % below the baseline's, or (c) a
computation-heavy mean-family config's ``kernel_speedup`` fell below
the 1.5x floor. The speedup ratio is compared rather than raw
milliseconds because both runs of a ratio happen on the *same*
machine, so the gate is meaningful on CI hardware that is slower or
faster than wherever the baseline was committed.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import MINIMUM  # noqa: E402
from repro.access import (  # noqa: E402
    ColumnarScoringDatabase,
    MaterializedSource,
    MiddlewareSession,
    UnbatchedSource,
    tie_break_key,
)
from repro.access.types import GradedItem  # noqa: E402
from repro.algorithms.fa import FaginA0  # noqa: E402
from repro.algorithms.naive import NaiveAlgorithm  # noqa: E402
from repro.algorithms.nra import NoRandomAccessAlgorithm  # noqa: E402
from repro.algorithms.threshold import ThresholdAlgorithm  # noqa: E402
from repro.core.aggregation import AggregationFunction  # noqa: E402
from repro.core.means import ARITHMETIC_MEAN  # noqa: E402
from repro.core.query import And, AtomicQuery  # noqa: E402
from repro.engine import Engine  # noqa: E402
from repro.exceptions import ExhaustedSourceError  # noqa: E402
from repro.subsystems import SyntheticSubsystem  # noqa: E402
from repro.workloads import correlated_database, independent_database  # noqa: E402

#: Tolerated relative drop of the columnar-vs-legacy speedup before the
#: comparison mode fails the run.
REGRESSION_TOLERANCE = 0.20

#: Minimum scalar-vs-vectorized computation-phase speedup the gate
#: demands on the computation-heavy algorithms of every N >= 10k
#: mean-family config (the vectorized-kernels acceptance floor).
KERNEL_SPEEDUP_FLOOR = 1.5

#: The algorithms whose runtime is dominated by the computation phase
#: on mean-family workloads — where the kernel floor is enforced. The
#: naive scan *is* the computation phase (m*N aggregate evaluations by
#: construction); FA/TA/NRA kernel ratios are recorded for visibility
#: but not gated, since their certification/delivery fixes sped the
#: scalar lane up along with the vectorized one.
COMPUTE_HEAVY = ("naive",)

#: Speedup ratios built from medians below this are timer noise on a
#: shared CI runner (a sub-2ms median swings tens of percent run to
#: run); such entries keep the (deterministic) access-count gate but
#: skip the timing gate.
MIN_GATED_MS = 2.0

#: Very large ratios (TA's legacy lane re-sorts all grades every round,
#: making its ratio 15-25x and noise-compounded) are clamped before the
#: 20% comparison: everything above the cap counts as "at the cap", so
#: jitter between 16x and 13x passes while a real collapse toward 1x
#: still fails.
SPEEDUP_CAP = 8.0


# ----------------------------------------------------------------------
# Pre-PR reference runners: the seed-commit implementations, verbatim in
# structure. These define the "legacy" lane — what the library did
# before the batched protocol and columnar backend existed — so the
# reported speedups measure this PR, not a strawman. (The tie key is
# the library-wide one so answers compare equal item for item; it was
# already computed once per item in the seed, so costs are unchanged.)
# ----------------------------------------------------------------------


def _prepr_topk(scored, k):
    items = [GradedItem(obj, grade) for obj, grade in scored.items()]
    items.sort(key=lambda it: (-it.grade, tie_break_key(it.obj)))
    return tuple(items[:k])


def _prepr_fagin(session, aggregation, k):
    m = session.num_lists
    seen, matched = {}, set()
    while len(matched) < k:
        progressed = False
        for i, source in enumerate(session.sources):
            if source.exhausted:
                continue
            item = source.next_sorted()
            progressed = True
            by_list = seen.setdefault(item.obj, {})
            by_list[i] = item.grade
            if len(by_list) == m:
                matched.add(item.obj)
        if not progressed:
            break
    for obj, by_list in seen.items():
        for j in range(m):
            if j not in by_list:
                by_list[j] = session.sources[j].random_access(obj)
    scored = {
        obj: aggregation(*(by_list[j] for j in range(m)))
        for obj, by_list in seen.items()
    }
    return _prepr_topk(scored, k)


def _prepr_threshold(session, aggregation, k):
    m = session.num_lists
    scored, bottoms = {}, [1.0] * m
    while True:
        any_progress = False
        for i, source in enumerate(session.sources):
            if source.exhausted:
                continue
            item = source.next_sorted()
            any_progress = True
            bottoms[i] = item.grade
            if item.obj not in scored:
                grades = [0.0] * m
                grades[i] = item.grade
                for j in range(m):
                    if j != i:
                        grades[j] = session.sources[j].random_access(item.obj)
                scored[item.obj] = aggregation(*grades)
        if not any_progress:
            break
        tau = aggregation(*bottoms)
        if len(scored) >= k:
            if sorted(scored.values(), reverse=True)[k - 1] >= tau:
                break
    return _prepr_topk(scored, k)


def _prepr_nra(session, aggregation, k):
    m = session.num_lists
    seen, bottoms, exact = {}, [1.0] * m, {}
    while True:
        progressed = False
        for i, source in enumerate(session.sources):
            if source.exhausted:
                continue
            item = source.next_sorted()
            progressed = True
            bottoms[i] = item.grade
            by_list = seen.setdefault(item.obj, {})
            by_list[i] = item.grade
            if len(by_list) == m and item.obj not in exact:
                exact[item.obj] = aggregation(*(by_list[j] for j in range(m)))
        if not progressed:
            break
        if len(exact) < k:
            continue
        kth_best = sorted(exact.values(), reverse=True)[k - 1]
        if aggregation(*bottoms) > kth_best:
            continue
        certified = True
        for obj, by_list in seen.items():
            if obj in exact:
                continue
            upper = aggregation(*(by_list.get(j, bottoms[j]) for j in range(m)))
            if upper > kth_best:
                certified = False
                break
        if certified:
            break
    return _prepr_topk(exact, k)


def _prepr_naive(session, aggregation, k):
    m = session.num_lists
    grades = {}
    for i, source in enumerate(session.sources):
        while True:
            try:
                item = source.next_sorted()
            except ExhaustedSourceError:
                break
            grades.setdefault(item.obj, {})[i] = item.grade
    scored = {
        obj: aggregation(*(by_list[i] for i in range(m)))
        for obj, by_list in grades.items()
    }
    return _prepr_topk(scored, k)


ALGORITHMS = {
    "fagin": (FaginA0, _prepr_fagin),
    "threshold": (ThresholdAlgorithm, _prepr_threshold),
    "nra": (NoRandomAccessAlgorithm, _prepr_nra),
    "naive": (NaiveAlgorithm, _prepr_naive),
}

AGGREGATIONS = {"min": MINIMUM, "mean": ARITHMETIC_MEAN}


class ScalarOnly(AggregationFunction):
    """A kernel-less clone of an aggregation (same answers, no numpy).

    Its exact type is not in the kernel registry, so every algorithm
    falls back to the scalar ``evaluate_trusted`` fold — the lane that
    isolates what the vectorized computation phase buys.
    """

    def __init__(self, inner: AggregationFunction) -> None:
        self._inner = inner
        self.name = inner.name  # identical arity errors/messages
        self.arity = inner.arity
        self.monotone = inner.monotone
        self.strict = inner.strict

    def aggregate(self, grades):
        return self._inner.aggregate(grades)

    def evaluate_trusted(self, grades):
        return self._inner.evaluate_trusted(grades)


#: (name, workload, rho, N, m, k, seed, aggregation). The quick set is
#: the CI gate; the full set adds the larger and negatively-correlated
#: points. The ``mean`` entries are the computation-heavy configs the
#: vectorized kernels are gated on; ``federated`` entries span two
#: batch-capable subsystems through the whole engine stack.
QUICK_CONFIGS = [
    ("ind-N2000-m2-k5", "independent", None, 2_000, 2, 5, 101, "min"),
    ("ind-N10000-m3-k10", "independent", None, 10_000, 3, 10, 42, "min"),
    ("corr+0.6-N10000-m3-k10", "correlated", 0.6, 10_000, 3, 10, 42, "min"),
    ("mean-N10000-m3-k10", "independent", None, 10_000, 3, 10, 42, "mean"),
    ("fed-N10000-m3-k10", "federated", None, 10_000, 3, 10, 42, "min"),
]
FULL_CONFIGS = QUICK_CONFIGS + [
    ("corr-0.4-N10000-m2-k10", "correlated", -0.4, 10_000, 2, 10, 42, "min"),
    ("ind-N10000-m3-k100", "independent", None, 10_000, 3, 100, 42, "min"),
    ("ind-N30000-m3-k10", "independent", None, 30_000, 3, 10, 42, "min"),
    ("mean-N30000-m3-k10", "independent", None, 30_000, 3, 10, 42, "mean"),
    ("fed-N30000-m2-k10", "federated", None, 30_000, 2, 10, 7, "min"),
]


def build_database(workload: str, rho, N: int, m: int, seed: int):
    if workload == "independent" or workload == "federated":
        return independent_database(m, N, seed=seed)
    return correlated_database(m, N, rho, seed=seed)


def legacy_session(db) -> MiddlewareSession:
    """The pre-batching path: per-mint O(N*m) sources, unit accesses only."""
    raw = [
        UnbatchedSource(MaterializedSource(f"list-{i}", db.ranking(i)))
        for i in range(db.num_lists)
    ]
    return MiddlewareSession.over_sources(raw, num_objects=db.num_objects)


def median_ms(run, repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        samples.append((time.perf_counter() - start) * 1e3)
    return statistics.median(samples)


def bench_config(entry, repeats: int) -> dict:
    name, workload, rho, N, m, k, seed, agg_name = entry
    if workload == "federated":
        return bench_federated(entry, repeats)
    aggregation = AGGREGATIONS[agg_name]
    scalar_aggregation = ScalarOnly(aggregation)
    db = build_database(workload, rho, N, m, seed)
    columnar = ColumnarScoringDatabase.from_scoring_database(db)
    results: dict[str, dict] = {}
    for algo_name, (algo_cls, prepr_run) in ALGORITHMS.items():
        algorithm = algo_cls()
        # Warm-up runs double as the equivalence check: identical
        # answers, identical per-list access counts on both lanes.
        ref_session = legacy_session(db)
        ref_items = prepr_run(ref_session, aggregation, k)
        ref_stats = ref_session.tracker.snapshot()
        col = algorithm.top_k(columnar.session(), aggregation, k)
        if [(i.obj, i.grade) for i in ref_items] != [
            (i.obj, i.grade) for i in col.items
        ]:
            raise AssertionError(
                f"{name}/{algo_name}: columnar answer differs from legacy"
            )
        if ref_stats != col.stats:
            raise AssertionError(
                f"{name}/{algo_name}: access counts diverge — "
                f"legacy {ref_stats!r} vs columnar {col.stats!r}"
            )
        legacy_ms = median_ms(
            lambda: prepr_run(legacy_session(db), aggregation, k), repeats
        )
        columnar_ms = median_ms(
            lambda: algorithm.top_k(columnar.session(), aggregation, k),
            repeats,
        )
        results[algo_name] = {
            "legacy_ms": round(legacy_ms, 3),
            "columnar_ms": round(columnar_ms, 3),
            "speedup": round(legacy_ms / columnar_ms, 2),
            "sorted_by_list": list(ref_stats.sorted_by_list),
            "random_by_list": list(ref_stats.random_by_list),
            "sorted": ref_stats.sorted_cost,
            "random": ref_stats.random_cost,
            "counts_match": True,
        }
        kernel_note = ""
        if agg_name != "min":
            # Third lane: same algorithms, kernels hidden — what the
            # vectorized computation phase alone is worth. The scalar
            # lane must agree bit for bit before it is timed.
            scal = algorithm.top_k(columnar.session(), scalar_aggregation, k)
            if scal.items != col.items or scal.stats != col.stats:
                raise AssertionError(
                    f"{name}/{algo_name}: scalar lane diverges from kernels"
                )
            scalar_ms = median_ms(
                lambda: algorithm.top_k(
                    columnar.session(), scalar_aggregation, k
                ),
                repeats,
            )
            results[algo_name]["scalar_ms"] = round(scalar_ms, 3)
            results[algo_name]["kernel_speedup"] = round(
                scalar_ms / columnar_ms, 2
            )
            kernel_note = f"   kernel {scalar_ms / columnar_ms:4.2f}x"
        print(
            f"  {algo_name:<10} legacy {legacy_ms:8.2f} ms   "
            f"columnar {columnar_ms:8.2f} ms   "
            f"{legacy_ms / columnar_ms:5.2f}x   "
            f"S={ref_stats.sorted_cost} R={ref_stats.random_cost}"
            f"{kernel_note}"
        )
    return {
        "config": name,
        "workload": workload,
        "rho": rho,
        "N": N,
        "m": m,
        "k": k,
        "seed": seed,
        "aggregation": agg_name,
        "algorithms": results,
    }


def federated_engine(db, m: int) -> Engine:
    """The db's m lists split across two batch-capable subsystems."""
    tables = [db.graded_set(i).as_dict() for i in range(m)]
    engine = Engine()
    engine.register(
        SyntheticSubsystem(
            "pod-a",
            tables={f"a{i}": tables[i] for i in range(0, m, 2)},
        )
    )
    engine.register(
        SyntheticSubsystem(
            "pod-b",
            tables={f"a{i}": tables[i] for i in range(1, m, 2)},
        )
    )
    return engine


def federated_unit_session(engine: Engine, atoms) -> MiddlewareSession:
    """The same federation, one object per round trip (seed behaviour)."""
    catalog = engine.catalog
    raw = [
        UnbatchedSource(catalog.subsystem_for(atom).evaluate(atom))
        for atom in atoms
    ]
    return MiddlewareSession.over_sources(
        raw, num_objects=catalog.num_objects
    )


def bench_federated(entry, repeats: int) -> dict:
    """A query spanning two subsystems: engine bulk path vs unit lane.

    The batched lane is the *entire* current stack — parse nothing,
    but plan (with batch-size negotiation), mint sources through
    ``evaluate_batched``, and run the forced A0 strategy. The legacy
    lane drives the seed-replica runner over the same federation with
    every source behind ``UnbatchedSource``. Answers and per-list
    counts must match exactly.
    """
    name, workload, rho, N, m, k, seed, agg_name = entry
    assert agg_name == "min", "federated configs run the standard AND"
    db = build_database(workload, rho, N, m, seed)
    engine = federated_engine(db, m)
    atoms = [AtomicQuery(f"a{i}", None, "~") for i in range(m)]
    query = And(atoms) if m > 1 else atoms[0]

    def run_batched():
        return engine.query(query).strategy("fagin").top(k)

    # Warm-up + equivalence check against the unit lane.
    answer = run_batched()
    plan = engine.plan(query)
    unit_session = federated_unit_session(engine, atoms)
    ref_items = _prepr_fagin(unit_session, MINIMUM, k)
    ref_stats = unit_session.tracker.snapshot()
    if [(i.obj, i.grade) for i in ref_items] != [
        (i.obj, i.grade) for i in answer.items
    ]:
        raise AssertionError(f"{name}: batched answer differs from unit lane")
    if ref_stats != answer.result.stats:
        raise AssertionError(
            f"{name}: federated access counts diverge — "
            f"unit {ref_stats!r} vs batched {answer.result.stats!r}"
        )

    legacy_ms = median_ms(
        lambda: _prepr_fagin(
            federated_unit_session(engine, atoms), MINIMUM, k
        ),
        repeats,
    )
    batched_ms = median_ms(run_batched, repeats)
    results = {
        "fagin": {
            "legacy_ms": round(legacy_ms, 3),
            "columnar_ms": round(batched_ms, 3),
            "speedup": round(legacy_ms / batched_ms, 2),
            "sorted_by_list": list(ref_stats.sorted_by_list),
            "random_by_list": list(ref_stats.random_by_list),
            "sorted": ref_stats.sorted_cost,
            "random": ref_stats.random_cost,
            "counts_match": True,
        }
    }
    print(
        f"  {'fagin':<10} unit   {legacy_ms:8.2f} ms   "
        f"batched  {batched_ms:8.2f} ms   "
        f"{legacy_ms / batched_ms:5.2f}x   "
        f"S={ref_stats.sorted_cost} R={ref_stats.random_cost}   "
        f"(negotiated batch {plan.batch_size})"
    )
    return {
        "config": name,
        "workload": workload,
        "rho": rho,
        "N": N,
        "m": m,
        "k": k,
        "seed": seed,
        "aggregation": agg_name,
        "subsystems": 2,
        "negotiated_batch_size": plan.batch_size,
        "algorithms": results,
    }


def compare(current: dict, baseline_path: Path) -> list[str]:
    """Regressions of ``current`` against a committed baseline file."""
    baseline = json.loads(baseline_path.read_text())
    base_by_name = {c["config"]: c for c in baseline.get("configs", [])}
    failures: list[str] = []
    for config in current["configs"]:
        base = base_by_name.get(config["config"])
        if base is None:
            continue
        for algo, now in config["algorithms"].items():
            then = base["algorithms"].get(algo)
            if then is None:
                continue
            for field in ("sorted", "random"):
                if now[field] != then[field]:
                    failures.append(
                        f"{config['config']}/{algo}: {field} access count "
                        f"changed {then[field]} -> {now[field]} "
                        "(cost semantics must not drift)"
                    )
            if (
                now["columnar_ms"] < MIN_GATED_MS
                or then["columnar_ms"] < MIN_GATED_MS
            ):
                continue  # sub-millisecond medians gate on counts only
            floor = min(then["speedup"], SPEEDUP_CAP) * (
                1.0 - REGRESSION_TOLERANCE
            )
            if min(now["speedup"], SPEEDUP_CAP) < floor:
                failures.append(
                    f"{config['config']}/{algo}: speedup regressed "
                    f"{then['speedup']}x -> {now['speedup']}x "
                    f"(floor {floor:.2f}x)"
                )
        if config.get("aggregation") == "mean" and config.get("N", 0) >= 10_000:
            # The vectorized-kernels acceptance floor: on computation-
            # heavy mean-family configs the kernel lane must keep
            # beating the scalar lane by at least 1.5x.
            for algo in COMPUTE_HEAVY:
                gain = config["algorithms"].get(algo, {}).get("kernel_speedup")
                if gain is not None and gain < KERNEL_SPEEDUP_FLOOR:
                    failures.append(
                        f"{config['config']}/{algo}: kernel speedup {gain}x "
                        f"below the {KERNEL_SPEEDUP_FLOOR}x floor"
                    )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI subset of the configs"
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="runs per median (default 5)"
    )
    parser.add_argument(
        "--out", default="BENCH_topk.json", help="output JSON path"
    )
    parser.add_argument(
        "--compare",
        metavar="BASELINE",
        help="fail on >20%% speedup regression or any access-count change "
        "vs this baseline JSON",
    )
    args = parser.parse_args(argv)

    baseline_path = Path(args.compare) if args.compare else None
    if baseline_path is not None and not baseline_path.exists():
        print(f"baseline {baseline_path} not found", file=sys.stderr)
        return 2

    configs = QUICK_CONFIGS if args.quick else FULL_CONFIGS
    report = {
        "schema": "bench-topk/v2",
        "generated_by": "benchmarks/perf_harness.py",
        "mode": "quick" if args.quick else "full",
        "repeats": args.repeats,
        "python": sys.version.split()[0],
        "configs": [],
    }
    started = time.perf_counter()
    for entry in configs:
        print(f"{entry[0]} (workload={entry[1]}, rho={entry[2]})")
        report["configs"].append(bench_config(entry, args.repeats))
    report["wall_s"] = round(time.perf_counter() - started, 1)

    failures = []
    if baseline_path is not None:
        failures = compare(report, baseline_path)

    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out} ({report['wall_s']} s)")

    if failures:
        print("\nPERF REGRESSIONS:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    if baseline_path is not None:
        print(f"no regressions vs {baseline_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
