"""Perf-regression harness: wall-clock + access-count trajectory.

Times FA / TA / NRA / naive over independent *and* correlated
workloads (the FKG-inequality line in PAPERS.md marks positively
associated lists as the adversarial regime for wall-clock, so rho > 0
is benchmarked, not just the Section 5 independence model) at several
(N, m, k) points, plus the Section 4 filtered-conjunct strategy over a
crisp + graded federation, on two backings:

* **legacy** — the pre-batching ``MaterializedSource`` path: a session
  minted from the row-oriented :class:`ScoringDatabase` (full O(N*m)
  ranking re-validation per mint), every source wrapped in
  :class:`UnbatchedSource` so every access is a unit access, driven by
  the ``_prepr_*`` reference runners below — faithful replicas of the
  seed-commit hot loops (one object per list per round, per-call
  aggregation validation, full sort of all aggregate grades);
* **columnar** — :class:`ColumnarScoringDatabase` sessions (O(m)
  mint) consumed by the current algorithms through the batched access
  protocol and the vectorized kernels of :mod:`repro.core.kernels`.

Three further lanes extend the trajectory:

* **scalar** (mean-family configs) — the current algorithms with the
  aggregation hidden behind a kernel-less wrapper, isolating what the
  vectorized computation phase alone buys (``kernel_speedup`` =
  scalar_ms / columnar_ms). The compare gate requires >= 1.5x on every
  algorithm a config lists in ``kernel_gated`` (the computation-heavy
  ones: the naive scan on the mean-family configs, TA's warm-up sweep
  on the ``ta-`` config, the filtered strategy's column scoring on the
  ``filtered-`` configs).
* **federated** configs — queries spanning two batch-capable
  subsystems through the full engine stack (plan, negotiate batch
  size, ``evaluate_batched``); the legacy lane is the same federation
  behind ``UnbatchedSource`` driven by the seed-replica runner.
* **filtered** configs — the Section 4 filtered-conjunct strategy
  (crisp relational filter + graded conjuncts): the batched lane pages
  the grade-1 block, bulk-looks-up the survivors and scores them in
  one column sweep; the legacy lane is the pre-PR executor loop (unit
  accesses, one compiled-aggregation call per survivor); the scalar
  lane re-runs the batched lane with the compiled aggregation's column
  plan suppressed.
* **parallel** configs — the concurrent-serving lane:
  ``Engine.run_many(queries, parallel=w)`` over a shared read-only
  columnar store at w = 1, 4, 8 workers, reported as queries/sec. The
  hard gate is *count parity*: the parallel batch must return answers
  and batch-wide S/R bit-identical to the serial ``run_many``
  (parallelism is wall-clock only, never accounting). Throughput
  ratios are recorded for the trajectory; on GIL builds of CPython
  they hover near 1x (the hot loops are pure Python and serialize on
  the interpreter lock — only the numpy kernel sweeps overlap), so
  the speedup itself is gated like every other timing: against the
  committed baseline, not an absolute floor. Free-threaded builds are
  where the shared-store architecture pays wall-clock dividends.
* **sharded** configs (``shard-``) — the multi-process lane:
  ``Engine.over_shards(store, shards=8, processes=P)`` at P = 1, 2,
  4, 8 worker processes over shared-memory columnar shards, against
  the single-store serial run and the inline (``processes=0``)
  sharded reference. Two hard parities gate generation: every pool
  width must return answers identical to the single-store run (the
  threshold-exchange merge is exact), and every width's summed S/R
  ledger must be bit-identical to the inline reference (parallelism
  is wall-clock only, never accounting). The sharded ledger
  legitimately exceeds the single-store one — S shards each probe
  locally before the exchange converges — so the overhead ratio is
  *recorded* per lane, not gated to equality. Unlike the thread
  lane, worker processes dodge the GIL entirely, so the throughput
  ratios are real on stock CPython — *given cores to run on*: the
  >1.5x-at-4-processes acceptance floor is meaningful only on hosts
  with >= 4 CPUs, and a single-core runner (a quota'd CI container)
  physically cannot show process speedup, so the floor is asserted
  by the test suite conditionally on the recorded core count, never
  by ``--compare``. Lane metadata records the interpreter build
  (``sys._is_gil_enabled`` where available) and the schedulable CPU
  count so thread-vs-process ratios are read against the machine
  that produced them.
* **plan** configs (``plan-``) — the adaptive-planning lane: a
  repeated-shape workload (conjunctive at two k bands + disjunctive,
  round-robin, 60 queries per shape) through the engine's shape-keyed
  plan cache, calibrated cost model and measured-history chooser,
  against every *feasible* fixed-strategy replay of the same workload
  (b0 cannot run the conjunctive shapes, fagin-min cannot run the
  disjunctive one — reported as infeasible, never silently skipped).
  Generation-time hard gates: answers identical to the static engine
  on every run, a fresh adaptive replay reproducing the access totals
  bit for bit (deterministic decisions), plan-cache hit rate >=
  ``PLAN_CACHE_HIT_FLOOR``, and adaptive total weighted accesses
  within ``PLAN_GATE_TOLERANCE`` of the best fixed strategy's.
  ``--compare`` gates the recorded access counts like every lane but
  not the wall-clock ratios; a cold-vs-cached plan-mint micro-timing
  rides along for the trajectory.
* **approx** configs (``approx-``) — the certified-approximation
  lane: forced TA under the theta-approximation stopping rule across
  an ε sweep (0 first, as the exact anchor) on independent workloads,
  recording access counts, runtimes and realized k-th-grade error per
  ε. Generation-time hard gates: totals monotone non-increasing in ε
  with a strict saving by ε = 0.5, every run's certificate
  (1+ε)·g_k >= true g_k checked against the full oracle (ε = 0
  bit-identical to it), the exact A0 run's summed cost within a
  generous multiple of the Theorem 5.3 envelope N^((m-1)/m)·k^(1/m)
  (measured tightness ratio recorded), and an anytime cursor's
  remaining-upper bounds capping the oracle's best hidden grade on
  every page. ``--compare`` gates the per-ε access counts, never the
  wall-clock.
* **serving** configs (``serve-``) — written by
  ``benchmarks/load_gen.py`` against a live ``repro.serving`` HTTP
  server, not by this harness. Purely informational: end-to-end
  socket latency is machine noise, so ``--compare`` never gates on
  them, and regenerating this file carries existing serve- lanes
  forward untouched.

``--only PREFIX`` re-runs just the configs whose name starts with
PREFIX (``--only shard-`` after a sharding change); every lane the
filter skips is carried forward from the existing output file, so a
partial re-measure never silently drops the rest of the trajectory.

Each measurement is the median of ``--repeats`` runs of *mint session
+ run algorithm* (minting is part of the path: the pre-batching code
re-sorted/re-validated per session). Every config asserts that the
lanes return identical answers with identical per-list sorted and
random access counts — batches and kernels are implementation detail;
the paper cost model is unchanged.

Output goes to ``BENCH_topk.json``. Modes:

    PYTHONPATH=src python benchmarks/perf_harness.py              # full
    PYTHONPATH=src python benchmarks/perf_harness.py --quick      # CI subset
    PYTHONPATH=src python benchmarks/perf_harness.py --quick \\
        --compare BENCH_topk.json                                 # gate

``--compare BASELINE`` fails (exit 1) when, on any config/algorithm
both files cover, (a) the access counts differ from the baseline's —
a deterministic semantics change — or (b) the columnar-vs-legacy
speedup fell more than 20 % below the baseline's, or (c) a
``kernel_gated`` algorithm's ``kernel_speedup`` fell below the 1.5x
floor. The speedup ratio is compared rather than raw milliseconds
because both runs of a ratio happen on the *same* machine, so the gate
is meaningful on CI hardware that is slower or faster than wherever
the baseline was committed.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import random
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import MINIMUM  # noqa: E402
from repro.access import (  # noqa: E402
    ColumnarScoringDatabase,
    MaterializedSource,
    MiddlewareSession,
    UnbatchedSource,
    tie_break_key,
)
from repro.access.cost import CostTracker  # noqa: E402
from repro.access.source import InstrumentedSource  # noqa: E402
from repro.access.types import GradedItem  # noqa: E402
from repro.algorithms.base import top_k_of  # noqa: E402
from repro.algorithms.fa import FaginA0  # noqa: E402
from repro.algorithms.naive import NaiveAlgorithm  # noqa: E402
from repro.algorithms.nra import NoRandomAccessAlgorithm  # noqa: E402
from repro.algorithms.threshold import ThresholdAlgorithm  # noqa: E402
from repro.core.aggregation import AggregationFunction  # noqa: E402
from repro.core.means import ARITHMETIC_MEAN  # noqa: E402
from repro.core.query import And, AtomicQuery, Or  # noqa: E402
from repro.core.semantics import STANDARD_FUZZY  # noqa: E402
from repro.engine import Engine  # noqa: E402
from repro.engine.adaptive import AdaptiveOptions  # noqa: E402
from repro.engine.context import ExecutionContext  # noqa: E402
from repro.exceptions import ExhaustedSourceError  # noqa: E402
from repro.middleware.compile import CompiledQueryAggregation  # noqa: E402
from repro.middleware.executor import Executor  # noqa: E402
from repro.middleware.plan import FilteredConjunctPlan  # noqa: E402
from repro.middleware.planner import Planner, PlannerOptions  # noqa: E402
from repro.subsystems import RelationalSubsystem, SyntheticSubsystem  # noqa: E402
from repro.workloads import correlated_database, independent_database  # noqa: E402

#: Tolerated relative drop of the columnar-vs-legacy speedup before the
#: comparison mode fails the run.
REGRESSION_TOLERANCE = 0.20

#: Minimum scalar-vs-vectorized computation-phase speedup the gate
#: demands on the computation-heavy algorithms of every N >= 10k
#: mean-family config (the vectorized-kernels acceptance floor).
KERNEL_SPEEDUP_FLOOR = 1.5

#: Per-config ``kernel_gated`` lists name the algorithms whose
#: ``kernel_speedup`` the compare mode holds to the floor — the ones
#: whose runtime the computation phase dominates on that workload. The
#: naive scan is gated on the mean-family configs (m*N aggregate
#: evaluations by construction); TA is gated on the ``ta-`` config
#: (large-k warm-up, where the pending sweep runs through the kernel
#: registry); the filtered strategy on the ``filtered-`` configs (all
#: of S scored in one column sweep). Other ratios are recorded for
#: visibility but not gated.

#: Speedup ratios built from medians below this are timer noise on a
#: shared CI runner (a sub-2ms median swings tens of percent run to
#: run); such entries keep the (deterministic) access-count gate but
#: skip the timing gate.
MIN_GATED_MS = 2.0

#: Very large ratios (TA's legacy lane re-sorts all grades every round,
#: making its ratio 15-25x and noise-compounded) are clamped before the
#: 20% comparison: everything above the cap counts as "at the cap", so
#: jitter between 16x and 13x passes while a real collapse toward 1x
#: still fails.
SPEEDUP_CAP = 8.0


# ----------------------------------------------------------------------
# Pre-PR reference runners: the seed-commit implementations, verbatim in
# structure. These define the "legacy" lane — what the library did
# before the batched protocol and columnar backend existed — so the
# reported speedups measure this PR, not a strawman. (The tie key is
# the library-wide one so answers compare equal item for item; it was
# already computed once per item in the seed, so costs are unchanged.)
# ----------------------------------------------------------------------


def _prepr_topk(scored, k):
    items = [GradedItem(obj, grade) for obj, grade in scored.items()]
    items.sort(key=lambda it: (-it.grade, tie_break_key(it.obj)))
    return tuple(items[:k])


def _prepr_fagin(session, aggregation, k):
    m = session.num_lists
    seen, matched = {}, set()
    while len(matched) < k:
        progressed = False
        for i, source in enumerate(session.sources):
            if source.exhausted:
                continue
            item = source.next_sorted()
            progressed = True
            by_list = seen.setdefault(item.obj, {})
            by_list[i] = item.grade
            if len(by_list) == m:
                matched.add(item.obj)
        if not progressed:
            break
    for obj, by_list in seen.items():
        for j in range(m):
            if j not in by_list:
                by_list[j] = session.sources[j].random_access(obj)
    scored = {
        obj: aggregation(*(by_list[j] for j in range(m)))
        for obj, by_list in seen.items()
    }
    return _prepr_topk(scored, k)


def _prepr_threshold(session, aggregation, k):
    m = session.num_lists
    scored, bottoms = {}, [1.0] * m
    while True:
        any_progress = False
        for i, source in enumerate(session.sources):
            if source.exhausted:
                continue
            item = source.next_sorted()
            any_progress = True
            bottoms[i] = item.grade
            if item.obj not in scored:
                grades = [0.0] * m
                grades[i] = item.grade
                for j in range(m):
                    if j != i:
                        grades[j] = session.sources[j].random_access(item.obj)
                scored[item.obj] = aggregation(*grades)
        if not any_progress:
            break
        tau = aggregation(*bottoms)
        if len(scored) >= k:
            if sorted(scored.values(), reverse=True)[k - 1] >= tau:
                break
    return _prepr_topk(scored, k)


def _prepr_nra(session, aggregation, k):
    m = session.num_lists
    seen, bottoms, exact = {}, [1.0] * m, {}
    while True:
        progressed = False
        for i, source in enumerate(session.sources):
            if source.exhausted:
                continue
            item = source.next_sorted()
            progressed = True
            bottoms[i] = item.grade
            by_list = seen.setdefault(item.obj, {})
            by_list[i] = item.grade
            if len(by_list) == m and item.obj not in exact:
                exact[item.obj] = aggregation(*(by_list[j] for j in range(m)))
        if not progressed:
            break
        if len(exact) < k:
            continue
        kth_best = sorted(exact.values(), reverse=True)[k - 1]
        if aggregation(*bottoms) > kth_best:
            continue
        certified = True
        for obj, by_list in seen.items():
            if obj in exact:
                continue
            upper = aggregation(*(by_list.get(j, bottoms[j]) for j in range(m)))
            if upper > kth_best:
                certified = False
                break
        if certified:
            break
    return _prepr_topk(exact, k)


def _prepr_naive(session, aggregation, k):
    m = session.num_lists
    grades = {}
    for i, source in enumerate(session.sources):
        while True:
            try:
                item = source.next_sorted()
            except ExhaustedSourceError:
                break
            grades.setdefault(item.obj, {})[i] = item.grade
    scored = {
        obj: aggregation(*(by_list[i] for i in range(m)))
        for obj, by_list in grades.items()
    }
    return _prepr_topk(scored, k)


ALGORITHMS = {
    "fagin": (FaginA0, _prepr_fagin),
    "threshold": (ThresholdAlgorithm, _prepr_threshold),
    "nra": (NoRandomAccessAlgorithm, _prepr_nra),
    "naive": (NaiveAlgorithm, _prepr_naive),
}

def _tree_aggregation() -> CompiledQueryAggregation:
    """A compiled Boolean tree — A1 AND (A2 OR A3) — the federated
    query shape whose scalar evaluation is a per-object dict build +
    semantics recursion, and whose bulk evaluation is the compiled
    column plan (min/max kernels composed). The ``ta-tree`` config
    gates TA's pending sweep on it: with cheap flat means TA stays
    access-dominated, but real query trees make the computation phase
    the bottleneck the kernel registry removes."""
    from repro.core.query import Or, atom

    return CompiledQueryAggregation(
        And((atom("A1"), Or((atom("A2"), atom("A3"))))), STANDARD_FUZZY
    )


AGGREGATIONS = {
    "min": MINIMUM,
    "mean": ARITHMETIC_MEAN,
    "tree": _tree_aggregation(),  # arity 3: m=3 configs only
}


class ScalarOnly(AggregationFunction):
    """A kernel-less clone of an aggregation (same answers, no numpy).

    Its exact type is not in the kernel registry, so every algorithm
    falls back to the scalar ``evaluate_trusted`` fold — the lane that
    isolates what the vectorized computation phase buys.
    """

    def __init__(self, inner: AggregationFunction) -> None:
        self._inner = inner
        self.name = inner.name  # identical arity errors/messages
        self.arity = inner.arity
        self.monotone = inner.monotone
        self.strict = inner.strict

    def aggregate(self, grades):
        return self._inner.aggregate(grades)

    def evaluate_trusted(self, grades):
        return self._inner.evaluate_trusted(grades)


def cfg(
    name,
    workload,
    rho,
    N,
    m,
    k,
    seed,
    aggregation,
    algos=None,
    kernel_gated=(),
):
    """One benchmark point.

    ``rho`` is the list correlation for ``correlated`` workloads and
    the crisp conjunct's selectivity for ``filtered`` ones. ``algos``
    restricts which algorithms run (None = all four); ``kernel_gated``
    names the algorithms whose kernel_speedup the compare mode gates.
    """
    return {
        "name": name,
        "workload": workload,
        "rho": rho,
        "N": N,
        "m": m,
        "k": k,
        "seed": seed,
        "aggregation": aggregation,
        "algos": algos,
        "kernel_gated": tuple(kernel_gated),
    }


#: The quick set is the CI gate; the full set adds the larger and
#: negatively-correlated points. The ``mean`` entries are the
#: computation-heavy configs the vectorized kernels are gated on;
#: ``federated`` entries span two batch-capable subsystems through the
#: whole engine stack; the ``ta-`` entry is the Threshold Algorithm's
#: kernel-gated point (aligned lists + large k, so the warm-up's
#: pending sweep dominates); ``filtered-`` entries run the Section 4
#: filtered-conjunct strategy over a crisp + graded federation.
#: Worker counts the parallel lane sweeps (1 is the pool-of-one
#: sanity point; 8 is the acceptance point).
PARALLEL_WORKERS = (1, 4, 8)

#: Queries per parallel batch (mixed aggregations, shared store).
PARALLEL_BATCH = 16

#: Shard count for the ``shard-`` configs: fixed at 8 so every pool
#: width in SHARD_WORKERS divides it and each worker owns S/P shards.
SHARD_COUNT = 8

#: Worker-process pool widths the sharded lane sweeps. 1 is the
#: pool-of-one sanity point (all of the IPC overhead, none of the
#: parallelism); 4 is the acceptance point (>1.5x over 1 process on
#: the N=30k config).
SHARD_WORKERS = (1, 2, 4, 8)

#: Queries per sharded batch (mixed min/mean, shared segments).
SHARD_BATCH = 16

#: Process speedup the shard- configs' acceptance floor demands at 4
#: workers (N >= 30k configs, hosts with >= 4 schedulable CPUs only —
#: the lane records *why* whenever the floor is not enforced).
SHARD_SPEEDUP_FLOOR = 1.5

#: Minimum CPUs for the shard speedup floor to be physically meaningful.
SHARD_FLOOR_MIN_CPUS = 4

#: Queries per shape the plan- configs replay (the repeated-shape
#: serving segment the plan cache and chooser are judged on).
PLAN_QUERIES_PER_SHAPE = 60

#: The ε sweep the approx- configs run: 0 is the exact anchor (gated
#: bit-identical to the plain engine), the rest trade certified slack
#: for accesses under the theta-approximation stopping rule.
APPROX_EPSILONS = (0.0, 0.01, 0.05, 0.1, 0.2, 0.5)

#: Generous multiple of the Theorem 5.3 envelope N^((m-1)/m)*k^(1/m)
#: the measured exact A0 *sum* cost (sorted + random, all lists) must
#: stay under, per m^2. The theorem bounds the sorted depth per list
#: by c times the envelope with arbitrarily high probability; the
#: random phase adds at most (m-1) accesses per seen object, so a
#: ceiling of 4*m^2 envelopes absorbs both phases plus the constant c
#: — loose by design, since the point of the gate is catching
#: asymptotic regressions, not shaving constants. The *measured*
#: tightness ratio is recorded in the lane JSON for the trajectory.
APPROX_TIGHTNESS_FACTOR = 4.0

#: Pages the approx- configs' anytime cursor walks while checking that
#: every reported remaining-upper bound really caps the best grade the
#: full oracle says is still hidden.
APPROX_CURSOR_PAGES = 4

#: The plan- lane's hard gate: the adaptive engine's total weighted
#: accesses must not exceed the best feasible fixed strategy's total
#: by more than this factor (exploration overhead must stay in the
#: noise; converging to the winner must not be undone by trials).
PLAN_GATE_TOLERANCE = 1.02

#: The plan- lane's second hard gate: on the repeated-shape segment,
#: at least this fraction of plans must come from the cache.
PLAN_CACHE_HIT_FLOOR = 0.90


def interpreter_info() -> dict:
    """Build facts that explain the concurrency lanes' throughput.

    A free-threaded CPython overlaps the pure-Python hot loops the
    GIL build serialises, so thread-lane (``par-``) ratios are only
    comparable within one interpreter flavour; the process lane
    (``shard-``) dodges the GIL either way. Recorded as lane metadata,
    never gated.
    """
    probe = getattr(sys, "_is_gil_enabled", None)
    gil_enabled = bool(probe()) if callable(probe) else True
    if hasattr(os, "sched_getaffinity"):
        cpus = len(os.sched_getaffinity(0))
    else:  # pragma: no cover - non-Linux fallback
        cpus = os.cpu_count() or 1
    return {
        "implementation": sys.implementation.name,
        "version": sys.version.split()[0],
        "gil_enabled": gil_enabled,
        "free_threading": not gil_enabled,
        "cpus": cpus,
    }

QUICK_CONFIGS = [
    cfg("ind-N2000-m2-k5", "independent", None, 2_000, 2, 5, 101, "min"),
    cfg("ind-N10000-m3-k10", "independent", None, 10_000, 3, 10, 42, "min"),
    cfg("corr+0.6-N10000-m3-k10", "correlated", 0.6, 10_000, 3, 10, 42, "min"),
    cfg(
        "mean-N10000-m3-k10", "independent", None, 10_000, 3, 10, 42, "mean",
        kernel_gated=("naive",),
    ),
    cfg("fed-N10000-m3-k10", "federated", None, 10_000, 3, 10, 42, "min"),
    cfg(
        "ta-tree-corr0.99-N10000-m3-k3000", "correlated", 0.99, 10_000, 3,
        3_000, 42, "tree", algos=("threshold",), kernel_gated=("threshold",),
    ),
    cfg(
        "filtered-N20000-sel0.3-m3-k10", "filtered", 0.3, 20_000, 3, 10, 42,
        "min", kernel_gated=("filtered",),
    ),
    cfg("par-N10000-m3-k10", "parallel", None, 10_000, 3, 10, 42, "mixed"),
    cfg("shard-N10000-m3-k10", "sharded", None, 10_000, 3, 10, 42, "mixed"),
    cfg("plan-N10000-m3-kmix", "plan", None, 10_000, 3, 10, 42, "mixed"),
    cfg("approx-N10000-m2-k10", "approx", None, 10_000, 2, 10, 42, "min"),
    cfg("approx-N10000-m3-k10", "approx", None, 10_000, 3, 10, 42, "min"),
]
FULL_CONFIGS = QUICK_CONFIGS + [
    cfg("corr-0.4-N10000-m2-k10", "correlated", -0.4, 10_000, 2, 10, 42, "min"),
    cfg("ind-N10000-m3-k100", "independent", None, 10_000, 3, 100, 42, "min"),
    cfg("ind-N30000-m3-k10", "independent", None, 30_000, 3, 10, 42, "min"),
    cfg(
        "mean-N30000-m3-k10", "independent", None, 30_000, 3, 10, 42, "mean",
        kernel_gated=("naive",),
    ),
    cfg("fed-N30000-m2-k10", "federated", None, 30_000, 2, 10, 7, "min"),
    cfg(
        "filtered-N50000-sel0.2-m2-k10", "filtered", 0.2, 50_000, 2, 10, 7,
        "min", kernel_gated=("filtered",),
    ),
    cfg("par-N30000-m3-k10", "parallel", None, 30_000, 3, 10, 7, "mixed"),
    cfg("shard-N30000-m3-k10", "sharded", None, 30_000, 3, 10, 7, "mixed"),
]


def build_database(workload: str, rho, N: int, m: int, seed: int):
    if workload in ("independent", "federated", "approx"):
        return independent_database(m, N, seed=seed)
    return correlated_database(m, N, rho, seed=seed)


def legacy_session(db) -> MiddlewareSession:
    """The pre-batching path: per-mint O(N*m) sources, unit accesses only."""
    raw = [
        UnbatchedSource(MaterializedSource(f"list-{i}", db.ranking(i)))
        for i in range(db.num_lists)
    ]
    return MiddlewareSession.over_sources(raw, num_objects=db.num_objects)


def median_ms(run, repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        samples.append((time.perf_counter() - start) * 1e3)
    return statistics.median(samples)


def bench_config(entry, repeats: int) -> dict:
    name = entry["name"]
    workload = entry["workload"]
    rho, N, m, k = entry["rho"], entry["N"], entry["m"], entry["k"]
    seed, agg_name = entry["seed"], entry["aggregation"]
    if workload == "federated":
        return bench_federated(entry, repeats)
    if workload == "filtered":
        return bench_filtered(entry, repeats)
    if workload == "parallel":
        return bench_parallel(entry, repeats)
    if workload == "sharded":
        return bench_sharded(entry, repeats)
    if workload == "plan":
        return bench_plan(entry, repeats)
    if workload == "approx":
        return bench_approx(entry, repeats)
    aggregation = AGGREGATIONS[agg_name]
    scalar_aggregation = ScalarOnly(aggregation)
    db = build_database(workload, rho, N, m, seed)
    columnar = ColumnarScoringDatabase.from_scoring_database(db)
    results: dict[str, dict] = {}
    selected = entry["algos"] or tuple(ALGORITHMS)
    for algo_name in selected:
        algo_cls, prepr_run = ALGORITHMS[algo_name]
        algorithm = algo_cls()
        # Warm-up runs double as the equivalence check: identical
        # answers, identical per-list access counts on both lanes.
        ref_session = legacy_session(db)
        ref_items = prepr_run(ref_session, aggregation, k)
        ref_stats = ref_session.tracker.snapshot()
        col = algorithm.top_k(columnar.session(), aggregation, k)
        if [(i.obj, i.grade) for i in ref_items] != [
            (i.obj, i.grade) for i in col.items
        ]:
            raise AssertionError(
                f"{name}/{algo_name}: columnar answer differs from legacy"
            )
        if ref_stats != col.stats:
            raise AssertionError(
                f"{name}/{algo_name}: access counts diverge — "
                f"legacy {ref_stats!r} vs columnar {col.stats!r}"
            )
        legacy_ms = median_ms(
            lambda: prepr_run(legacy_session(db), aggregation, k), repeats
        )
        columnar_ms = median_ms(
            lambda: algorithm.top_k(columnar.session(), aggregation, k),
            repeats,
        )
        results[algo_name] = {
            "legacy_ms": round(legacy_ms, 3),
            "columnar_ms": round(columnar_ms, 3),
            "speedup": round(legacy_ms / columnar_ms, 2),
            "sorted_by_list": list(ref_stats.sorted_by_list),
            "random_by_list": list(ref_stats.random_by_list),
            "sorted": ref_stats.sorted_cost,
            "random": ref_stats.random_cost,
            "counts_match": True,
        }
        kernel_note = ""
        if agg_name != "min":
            # Third lane: same algorithms, kernels hidden — what the
            # vectorized computation phase alone is worth. The scalar
            # lane must agree bit for bit before it is timed.
            scal = algorithm.top_k(columnar.session(), scalar_aggregation, k)
            if scal.items != col.items or scal.stats != col.stats:
                raise AssertionError(
                    f"{name}/{algo_name}: scalar lane diverges from kernels"
                )
            scalar_ms = median_ms(
                lambda: algorithm.top_k(
                    columnar.session(), scalar_aggregation, k
                ),
                repeats,
            )
            results[algo_name]["scalar_ms"] = round(scalar_ms, 3)
            results[algo_name]["kernel_speedup"] = round(
                scalar_ms / columnar_ms, 2
            )
            kernel_note = f"   kernel {scalar_ms / columnar_ms:4.2f}x"
        print(
            f"  {algo_name:<10} legacy {legacy_ms:8.2f} ms   "
            f"columnar {columnar_ms:8.2f} ms   "
            f"{legacy_ms / columnar_ms:5.2f}x   "
            f"S={ref_stats.sorted_cost} R={ref_stats.random_cost}"
            f"{kernel_note}"
        )
    return {
        "config": name,
        "workload": workload,
        "rho": rho,
        "N": N,
        "m": m,
        "k": k,
        "seed": seed,
        "aggregation": agg_name,
        "kernel_gated": list(entry["kernel_gated"]),
        "algorithms": results,
    }


def federated_engine(
    db, m: int, context: ExecutionContext | None = None
) -> Engine:
    """The db's m lists split across two batch-capable subsystems."""
    tables = [db.graded_set(i).as_dict() for i in range(m)]
    engine = Engine(context)
    engine.register(
        SyntheticSubsystem(
            "pod-a",
            tables={f"a{i}": tables[i] for i in range(0, m, 2)},
        )
    )
    engine.register(
        SyntheticSubsystem(
            "pod-b",
            tables={f"a{i}": tables[i] for i in range(1, m, 2)},
        )
    )
    return engine


def federated_unit_session(engine: Engine, atoms) -> MiddlewareSession:
    """The same federation, one object per round trip (seed behaviour)."""
    catalog = engine.catalog
    raw = [
        UnbatchedSource(catalog.subsystem_for(atom).evaluate(atom))
        for atom in atoms
    ]
    return MiddlewareSession.over_sources(
        raw, num_objects=catalog.num_objects
    )


def bench_federated(entry, repeats: int) -> dict:
    """A query spanning two subsystems: engine bulk path vs unit lane.

    The batched lane is the *entire* current stack — parse nothing,
    but plan (with batch-size negotiation), mint sources through
    ``evaluate_batched``, and run the forced A0 strategy. The legacy
    lane drives the seed-replica runner over the same federation with
    every source behind ``UnbatchedSource``. Answers and per-list
    counts must match exactly.
    """
    name, workload = entry["name"], entry["workload"]
    rho, N, m, k = entry["rho"], entry["N"], entry["m"], entry["k"]
    seed, agg_name = entry["seed"], entry["aggregation"]
    assert agg_name == "min", "federated configs run the standard AND"
    db = build_database(workload, rho, N, m, seed)
    engine = federated_engine(db, m)
    atoms = [AtomicQuery(f"a{i}", None, "~") for i in range(m)]
    query = And(atoms) if m > 1 else atoms[0]

    def run_batched():
        return engine.query(query).strategy("fagin").top(k)

    # Warm-up + equivalence check against the unit lane.
    answer = run_batched()
    plan = engine.plan(query)
    unit_session = federated_unit_session(engine, atoms)
    ref_items = _prepr_fagin(unit_session, MINIMUM, k)
    ref_stats = unit_session.tracker.snapshot()
    if [(i.obj, i.grade) for i in ref_items] != [
        (i.obj, i.grade) for i in answer.items
    ]:
        raise AssertionError(f"{name}: batched answer differs from unit lane")
    if ref_stats != answer.result.stats:
        raise AssertionError(
            f"{name}: federated access counts diverge — "
            f"unit {ref_stats!r} vs batched {answer.result.stats!r}"
        )

    legacy_ms = median_ms(
        lambda: _prepr_fagin(
            federated_unit_session(engine, atoms), MINIMUM, k
        ),
        repeats,
    )
    batched_ms = median_ms(run_batched, repeats)
    results = {
        "fagin": {
            "legacy_ms": round(legacy_ms, 3),
            "columnar_ms": round(batched_ms, 3),
            "speedup": round(legacy_ms / batched_ms, 2),
            "sorted_by_list": list(ref_stats.sorted_by_list),
            "random_by_list": list(ref_stats.random_by_list),
            "sorted": ref_stats.sorted_cost,
            "random": ref_stats.random_cost,
            "counts_match": True,
        }
    }
    print(
        f"  {'fagin':<10} unit   {legacy_ms:8.2f} ms   "
        f"batched  {batched_ms:8.2f} ms   "
        f"{legacy_ms / batched_ms:5.2f}x   "
        f"S={ref_stats.sorted_cost} R={ref_stats.random_cost}   "
        f"(negotiated batch {plan.batch_size})"
    )
    return {
        "config": name,
        "workload": workload,
        "rho": rho,
        "N": N,
        "m": m,
        "k": k,
        "seed": seed,
        "aggregation": agg_name,
        "subsystems": 2,
        "negotiated_batch_size": plan.batch_size,
        "kernel_gated": list(entry["kernel_gated"]),
        "algorithms": results,
    }


# ----------------------------------------------------------------------
# The parallel configs: concurrent serving off one shared read-only
# columnar store — run_many(parallel=w) vs the serial batch.
# ----------------------------------------------------------------------


def bench_parallel(entry, repeats: int) -> dict:
    """Throughput of ``run_many(parallel=w)`` at w in PARALLEL_WORKERS.

    Every worker count must return answers and batch totals
    bit-identical to the serial batch (the count-parity gate); the
    timing numbers are queries/sec over a mixed-aggregation batch of
    PARALLEL_BATCH members against one shared columnar store.
    """
    name = entry["name"]
    N, m, k, seed = entry["N"], entry["m"], entry["k"], entry["seed"]
    db = ColumnarScoringDatabase.from_scoring_database(
        independent_database(m, N, seed=seed)
    )
    engine = Engine.over(db)
    specs = [
        (MINIMUM, ARITHMETIC_MEAN)[i % 2] for i in range(PARALLEL_BATCH)
    ]

    serial = engine.run_many(specs, k=k)
    serial_answers = [[(i.obj, i.grade) for i in a.items] for a in serial]
    serial_ms = median_ms(lambda: engine.run_many(specs, k=k), repeats)
    serial_qps = len(specs) / (serial_ms / 1e3)

    results: dict[str, dict] = {}
    for workers in PARALLEL_WORKERS:
        batch = engine.run_many(specs, k=k, parallel=workers)
        answers = [[(i.obj, i.grade) for i in a.items] for a in batch]
        if answers != serial_answers:
            raise AssertionError(
                f"{name}: parallel={workers} answers differ from serial"
            )
        if (batch.total_sorted, batch.total_random) != (
            serial.total_sorted,
            serial.total_random,
        ):
            raise AssertionError(
                f"{name}: parallel={workers} batch ledger diverges — "
                f"serial S={serial.total_sorted}/R={serial.total_random} "
                f"vs S={batch.total_sorted}/R={batch.total_random}"
            )
        par_ms = median_ms(
            lambda w=workers: engine.run_many(specs, k=k, parallel=w),
            repeats,
        )
        qps = len(specs) / (par_ms / 1e3)
        results[f"workers-{workers}"] = {
            # The serial lane is this lane's "legacy"; keeping the
            # standard field names lets the compare gate cover it.
            "legacy_ms": round(serial_ms, 3),
            "columnar_ms": round(par_ms, 3),
            "speedup": round(serial_ms / par_ms, 2),
            "queries_per_s": round(qps, 1),
            "serial_queries_per_s": round(serial_qps, 1),
            "sorted": serial.total_sorted,
            "random": serial.total_random,
            "counts_match": True,
        }
        print(
            f"  {'workers-' + str(workers):<10} serial {serial_ms:8.2f} ms   "
            f"parallel {par_ms:8.2f} ms   "
            f"{serial_ms / par_ms:5.2f}x   "
            f"{qps:8.1f} q/s   "
            f"S={serial.total_sorted} R={serial.total_random}"
        )
    return {
        "config": name,
        "workload": entry["workload"],
        "rho": entry["rho"],
        "N": N,
        "m": m,
        "k": k,
        "seed": seed,
        "aggregation": entry["aggregation"],
        "batch_queries": len(specs),
        "interpreter": interpreter_info(),
        "kernel_gated": list(entry["kernel_gated"]),
        "algorithms": results,
    }


# ----------------------------------------------------------------------
# The sharded configs: multi-process execution over shared-memory
# columnar shards with the threshold-exchange merge.
# ----------------------------------------------------------------------


def bench_sharded(entry, repeats: int) -> dict:
    """Throughput of ``Engine.over_shards`` at P in SHARD_WORKERS.

    Two hard parities per pool width, checked before anything is
    timed:

    * answers bit-identical to the single-store ``Engine.over`` run —
      the threshold-exchange merge is exact, at every width;
    * the batch's summed S/R ledger bit-identical to the inline
      ``processes=0`` reference — same shards, same merge, no pools —
      so parallelism is provably wall-clock only.

    The sharded ledger exceeds the single-store one by construction
    (S shards each probe locally before the exchange converges), so
    that ratio is recorded as ``ledger_overhead``, never gated to
    equality. Timing: queries/sec over a SHARD_BATCH mixed min/mean
    batch; ``speedup`` is relative to the 1-process pool (same IPC
    machinery, no parallelism), which is what the N=30k acceptance
    floor of >1.5x at 4 processes reads — on hosts with >= 4 CPUs
    (the recorded ``interpreter.cpus``); a single-core runner cannot
    show process speedup and is not asked to.
    """
    name = entry["name"]
    N, m, k, seed = entry["N"], entry["m"], entry["k"], entry["seed"]
    store = ColumnarScoringDatabase.from_scoring_database(
        independent_database(m, N, seed=seed)
    )
    single = Engine.over(store)
    specs = [(MINIMUM, ARITHMETIC_MEAN)[i % 2] for i in range(SHARD_BATCH)]
    serial = single.run_many(specs, k=k)
    serial_answers = [[(i.obj, i.grade) for i in a.items] for a in serial]
    single_ms = median_ms(lambda: single.run_many(specs, k=k), repeats)
    single_qps = len(specs) / (single_ms / 1e3)

    # The accounting reference: shards without pools.
    inline_engine = Engine.over_shards(store, shards=SHARD_COUNT, processes=0)
    try:
        inline = inline_engine.run_many(specs, k=k)
        if [
            [(i.obj, i.grade) for i in a.items] for a in inline
        ] != serial_answers:
            raise AssertionError(
                f"{name}: inline sharded answers differ from single-store"
            )
        inline_ledger = (inline.total_sorted, inline.total_random)
    finally:
        inline_engine.close()

    results: dict[str, dict] = {}
    p1_ms: float | None = None
    for workers in SHARD_WORKERS:
        engine = Engine.over_shards(
            store, shards=SHARD_COUNT, processes=workers
        )
        try:
            batch = engine.run_many(specs, k=k)
            answers = [[(i.obj, i.grade) for i in a.items] for a in batch]
            if answers != serial_answers:
                raise AssertionError(
                    f"{name}: processes={workers} answers differ from "
                    "single-store"
                )
            if (batch.total_sorted, batch.total_random) != inline_ledger:
                raise AssertionError(
                    f"{name}: processes={workers} ledger diverges — inline "
                    f"S={inline_ledger[0]}/R={inline_ledger[1]} vs "
                    f"S={batch.total_sorted}/R={batch.total_random}"
                )
            par_ms = median_ms(
                lambda: engine.run_many(specs, k=k), repeats
            )
        finally:
            engine.close()
        if p1_ms is None:
            p1_ms = par_ms
        qps = len(specs) / (par_ms / 1e3)
        results[f"processes-{workers}"] = {
            # The 1-process pool is this lane's "legacy": identical
            # IPC machinery, no parallelism — so speedup reads pool
            # scaling, not serialization overhead.
            "legacy_ms": round(p1_ms, 3),
            "columnar_ms": round(par_ms, 3),
            "speedup": round(p1_ms / par_ms, 2),
            "queries_per_s": round(qps, 1),
            "single_store_ms": round(single_ms, 3),
            "single_store_queries_per_s": round(single_qps, 1),
            "sorted": batch.total_sorted,
            "random": batch.total_random,
            "counts_match": True,
        }
        print(
            f"  {'processes-' + str(workers):<12} 1-proc {p1_ms:8.2f} ms   "
            f"P={workers} {par_ms:8.2f} ms   "
            f"{p1_ms / par_ms:5.2f}x   "
            f"{qps:8.1f} q/s   "
            f"S={batch.total_sorted} R={batch.total_random}"
        )
    serial_total = serial.total_sorted + serial.total_random

    # The acceptance floor: >SHARD_SPEEDUP_FLOOR at 4 processes on the
    # N>=30k config — but only where it is physically meaningful. The
    # lane always records whether the floor was enforced and, when it
    # was not, exactly why, so a waived gate is visible in the JSON
    # rather than silently indistinguishable from a passed one.
    interpreter = interpreter_info()
    four_proc = results.get("processes-4", {}).get("speedup")
    if interpreter["cpus"] < SHARD_FLOOR_MIN_CPUS:
        speedup_gate = {
            "enforced": False,
            "reason": (
                f"host has {interpreter['cpus']} schedulable CPU(s); "
                f"the {SHARD_SPEEDUP_FLOOR}x floor needs >= "
                f"{SHARD_FLOOR_MIN_CPUS}"
            ),
        }
        print(
            f"  NOTE: shard speedup floor NOT enforced — "
            f"{speedup_gate['reason']}"
        )
    elif N < 30_000:
        speedup_gate = {
            "enforced": False,
            "reason": (
                f"N={N} below the 30k acceptance config; floor applies "
                "to N>=30k only"
            ),
        }
    else:
        speedup_gate = {
            "enforced": True,
            "floor": SHARD_SPEEDUP_FLOOR,
            "processes_4_speedup": four_proc,
        }
        if four_proc is None or four_proc < SHARD_SPEEDUP_FLOOR:
            raise AssertionError(
                f"{name}: processes-4 speedup {four_proc} below the "
                f"{SHARD_SPEEDUP_FLOOR}x acceptance floor on "
                f"{interpreter['cpus']} CPUs"
            )
    return {
        "config": name,
        "workload": entry["workload"],
        "rho": entry["rho"],
        "N": N,
        "m": m,
        "k": k,
        "seed": seed,
        "aggregation": entry["aggregation"],
        "shards": SHARD_COUNT,
        "batch_queries": len(specs),
        "single_store_sorted": serial.total_sorted,
        "single_store_random": serial.total_random,
        "ledger_overhead": round(
            (inline_ledger[0] + inline_ledger[1]) / serial_total, 3
        ),
        "speedup_gate": speedup_gate,
        "interpreter": interpreter,
        "kernel_gated": list(entry["kernel_gated"]),
        "algorithms": results,
    }


# ----------------------------------------------------------------------
# The plan configs: the adaptive planning layer (shape-keyed plan cache
# + measured-history chooser) on a repeated-shape serving workload.
# ----------------------------------------------------------------------

#: Chooser tuning for the plan- configs: a serving deployment that has
#: warmed up, not the conservative library default — exploration starts
#: after 5 repeats of a shape and recurs every 10th, so the measured
#: ledger converges inside the 60-query segment.
PLAN_ADAPTIVE_OPTIONS = {
    "explore_after": 5,
    "explore_every": 10,
    "min_trials": 2,
}

#: The fixed-strategy replays the adaptive engine is gated against.
#: Only strategies capable of every shape in the workload qualify as
#: "the best fixed choice"; b0 cannot run the conjunctive shapes and
#: fagin-min cannot run the disjunctive one, so an infeasible replay
#: is reported and excluded rather than silently skipped.
PLAN_FIXED_STRATEGIES = ("nra", "fagin", "threshold", "naive")


def plan_shapes(m: int, k: int):
    """The three repeated query shapes of a plan- config's workload.

    A conjunctive shape at two k bands plus a disjunctive shape: no
    single registry strategy is best (or even capable) across all
    three, so matching the best *fixed* choice requires the adaptive
    layer to steer per shape.
    """

    def graded_atoms():
        return tuple(AtomicQuery(f"a{i}", None, "~") for i in range(m))

    return (
        (f"and-k{k}", And(graded_atoms()), k),
        (f"or-k{k}", Or(graded_atoms()), k),
        (f"and-k{10 * k}", And(graded_atoms()), 10 * k),
    )


def bench_plan(entry, repeats: int) -> dict:
    """The adaptive planning lane: telemetry-steered vs best fixed.

    The workload interleaves PLAN_QUERIES_PER_SHAPE repetitions of
    three query shapes (deterministic round-robin) against a federated
    catalog engine. Four runs are compared:

    * **adaptive** — the engine as shipped: shape-keyed plan cache,
      calibrated cost model, measured-history chooser (with the
      warmed-up serving options above);
    * **fixed-NAME** — the same engine with adaptive planning off and
      NAME forced on every query, for each feasible registry strategy.

    Hard gates, checked at generation time like the parallel lane's
    parities:

    * every run returns answers item-identical to the static
      auto-selected engine (adaptivity never changes results);
    * a second fresh adaptive pass reproduces the first's access
      totals bit for bit (decisions are deterministic functions of the
      query sequence — the module's determinism contract);
    * the plan-cache hit rate on the repeated-shape segment is at
      least PLAN_CACHE_HIT_FLOOR;
    * the adaptive run's total weighted accesses stay within
      PLAN_GATE_TOLERANCE of the best feasible fixed strategy's total
      (in practice it *beats* every fixed choice: the chooser learns
      NRA for the conjunctive shapes while B0 serves the disjunctive
      one — no fixed strategy can do both).

    Wall-clock is one full-workload pass per run (the totals are
    access-deterministic; timing is informational, like the other
    concurrency lanes), plus a cold-vs-cached plan-mint microbenchmark
    showing the cache turns planner work into an O(1) lookup.
    """
    name = entry["name"]
    N, m, k, seed = entry["N"], entry["m"], entry["k"], entry["seed"]
    db = build_database("independent", None, N, m, seed)
    shapes = plan_shapes(m, k)
    workload = [
        spec for _ in range(PLAN_QUERIES_PER_SHAPE) for spec in shapes
    ]

    def adaptive_context() -> ExecutionContext:
        return ExecutionContext(
            adaptive_options=AdaptiveOptions(**PLAN_ADAPTIVE_OPTIONS)
        )

    def run_workload(engine: Engine, strategy: str | None = None):
        total_s = total_r = 0
        answers = []
        start = time.perf_counter()
        for _, query, kk in workload:
            builder = engine.query(query)
            if strategy is not None:
                builder.strategy(strategy).adaptive(False)
            answer = builder.top(kk)
            stats = answer.result.stats
            total_s += stats.sorted_cost
            total_r += stats.random_cost
            answers.append([(i.obj, i.grade) for i in answer.items])
        elapsed_ms = (time.perf_counter() - start) * 1e3
        return answers, (total_s, total_r), elapsed_ms

    # The answer oracle: the static auto-selected engine.
    ref_answers, static_totals, static_ms = run_workload(
        federated_engine(db, m, ExecutionContext(adaptive=False))
    )

    engine = federated_engine(db, m, adaptive_context())
    answers, totals, adaptive_ms = run_workload(engine)
    if answers != ref_answers:
        raise AssertionError(
            f"{name}: adaptive answers differ from the static engine's"
        )
    # Determinism: a fresh engine replaying the same sequence must
    # reproduce every access count (counter-based exploration, no RNG).
    answers_again, totals_again, _ = run_workload(
        federated_engine(db, m, adaptive_context())
    )
    if totals_again != totals or answers_again != answers:
        raise AssertionError(
            f"{name}: adaptive replay is nondeterministic — "
            f"{totals} vs {totals_again}"
        )

    planner_metrics = engine.metrics_snapshot()["planner"]
    cache = planner_metrics["plan_cache"]
    lookups = cache["hits"] + cache["misses"]
    hit_rate = cache["hits"] / lookups if lookups else 0.0
    if hit_rate < PLAN_CACHE_HIT_FLOOR:
        raise AssertionError(
            f"{name}: plan-cache hit rate {hit_rate:.3f} below the "
            f"{PLAN_CACHE_HIT_FLOOR} floor ({cache})"
        )

    fixed: dict[str, tuple[tuple[int, int], float]] = {}
    for strategy in PLAN_FIXED_STRATEGIES:
        try:
            f_answers, f_totals, f_ms = run_workload(
                federated_engine(db, m, ExecutionContext(adaptive=False)),
                strategy,
            )
        except Exception as exc:
            print(
                f"  fixed-{strategy}: infeasible on this workload "
                f"({type(exc).__name__}) — excluded from the gate"
            )
            continue
        if f_answers != ref_answers:
            raise AssertionError(
                f"{name}: fixed {strategy!r} answers differ from static"
            )
        fixed[strategy] = (f_totals, f_ms)
    if not fixed:
        raise AssertionError(f"{name}: no feasible fixed strategy to gate on")

    adaptive_total = sum(totals)
    best_name = min(fixed, key=lambda s: sum(fixed[s][0]))
    best_totals, best_ms = fixed[best_name]
    best_total = sum(best_totals)
    if adaptive_total > PLAN_GATE_TOLERANCE * best_total:
        raise AssertionError(
            f"{name}: adaptive total {adaptive_total} accesses exceeds "
            f"best fixed ({best_name!r}, {best_total}) by more than "
            f"{PLAN_GATE_TOLERANCE}x"
        )

    # Cold vs cached plan minting on a fresh engine: the hot path's
    # planner work is one shape lookup, not a planning pass.
    probe = federated_engine(db, m, adaptive_context())
    _, cold_query, _ = shapes[0]
    start = time.perf_counter()
    probe.query(cold_query).plan()
    cold_plan_ms = (time.perf_counter() - start) * 1e3
    cached_rounds = 200
    start = time.perf_counter()
    for _ in range(cached_rounds):
        probe.query(cold_query).plan()
    cached_plan_us = (time.perf_counter() - start) * 1e6 / cached_rounds

    results = {
        "adaptive": {
            # The best fixed replay is this lane's "legacy": what a
            # statically-pinned deployment would have spent.
            "legacy_ms": round(best_ms, 3),
            "columnar_ms": round(adaptive_ms, 3),
            "speedup": round(best_ms / adaptive_ms, 2),
            "sorted": totals[0],
            "random": totals[1],
            "accesses_vs_best_fixed": round(adaptive_total / best_total, 3),
            "counts_match": True,
        }
    }
    for strategy, ((s, r), ms) in fixed.items():
        results[f"fixed-{strategy}"] = {
            "legacy_ms": round(ms, 3),
            "columnar_ms": round(ms, 3),
            "speedup": 1.0,
            "sorted": s,
            "random": r,
            "counts_match": True,
        }
    print(
        f"  {'adaptive':<16} {adaptive_ms:8.2f} ms   "
        f"S+R={adaptive_total}   hit rate {hit_rate:.3f}   "
        f"explorations {planner_metrics['chooser']['explorations']}   "
        f"overrides {planner_metrics['chooser']['overrides']}"
    )
    for strategy, ((s, r), ms) in sorted(
        fixed.items(), key=lambda kv: sum(kv[1][0])
    ):
        marker = "  <- best fixed" if strategy == best_name else ""
        print(
            f"  {'fixed-' + strategy:<16} {ms:8.2f} ms   "
            f"S+R={s + r}{marker}"
        )
    print(
        f"  {'plan mint':<16} cold {cold_plan_ms:6.3f} ms   "
        f"cached {cached_plan_us:6.1f} us/plan"
    )
    calibration = planner_metrics["calibration"].get("__all__", {})
    return {
        "config": name,
        "workload": entry["workload"],
        "rho": entry["rho"],
        "N": N,
        "m": m,
        "k": k,
        "seed": seed,
        "aggregation": entry["aggregation"],
        "queries": len(workload),
        "shapes": [label for label, _, _ in shapes],
        "adaptive_options": dict(PLAN_ADAPTIVE_OPTIONS),
        "best_fixed": best_name,
        "plan_cache": cache,
        "plan_cache_hit_rate": round(hit_rate, 4),
        "chooser": planner_metrics["chooser"],
        "calibration_global": calibration,
        "cold_plan_ms": round(cold_plan_ms, 3),
        "cached_plan_us": round(cached_plan_us, 2),
        "static_auto_ms": round(static_ms, 3),
        "static_auto_sorted": static_totals[0],
        "static_auto_random": static_totals[1],
        "interpreter": interpreter_info(),
        "kernel_gated": list(entry["kernel_gated"]),
        "algorithms": results,
    }


# ----------------------------------------------------------------------
# The filtered-conjunct configs: Section 4's crisp-filter strategy over
# a relational + synthetic federation.
# ----------------------------------------------------------------------


def _prepr_filtered(catalog, plan, k, compiled):
    """The pre-batching ``Executor._run_filtered``, verbatim in
    structure: unit sources, one sorted access at a time off the crisp
    stream, per-object random access, one validating compiled-
    aggregation call per survivor. Returns (items, stats)."""
    all_atoms = compiled.atoms
    tracker = CostTracker(len(plan.filter_atoms) + len(plan.graded_atoms))
    sources = {}
    for index, atom in enumerate(plan.filter_atoms + plan.graded_atoms):
        raw = UnbatchedSource(catalog.subsystem_for(atom).evaluate(atom))
        sources[atom] = InstrumentedSource(raw, tracker, index)
    survivors = None
    for atom in plan.filter_atoms:
        source = sources[atom]
        matches = set()
        while not source.exhausted:
            item = source.next_sorted()
            if item.grade >= 1.0:
                matches.add(item.obj)
            else:
                break
        survivors = matches if survivors is None else (survivors & matches)
        if not survivors:
            break
    scored = {}
    for obj in survivors:
        grades = []
        for atom in all_atoms:
            if atom in plan.filter_atoms:
                grades.append(1.0)
            else:
                grades.append(sources[atom].random_access(obj))
        scored[obj] = compiled(*grades)
    items = tuple(top_k_of(scored, min(k, len(scored))))
    return items, tracker.snapshot()


def filtered_setup(entry):
    """Catalog, executor, and the three plan lanes for a filtered config."""
    selectivity, N, m, seed = (
        entry["rho"], entry["N"], entry["m"], entry["seed"],
    )
    rng = random.Random(seed)
    objs = list(range(N))
    matches = int(selectivity * N)
    from repro.middleware.catalog import Catalog

    catalog = Catalog()
    catalog.register(
        RelationalSubsystem(
            "rel",
            {
                o: {"Artist": "hit" if o < matches else f"a{o % 97}"}
                for o in objs
            },
        )
    )
    catalog.register(
        SyntheticSubsystem(
            "syn",
            tables={
                f"g{i}": {o: rng.random() for o in objs}
                for i in range(m - 1)
            },
        )
    )
    query = And(
        (
            AtomicQuery("Artist", "hit", "="),
            *(AtomicQuery(f"g{i}", None, "~") for i in range(m - 1)),
        )
    )
    planner = Planner(
        catalog, options=PlannerOptions(selectivity_threshold=1.0)
    )
    plan = planner.plan(query)
    assert isinstance(plan, FilteredConjunctPlan), plan.explain()
    assert plan.batch_size is not None, "federation must negotiate batching"
    scalar_plan = dataclasses.replace(
        plan,
        aggregation=CompiledQueryAggregation(
            plan.query, STANDARD_FUZZY, vectorize=False
        ),
    )
    return catalog, Executor(catalog, STANDARD_FUZZY), plan, scalar_plan


def bench_filtered(entry, repeats: int) -> dict:
    """The filtered-conjunct strategy: batched + column-swept vs the
    pre-PR unit loop, with a kernel-less scalar lane in between.

    All three lanes must return identical items with identical
    per-list access counts — paging the crisp block and bulk random
    access change round trips, never the Section 5 accounting.
    """
    name, k = entry["name"], entry["k"]
    catalog, executor, plan, scalar_plan = filtered_setup(entry)

    # Warm-up + equivalence across all three lanes.
    batched = executor.execute(plan, k)
    scalar = executor.execute(scalar_plan, k)
    ref_items, ref_stats = _prepr_filtered(
        catalog, plan, k, scalar_plan.aggregation
    )
    if [(i.obj, i.grade) for i in ref_items] != [
        (i.obj, i.grade) for i in batched.items
    ]:
        raise AssertionError(f"{name}: batched answer differs from legacy")
    if ref_stats != batched.result.stats:
        raise AssertionError(
            f"{name}: filtered access counts diverge — "
            f"legacy {ref_stats!r} vs batched {batched.result.stats!r}"
        )
    if scalar.items != batched.items or scalar.result.stats != batched.result.stats:
        raise AssertionError(f"{name}: scalar lane diverges from kernels")

    legacy_ms = median_ms(
        lambda: _prepr_filtered(catalog, plan, k, scalar_plan.aggregation),
        repeats,
    )
    columnar_ms = median_ms(lambda: executor.execute(plan, k), repeats)
    scalar_ms = median_ms(lambda: executor.execute(scalar_plan, k), repeats)
    stats = batched.result.stats
    results = {
        "filtered": {
            "legacy_ms": round(legacy_ms, 3),
            "columnar_ms": round(columnar_ms, 3),
            "speedup": round(legacy_ms / columnar_ms, 2),
            "scalar_ms": round(scalar_ms, 3),
            "kernel_speedup": round(scalar_ms / columnar_ms, 2),
            "sorted_by_list": list(stats.sorted_by_list),
            "random_by_list": list(stats.random_by_list),
            "sorted": stats.sorted_cost,
            "random": stats.random_cost,
            "counts_match": True,
        }
    }
    print(
        f"  {'filtered':<10} legacy {legacy_ms:8.2f} ms   "
        f"batched  {columnar_ms:8.2f} ms   "
        f"{legacy_ms / columnar_ms:5.2f}x   "
        f"S={stats.sorted_cost} R={stats.random_cost}   "
        f"kernel {scalar_ms / columnar_ms:4.2f}x   "
        f"(|S|={batched.result.details['filter_set_size']}, "
        f"batch {plan.batch_size})"
    )
    return {
        "config": name,
        "workload": entry["workload"],
        "rho": entry["rho"],
        "N": entry["N"],
        "m": entry["m"],
        "k": k,
        "seed": entry["seed"],
        "aggregation": entry["aggregation"],
        "negotiated_batch_size": plan.batch_size,
        "kernel_gated": list(entry["kernel_gated"]),
        "algorithms": results,
    }


# ----------------------------------------------------------------------
# The approx- configs: the theta-approximation accuracy/access-count
# frontier plus the Theorem 5.3 envelope check on the exact anchor.
# ----------------------------------------------------------------------


def bench_approx(entry, repeats: int) -> dict:
    """Accuracy vs access count across the ε sweep, on independent lists.

    Three generation-time hard gates:

    * **monotone savings** — forced-TA access totals must be
      non-increasing in ε, with a strict saving by ε = 0.5 (more slack
      can only stop the threshold test earlier);
    * **certified accuracy** — every run's k-th grade must satisfy the
      theta-approximation certificate (1+ε)·g_k >= true g_k against the
      full oracle, with the ε = 0 run bit-identical to the truth;
    * **Theorem 5.3 envelope** — the exact A0 run's summed middleware
      cost must stay under a generous multiple of N^((m-1)/m)·k^(1/m)
      (the measured tightness ratio is recorded for the trajectory),
      and every remaining-upper bound an anytime cursor reports must
      cap the best grade the oracle says is still hidden.

    ``--compare`` gates the per-ε access counts (deterministic) and
    never the wall-clock — the sweep's runtimes are recorded for the
    accuracy-vs-cost trajectory plot only.
    """
    from repro.analysis.bounds import a0_cost_bound

    name = entry["name"]
    N, m, k = entry["N"], entry["m"], entry["k"]
    seed, agg_name = entry["seed"], entry["aggregation"]
    assert agg_name == "min", "approx configs run the standard AND"
    db = build_database(entry["workload"], entry["rho"], N, m, seed)
    columnar = ColumnarScoringDatabase.from_scoring_database(db)
    truth_full = db.true_top_k(MINIMUM, N)
    truth = truth_full[:k]
    true_kth = truth[-1].grade

    def run(epsilon: float):
        return (
            Engine.over(columnar)
            .query(MINIMUM)
            .strategy("threshold")
            .epsilon(epsilon)
            .top(k)
        )

    results: dict[str, dict] = {}
    totals = []
    for epsilon in APPROX_EPSILONS:
        result = run(epsilon)
        got_kth = result.items[-1].grade
        if (1.0 + epsilon) * got_kth < true_kth - 1e-12:
            raise AssertionError(
                f"{name}: eps={epsilon} broke its certificate — "
                f"(1+eps)*{got_kth} < true kth {true_kth}"
            )
        if epsilon == 0.0:
            if [(i.obj, i.grade) for i in result.items] != [
                (i.obj, i.grade) for i in truth
            ]:
                raise AssertionError(
                    f"{name}: eps=0 answers differ from the oracle"
                )
            assert result.guarantee.kind == "exact"
        ms = median_ms(lambda: run(epsilon), repeats)
        stats = result.stats
        totals.append(stats.sum_cost)
        lane = f"eps-{epsilon:g}"
        results[lane] = {
            "epsilon": epsilon,
            "columnar_ms": round(ms, 3),
            "sorted_by_list": list(stats.sorted_by_list),
            "random_by_list": list(stats.random_by_list),
            "sorted": stats.sorted_cost,
            "random": stats.random_cost,
            "kth_grade": got_kth,
            "kth_error": round(
                (true_kth - got_kth) / true_kth if true_kth else 0.0, 6
            ),
            "access_saving": round(1.0 - stats.sum_cost / totals[0], 4),
            "guarantee": result.guarantee.as_dict(),
        }
        print(
            f"  {lane:<10} {ms:8.2f} ms   "
            f"S={stats.sorted_cost} R={stats.random_cost}   "
            f"saving {results[lane]['access_saving']:6.1%}   "
            f"kth {got_kth:.4f} ({result.guarantee.kind})"
        )
    if totals != sorted(totals, reverse=True):
        raise AssertionError(
            f"{name}: access totals not monotone in eps — {totals}"
        )
    if totals[-1] >= totals[0]:
        raise AssertionError(
            f"{name}: eps=0.5 saved nothing ({totals[0]} -> {totals[-1]})"
        )

    # The Theorem 5.3 envelope on the exact anchor, measured on A0
    # itself (the algorithm the theorem is about).
    exact_a0 = (
        Engine.over(columnar).query(MINIMUM).strategy("fagin").top(k)
    )
    envelope = a0_cost_bound(N, m, k)
    tightness = exact_a0.stats.sum_cost / envelope
    ceiling = APPROX_TIGHTNESS_FACTOR * m * m
    if tightness > ceiling:
        raise AssertionError(
            f"{name}: A0 cost {exact_a0.stats.sum_cost} is "
            f"{tightness:.1f}x the Theorem 5.3 envelope {envelope:.0f} "
            f"(ceiling {ceiling:.0f}x)"
        )
    print(
        f"  {'thm-5.3':<10} A0 cost {exact_a0.stats.sum_cost}   "
        f"envelope {envelope:.0f}   tightness {tightness:.2f}x "
        f"(ceiling {ceiling:.0f}x)"
    )

    # Anytime containment: every page's remaining-upper bound must cap
    # the best grade the full oracle says is still hidden.
    cursor = Engine.over(columnar).query(MINIMUM).cursor()
    uppers = []
    for _ in range(APPROX_CURSOR_PAGES):
        page = cursor.next_k(k)
        upper = page.details["certified"]["remaining_upper"]
        returned = {item.obj for item in cursor.fetched}
        hidden_best = next(
            item.grade for item in truth_full if item.obj not in returned
        )
        if upper < hidden_best - 1e-12:
            raise AssertionError(
                f"{name}: anytime bound {upper} below hidden best "
                f"{hidden_best} after {len(returned)} answers"
            )
        uppers.append(round(upper, 6))
    print(f"  {'anytime':<10} remaining-upper per page: {uppers}")

    return {
        "config": name,
        "workload": entry["workload"],
        "rho": entry["rho"],
        "N": N,
        "m": m,
        "k": k,
        "seed": seed,
        "aggregation": agg_name,
        "epsilons": list(APPROX_EPSILONS),
        "true_kth_grade": true_kth,
        "theorem53": {
            "envelope": round(envelope, 1),
            "a0_sum_cost": exact_a0.stats.sum_cost,
            "tightness_ratio": round(tightness, 3),
            "ceiling_ratio": round(ceiling, 1),
        },
        "anytime": {
            "pages": APPROX_CURSOR_PAGES,
            "page_size": k,
            "remaining_upper": uppers,
            "containment_checked": True,
        },
        "kernel_gated": list(entry["kernel_gated"]),
        "algorithms": results,
    }


def compare(current: dict, baseline_path: Path) -> list[str]:
    """Regressions of ``current`` against a committed baseline file."""
    baseline = json.loads(baseline_path.read_text())
    base_by_name = {c["config"]: c for c in baseline.get("configs", [])}
    failures: list[str] = []
    for config in current["configs"]:
        if config.get("workload") == "serving":
            # serve- lanes come from benchmarks/load_gen.py and are
            # informational only: end-to-end socket wall-clock is
            # machine noise, and they carry no per-algorithm access
            # counts to gate. Reported for the trajectory, never
            # failed on.
            continue
        base = base_by_name.get(config["config"])
        if base is None:
            continue
        for algo, now in config["algorithms"].items():
            then = base["algorithms"].get(algo)
            if then is None:
                continue
            for field in ("sorted", "random"):
                if now[field] != then[field]:
                    failures.append(
                        f"{config['config']}/{algo}: {field} access count "
                        f"changed {then[field]} -> {now[field]} "
                        "(cost semantics must not drift)"
                    )
            if config.get("workload") in (
                "parallel", "sharded", "plan", "approx",
            ):
                # The concurrency, planning and approximation lanes'
                # hard gates are count parity (checked above and again
                # at generation time — the plan lane additionally gates
                # hit rate and accesses-vs-best-fixed, the approx lane
                # monotone ε savings, certificates and the Theorem 5.3
                # envelope when it runs); their wall-clock ratios are
                # scheduler/GIL/core-count artefacts that swing with
                # the CI machine, so they are recorded for the
                # trajectory but not gated.
                continue
            if (
                now["columnar_ms"] < MIN_GATED_MS
                or then["columnar_ms"] < MIN_GATED_MS
            ):
                continue  # sub-millisecond medians gate on counts only
            floor = min(then["speedup"], SPEEDUP_CAP) * (
                1.0 - REGRESSION_TOLERANCE
            )
            if min(now["speedup"], SPEEDUP_CAP) < floor:
                failures.append(
                    f"{config['config']}/{algo}: speedup regressed "
                    f"{then['speedup']}x -> {now['speedup']}x "
                    f"(floor {floor:.2f}x)"
                )
        # The vectorized-kernels acceptance floor: on every algorithm a
        # config explicitly gates (all current gated configs are
        # N >= 10k), the kernel lane must keep beating the scalar lane
        # by at least 1.5x. The gate is opt-in per config, so it is
        # enforced whenever declared — a config too small to time
        # meaningfully should simply not declare one.
        for algo in config.get("kernel_gated", ()):
            gain = config["algorithms"].get(algo, {}).get("kernel_speedup")
            if gain is not None and gain < KERNEL_SPEEDUP_FLOOR:
                failures.append(
                    f"{config['config']}/{algo}: kernel speedup {gain}x "
                    f"below the {KERNEL_SPEEDUP_FLOOR}x floor"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI subset of the configs"
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="runs per median (default 5)"
    )
    parser.add_argument(
        "--out", default="BENCH_topk.json", help="output JSON path"
    )
    parser.add_argument(
        "--compare",
        metavar="BASELINE",
        help="fail on >20%% speedup regression or any access-count change "
        "vs this baseline JSON",
    )
    parser.add_argument(
        "--only",
        metavar="PREFIX",
        help="run only the configs whose name starts with PREFIX "
        "(e.g. 'shard-'); lanes the filter skips are carried forward "
        "from the existing --out file instead of being dropped",
    )
    args = parser.parse_args(argv)

    baseline_path = Path(args.compare) if args.compare else None
    if baseline_path is not None and not baseline_path.exists():
        print(f"baseline {baseline_path} not found", file=sys.stderr)
        return 2

    configs = QUICK_CONFIGS if args.quick else FULL_CONFIGS
    if args.only:
        configs = [c for c in configs if c["name"].startswith(args.only)]
        if not configs:
            print(f"no config matches --only {args.only!r}", file=sys.stderr)
            return 2
    report = {
        "schema": "bench-topk/v3",
        "generated_by": "benchmarks/perf_harness.py",
        "mode": "quick" if args.quick else "full",
        "repeats": args.repeats,
        "python": sys.version.split()[0],
        "configs": [],
    }
    started = time.perf_counter()
    for entry in configs:
        print(
            f"{entry['name']} (workload={entry['workload']}, "
            f"rho={entry['rho']})"
        )
        report["configs"].append(bench_config(entry, args.repeats))
    report["wall_s"] = round(time.perf_counter() - started, 1)

    # Carry-forward: serve- lanes are produced by benchmarks/load_gen.py
    # against a live server, not by this harness, so they always ride
    # along from the existing output file; under --only, every lane the
    # filter skipped is likewise carried forward, so a partial
    # re-measure never silently drops the rest of the trajectory.
    out_path = Path(args.out)
    if out_path.exists():
        try:
            previous_configs = json.loads(out_path.read_text()).get(
                "configs", []
            )
        except ValueError:
            previous_configs = []
        ran = {c["config"] for c in report["configs"]}
        carried = [
            c
            for c in previous_configs
            if c["config"] not in ran
            and (c.get("workload") == "serving" or args.only)
        ]
        if carried:
            report["configs"].extend(carried)
            print(
                "carried forward (not re-run): "
                + ", ".join(c["config"] for c in carried)
            )

    failures = []
    if baseline_path is not None:
        failures = compare(report, baseline_path)

    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out} ({report['wall_s']} s)")

    if failures:
        print("\nPERF REGRESSIONS:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    if baseline_path is not None:
        print(f"no regressions vs {baseline_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
