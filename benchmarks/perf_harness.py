"""Perf-regression harness: wall-clock + access-count trajectory.

Times FA / TA / NRA / naive over independent *and* correlated
workloads (the FKG-inequality line in PAPERS.md marks positively
associated lists as the adversarial regime for wall-clock, so rho > 0
is benchmarked, not just the Section 5 independence model) at several
(N, m, k) points, on two backings:

* **legacy** — the pre-batching ``MaterializedSource`` path: a session
  minted from the row-oriented :class:`ScoringDatabase` (full O(N*m)
  ranking re-validation per mint), every source wrapped in
  :class:`UnbatchedSource` so every access is a unit access, driven by
  the ``_prepr_*`` reference runners below — faithful replicas of the
  seed-commit hot loops (one object per list per round, per-call
  aggregation validation, full sort of all aggregate grades);
* **columnar** — :class:`ColumnarScoringDatabase` sessions (O(m)
  mint) consumed by the current algorithms through the batched access
  protocol.

Each measurement is the median of ``--repeats`` runs of *mint session
+ run algorithm* (minting is part of the path: the pre-batching code
re-sorted/re-validated per session). Every config asserts that the two
backings return identical answers with identical per-list sorted and
random access counts — batches are an implementation detail; the paper
cost model is unchanged.

Output goes to ``BENCH_topk.json``. Modes:

    PYTHONPATH=src python benchmarks/perf_harness.py              # full
    PYTHONPATH=src python benchmarks/perf_harness.py --quick      # CI subset
    PYTHONPATH=src python benchmarks/perf_harness.py --quick \\
        --compare BENCH_topk.json                                 # gate

``--compare BASELINE`` fails (exit 1) when, on any config/algorithm
both files cover, (a) the access counts differ from the baseline's —
a deterministic semantics change — or (b) the columnar-vs-legacy
speedup fell more than 20 % below the baseline's. The speedup ratio is
compared rather than raw milliseconds because both runs of a ratio
happen on the *same* machine, so the gate is meaningful on CI hardware
that is slower or faster than wherever the baseline was committed.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import MINIMUM  # noqa: E402
from repro.access import (  # noqa: E402
    ColumnarScoringDatabase,
    MaterializedSource,
    MiddlewareSession,
    UnbatchedSource,
    tie_break_key,
)
from repro.access.types import GradedItem  # noqa: E402
from repro.algorithms.fa import FaginA0  # noqa: E402
from repro.algorithms.naive import NaiveAlgorithm  # noqa: E402
from repro.algorithms.nra import NoRandomAccessAlgorithm  # noqa: E402
from repro.algorithms.threshold import ThresholdAlgorithm  # noqa: E402
from repro.exceptions import ExhaustedSourceError  # noqa: E402
from repro.workloads import correlated_database, independent_database  # noqa: E402

#: Tolerated relative drop of the columnar-vs-legacy speedup before the
#: comparison mode fails the run.
REGRESSION_TOLERANCE = 0.20

#: Speedup ratios built from medians below this are timer noise on a
#: shared CI runner; such entries keep the (deterministic) access-count
#: gate but skip the timing gate.
MIN_GATED_MS = 1.0

#: Very large ratios (TA's legacy lane re-sorts all grades every round,
#: making its ratio 15-25x and noise-compounded) are clamped before the
#: 20% comparison: everything above the cap counts as "at the cap", so
#: jitter between 16x and 13x passes while a real collapse toward 1x
#: still fails.
SPEEDUP_CAP = 8.0


# ----------------------------------------------------------------------
# Pre-PR reference runners: the seed-commit implementations, verbatim in
# structure. These define the "legacy" lane — what the library did
# before the batched protocol and columnar backend existed — so the
# reported speedups measure this PR, not a strawman. (The tie key is
# the library-wide one so answers compare equal item for item; it was
# already computed once per item in the seed, so costs are unchanged.)
# ----------------------------------------------------------------------


def _prepr_topk(scored, k):
    items = [GradedItem(obj, grade) for obj, grade in scored.items()]
    items.sort(key=lambda it: (-it.grade, tie_break_key(it.obj)))
    return tuple(items[:k])


def _prepr_fagin(session, aggregation, k):
    m = session.num_lists
    seen, matched = {}, set()
    while len(matched) < k:
        progressed = False
        for i, source in enumerate(session.sources):
            if source.exhausted:
                continue
            item = source.next_sorted()
            progressed = True
            by_list = seen.setdefault(item.obj, {})
            by_list[i] = item.grade
            if len(by_list) == m:
                matched.add(item.obj)
        if not progressed:
            break
    for obj, by_list in seen.items():
        for j in range(m):
            if j not in by_list:
                by_list[j] = session.sources[j].random_access(obj)
    scored = {
        obj: aggregation(*(by_list[j] for j in range(m)))
        for obj, by_list in seen.items()
    }
    return _prepr_topk(scored, k)


def _prepr_threshold(session, aggregation, k):
    m = session.num_lists
    scored, bottoms = {}, [1.0] * m
    while True:
        any_progress = False
        for i, source in enumerate(session.sources):
            if source.exhausted:
                continue
            item = source.next_sorted()
            any_progress = True
            bottoms[i] = item.grade
            if item.obj not in scored:
                grades = [0.0] * m
                grades[i] = item.grade
                for j in range(m):
                    if j != i:
                        grades[j] = session.sources[j].random_access(item.obj)
                scored[item.obj] = aggregation(*grades)
        if not any_progress:
            break
        tau = aggregation(*bottoms)
        if len(scored) >= k:
            if sorted(scored.values(), reverse=True)[k - 1] >= tau:
                break
    return _prepr_topk(scored, k)


def _prepr_nra(session, aggregation, k):
    m = session.num_lists
    seen, bottoms, exact = {}, [1.0] * m, {}
    while True:
        progressed = False
        for i, source in enumerate(session.sources):
            if source.exhausted:
                continue
            item = source.next_sorted()
            progressed = True
            bottoms[i] = item.grade
            by_list = seen.setdefault(item.obj, {})
            by_list[i] = item.grade
            if len(by_list) == m and item.obj not in exact:
                exact[item.obj] = aggregation(*(by_list[j] for j in range(m)))
        if not progressed:
            break
        if len(exact) < k:
            continue
        kth_best = sorted(exact.values(), reverse=True)[k - 1]
        if aggregation(*bottoms) > kth_best:
            continue
        certified = True
        for obj, by_list in seen.items():
            if obj in exact:
                continue
            upper = aggregation(*(by_list.get(j, bottoms[j]) for j in range(m)))
            if upper > kth_best:
                certified = False
                break
        if certified:
            break
    return _prepr_topk(exact, k)


def _prepr_naive(session, aggregation, k):
    m = session.num_lists
    grades = {}
    for i, source in enumerate(session.sources):
        while True:
            try:
                item = source.next_sorted()
            except ExhaustedSourceError:
                break
            grades.setdefault(item.obj, {})[i] = item.grade
    scored = {
        obj: aggregation(*(by_list[i] for i in range(m)))
        for obj, by_list in grades.items()
    }
    return _prepr_topk(scored, k)


ALGORITHMS = {
    "fagin": (FaginA0, _prepr_fagin),
    "threshold": (ThresholdAlgorithm, _prepr_threshold),
    "nra": (NoRandomAccessAlgorithm, _prepr_nra),
    "naive": (NaiveAlgorithm, _prepr_naive),
}

#: (name, workload, rho, N, m, k, seed). The quick set is the CI gate;
#: the full set adds the larger and negatively-correlated points.
QUICK_CONFIGS = [
    ("ind-N2000-m2-k5", "independent", None, 2_000, 2, 5, 101),
    ("ind-N10000-m3-k10", "independent", None, 10_000, 3, 10, 42),
    ("corr+0.6-N10000-m3-k10", "correlated", 0.6, 10_000, 3, 10, 42),
]
FULL_CONFIGS = QUICK_CONFIGS + [
    ("corr-0.4-N10000-m2-k10", "correlated", -0.4, 10_000, 2, 10, 42),
    ("ind-N10000-m3-k100", "independent", None, 10_000, 3, 100, 42),
    ("ind-N30000-m3-k10", "independent", None, 30_000, 3, 10, 42),
]


def build_database(workload: str, rho, N: int, m: int, seed: int):
    if workload == "independent":
        return independent_database(m, N, seed=seed)
    return correlated_database(m, N, rho, seed=seed)


def legacy_session(db) -> MiddlewareSession:
    """The pre-batching path: per-mint O(N*m) sources, unit accesses only."""
    raw = [
        UnbatchedSource(MaterializedSource(f"list-{i}", db.ranking(i)))
        for i in range(db.num_lists)
    ]
    return MiddlewareSession.over_sources(raw, num_objects=db.num_objects)


def median_ms(run, repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        samples.append((time.perf_counter() - start) * 1e3)
    return statistics.median(samples)


def bench_config(entry, repeats: int) -> dict:
    name, workload, rho, N, m, k, seed = entry
    db = build_database(workload, rho, N, m, seed)
    columnar = ColumnarScoringDatabase.from_scoring_database(db)
    results: dict[str, dict] = {}
    for algo_name, (algo_cls, prepr_run) in ALGORITHMS.items():
        algorithm = algo_cls()
        # Warm-up runs double as the equivalence check: identical
        # answers, identical per-list access counts on both lanes.
        ref_session = legacy_session(db)
        ref_items = prepr_run(ref_session, MINIMUM, k)
        ref_stats = ref_session.tracker.snapshot()
        col = algorithm.top_k(columnar.session(), MINIMUM, k)
        if [(i.obj, i.grade) for i in ref_items] != [
            (i.obj, i.grade) for i in col.items
        ]:
            raise AssertionError(
                f"{name}/{algo_name}: columnar answer differs from legacy"
            )
        if ref_stats != col.stats:
            raise AssertionError(
                f"{name}/{algo_name}: access counts diverge — "
                f"legacy {ref_stats!r} vs columnar {col.stats!r}"
            )
        legacy_ms = median_ms(
            lambda: prepr_run(legacy_session(db), MINIMUM, k), repeats
        )
        columnar_ms = median_ms(
            lambda: algorithm.top_k(columnar.session(), MINIMUM, k), repeats
        )
        results[algo_name] = {
            "legacy_ms": round(legacy_ms, 3),
            "columnar_ms": round(columnar_ms, 3),
            "speedup": round(legacy_ms / columnar_ms, 2),
            "sorted_by_list": list(ref_stats.sorted_by_list),
            "random_by_list": list(ref_stats.random_by_list),
            "sorted": ref_stats.sorted_cost,
            "random": ref_stats.random_cost,
            "counts_match": True,
        }
        print(
            f"  {algo_name:<10} legacy {legacy_ms:8.2f} ms   "
            f"columnar {columnar_ms:8.2f} ms   "
            f"{legacy_ms / columnar_ms:5.2f}x   "
            f"S={ref_stats.sorted_cost} R={ref_stats.random_cost}"
        )
    return {
        "config": name,
        "workload": workload,
        "rho": rho,
        "N": N,
        "m": m,
        "k": k,
        "seed": seed,
        "aggregation": "min",
        "algorithms": results,
    }


def compare(current: dict, baseline_path: Path) -> list[str]:
    """Regressions of ``current`` against a committed baseline file."""
    baseline = json.loads(baseline_path.read_text())
    base_by_name = {c["config"]: c for c in baseline.get("configs", [])}
    failures: list[str] = []
    for config in current["configs"]:
        base = base_by_name.get(config["config"])
        if base is None:
            continue
        for algo, now in config["algorithms"].items():
            then = base["algorithms"].get(algo)
            if then is None:
                continue
            for field in ("sorted", "random"):
                if now[field] != then[field]:
                    failures.append(
                        f"{config['config']}/{algo}: {field} access count "
                        f"changed {then[field]} -> {now[field]} "
                        "(cost semantics must not drift)"
                    )
            if (
                now["columnar_ms"] < MIN_GATED_MS
                or then["columnar_ms"] < MIN_GATED_MS
            ):
                continue  # sub-millisecond medians gate on counts only
            floor = min(then["speedup"], SPEEDUP_CAP) * (
                1.0 - REGRESSION_TOLERANCE
            )
            if min(now["speedup"], SPEEDUP_CAP) < floor:
                failures.append(
                    f"{config['config']}/{algo}: speedup regressed "
                    f"{then['speedup']}x -> {now['speedup']}x "
                    f"(floor {floor:.2f}x)"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI subset of the configs"
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="runs per median (default 5)"
    )
    parser.add_argument(
        "--out", default="BENCH_topk.json", help="output JSON path"
    )
    parser.add_argument(
        "--compare",
        metavar="BASELINE",
        help="fail on >20%% speedup regression or any access-count change "
        "vs this baseline JSON",
    )
    args = parser.parse_args(argv)

    baseline_path = Path(args.compare) if args.compare else None
    if baseline_path is not None and not baseline_path.exists():
        print(f"baseline {baseline_path} not found", file=sys.stderr)
        return 2

    configs = QUICK_CONFIGS if args.quick else FULL_CONFIGS
    report = {
        "schema": "bench-topk/v1",
        "generated_by": "benchmarks/perf_harness.py",
        "mode": "quick" if args.quick else "full",
        "repeats": args.repeats,
        "python": sys.version.split()[0],
        "configs": [],
    }
    started = time.perf_counter()
    for entry in configs:
        print(f"{entry[0]} (workload={entry[1]}, rho={entry[2]})")
        report["configs"].append(bench_config(entry, args.repeats))
    report["wall_s"] = round(time.perf_counter() - started, 1)

    failures = []
    if baseline_path is not None:
        failures = compare(report, baseline_path)

    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out} ({report['wall_s']} s)")

    if failures:
        print("\nPERF REGRESSIONS:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    if baseline_path is not None:
        print(f"no regressions vs {baseline_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
