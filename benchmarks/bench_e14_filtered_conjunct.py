"""E14 — Section 4's first example: the filtered-conjunct strategy.

"Under the reasonable assumption that there are not many objects that
satisfy the first conjunct Artist = 'Beatles', a good way to evaluate
this query would be first to determine all objects that satisfy the
first conjunct … and then to obtain grades from QBIC (using random
access) for the second conjunct for all objects in S."

We sweep the crisp conjunct's selectivity and compare the filtered
plan's cost (~ 2*|S|) against A0' on the same federated query — the
filtered strategy wins while the conjunct is selective and loses once
it stops being selective, exactly the planner's decision boundary.
"""

import random

from repro.core.query import And, AtomicQuery
from repro.core.semantics import STANDARD_FUZZY
from repro.middleware.catalog import Catalog
from repro.middleware.executor import Executor
from repro.middleware.plan import AlgorithmPlan, FilteredConjunctPlan
from repro.middleware.planner import Planner, PlannerOptions
from repro.analysis.tables import format_table
from repro.subsystems.qbic import QbicSubsystem
from repro.subsystems.relational import RelationalSubsystem

from conftest import print_experiment_header

N = 2000
K = 10
SELECTIVITIES = (0.005, 0.02, 0.05, 0.1, 0.25, 0.5)


def _catalog(selectivity, seed=0):
    rng = random.Random(seed)
    objs = [f"o{i}" for i in range(N)]
    matches = max(K, int(selectivity * N))
    cat = Catalog()
    cat.register(
        RelationalSubsystem(
            "rel",
            {
                o: {"Artist": "Beatles" if i < matches else f"a{i % 97}"}
                for i, o in enumerate(objs)
            },
        )
    )
    cat.register(
        QbicSubsystem(
            "qbic",
            {"Color": {o: (rng.random(), rng.random(), rng.random())
                       for o in objs}},
        )
    )
    return cat


QUERY = And(
    (AtomicQuery("Artist", "Beatles", "="), AtomicQuery("Color", "red", "~"))
)


def test_e14_filtered_conjunct(benchmark):
    print_experiment_header(
        "E14",
        "selective crisp conjunct: filter-then-random-access vs A0' "
        "(Section 4, the Beatles example)",
    )
    rows = []
    for sel in SELECTIVITIES:
        cat = _catalog(sel)
        executor = Executor(cat, STANDARD_FUZZY)
        filtered_planner = Planner(
            cat, options=PlannerOptions(selectivity_threshold=1.0)
        )
        generic_planner = Planner(
            cat, options=PlannerOptions(selectivity_threshold=0.0)
        )
        fplan = filtered_planner.plan(QUERY)
        gplan = generic_planner.plan(QUERY)
        assert isinstance(fplan, FilteredConjunctPlan)
        assert isinstance(gplan, AlgorithmPlan)
        fcost = executor.execute(fplan, K).result.stats.sum_cost
        gcost = executor.execute(gplan, K).result.stats.sum_cost
        rows.append((sel, int(sel * N), fcost, gcost, gcost / fcost))
    print(
        format_table(
            (
                "selectivity",
                "|S|",
                "filtered S+R",
                "A0' S+R",
                "A0'/filtered",
            ),
            rows,
            title=f"\nN = {N}, k = {K}",
        )
    )
    # The filtered strategy dominates at low selectivity ...
    assert rows[0][4] > 1.0
    # ... and the advantage shrinks (or flips) as selectivity grows.
    assert rows[-1][4] < rows[0][4]

    cat = _catalog(0.02)
    executor = Executor(cat, STANDARD_FUZZY)
    plan = Planner(
        cat, options=PlannerOptions(selectivity_threshold=1.0)
    ).plan(QUERY)

    def run():
        return executor.execute(plan, K)

    benchmark(run)
