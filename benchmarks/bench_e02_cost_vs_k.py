"""E2 — Theorem 5.3: A0 cost scales as k^(1/m) at fixed N.

The other axis of the bound: at fixed database size, asking for more
answers costs only the m-th root of k.
"""

from repro.algorithms.fa import FaginA0
from repro.analysis.experiments import measure_costs
from repro.analysis.fitting import fit_power_law
from repro.analysis.tables import format_table
from repro.core.tnorms import MINIMUM
from repro.workloads.skeletons import independent_database

from conftest import print_experiment_header

N = 4000
KS = (1, 2, 5, 10, 25, 50)


def _sweep(m, trials):
    rows, costs = [], []
    for k in KS:
        summary = measure_costs(
            lambda seed, k=k: independent_database(m, N, seed=seed),
            FaginA0(),
            MINIMUM,
            k=k,
            trials=trials,
        )
        costs.append(summary.mean_sum)
        rows.append((k, summary.mean_sum, summary.mean_depth))
    return rows, fit_power_law(KS, costs)


def test_e02_cost_scaling_in_k(benchmark, trials):
    print_experiment_header(
        "E2", f"A0 cost ~ k^(1/m) at fixed N = {N} (Theorem 5.3)"
    )
    for m, expected in ((2, 0.5), (3, 1 / 3)):
        rows, fit = _sweep(m, trials)
        print(
            format_table(
                ("k", "mean S+R", "mean depth T"),
                rows,
                title=f"\nm = {m} lists",
            )
        )
        print(
            f"fitted exponent in k: {fit.exponent:.3f} "
            f"(paper predicts {expected:.3f}), R^2 = {fit.r_squared:.4f}"
        )
        assert abs(fit.exponent - expected) < 0.16

    db = independent_database(2, N, seed=0)

    def run():
        return FaginA0().top_k(db.session(), MINIMUM, 50)

    benchmark(run)
