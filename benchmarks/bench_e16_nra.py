"""E16 — extension: the no-random-access trade-off.

Quantifies what giving up random access costs (and saves). NRA's
sorted phase runs deeper than A0's (it must wait for upper bounds to
fall below the k-th exact grade, not merely for k matches), but it
performs zero random accesses — so under the weighted middleware cost
c1*S + c2*R of Section 5, the winner flips as c2/c1 grows. The table
locates the crossover, which calibrates the planner's
EXPENSIVE_RANDOM_ACCESS_RATIO heuristic.
"""

import statistics

from repro.access.cost import CostModel
from repro.algorithms.fa import FaginA0
from repro.algorithms.fa_min import FaginA0Min
from repro.algorithms.nra import NoRandomAccessAlgorithm
from repro.analysis.tables import format_table
from repro.core.tnorms import MINIMUM
from repro.workloads.skeletons import independent_database

from conftest import print_experiment_header

N = 2000
K = 10
TRIALS = 8
RATIOS = (1.0, 2.0, 5.0, 10.0, 50.0)


def _mean_stats(alg):
    stats = []
    for seed in range(TRIALS):
        db = independent_database(2, N, seed=seed)
        stats.append(alg.top_k(db.session(), MINIMUM, K).stats)
    return stats


def test_e16_nra_tradeoff(benchmark):
    print_experiment_header(
        "E16",
        "NRA (sorted access only) vs A0/A0': the c2/c1 crossover "
        "(weighted middleware cost of Section 5)",
    )
    per_alg = {
        "A0": _mean_stats(FaginA0()),
        "A0'": _mean_stats(FaginA0Min()),
        "NRA": _mean_stats(NoRandomAccessAlgorithm()),
    }
    print(
        format_table(
            ("algorithm", "mean S", "mean R"),
            [
                (
                    name,
                    statistics.fmean(s.sorted_cost for s in stats),
                    statistics.fmean(s.random_cost for s in stats),
                )
                for name, stats in per_alg.items()
            ],
            title=f"\naccess profile (N = {N}, k = {K}, m = 2)",
        )
    )

    rows = []
    for ratio in RATIOS:
        model = CostModel(sorted_weight=1.0, random_weight=ratio)
        costs = {
            name: statistics.fmean(s.middleware_cost(model) for s in stats)
            for name, stats in per_alg.items()
        }
        winner = min(costs, key=costs.get)
        rows.append(
            (ratio, costs["A0"], costs["A0'"], costs["NRA"], winner)
        )
    print(
        format_table(
            ("c2/c1", "A0 cost", "A0' cost", "NRA cost", "winner"),
            rows,
            title="\nweighted middleware cost c1*S + c2*R",
        )
    )
    # NRA performs no random access, so its weighted cost is flat in the
    # ratio; the randomized algorithms grow linearly — NRA must win for
    # large ratios and typically already at moderate ones.
    assert rows[-1][4] == "NRA"
    nra_costs = [r[3] for r in rows]
    assert max(nra_costs) == min(nra_costs)  # flat in c2
    assert rows[0][1] <= rows[-1][1]  # A0's weighted cost grows

    db = independent_database(2, N, seed=0)

    def run():
        return NoRandomAccessAlgorithm().top_k(db.session(), MINIMUM, K)

    benchmark(run)
