"""E9 — Section 4: the naive algorithm vs A0, the headline table.

"the naive algorithm must retrieve a number of elements that is linear
in the database size. In contrast … the total number of elements
retrieved in evaluating the query is sublinear … (in the case of two
conjuncts, it is of the order of the square root of the database
size)." The speedup factor must therefore grow like sqrt(N).
"""

from repro.algorithms.fa import FaginA0
from repro.algorithms.fa_min import FaginA0Min
from repro.algorithms.naive import NaiveAlgorithm
from repro.analysis.experiments import measure_costs
from repro.analysis.fitting import fit_power_law
from repro.analysis.tables import format_table
from repro.core.tnorms import MINIMUM
from repro.workloads.skeletons import independent_database

from conftest import engine_top_k, print_experiment_header

M = 2
K = 10
NS = (500, 2000, 8000, 32000)


def test_e09_naive_vs_fa(benchmark, trials):
    print_experiment_header(
        "E9", "naive (linear) vs A0 / A0' (sublinear): the headline crossover"
    )
    rows, speedups = [], []
    for n in NS:
        def make(seed, n=n):
            return independent_database(M, n, seed=seed)

        naive = measure_costs(make, NaiveAlgorithm(), MINIMUM, K, trials=3)
        a0 = measure_costs(make, FaginA0(), MINIMUM, K, trials=trials)
        a0p = measure_costs(make, FaginA0Min(), MINIMUM, K, trials=trials)
        assert naive.mean_sum == M * n
        speedup = naive.mean_sum / a0.mean_sum
        speedups.append(speedup)
        rows.append(
            (n, naive.mean_sum, a0.mean_sum, a0p.mean_sum, speedup)
        )
    print(
        format_table(
            ("N", "naive S+R", "A0 S+R", "A0' S+R", "naive/A0 speedup"),
            rows,
            title=f"\nm = {M}, k = {K}",
        )
    )
    fit = fit_power_law(NS, speedups)
    print(f"speedup growth exponent: {fit.exponent:.3f} (sqrt law: 0.5)")
    assert speedups == sorted(speedups)  # monotone widening gap
    assert speedups[-1] > 10  # decisive at N = 32000

    db = independent_database(M, 32000, seed=0)

    def run():
        return engine_top_k(db, MINIMUM, K, strategy="fagin-min")

    benchmark(run)
