"""E12 — Section 3 + Theorem 6.5: robustness across aggregation functions.

"The matching upper and lower bounds are robust, in the sense that
they hold under almost any reasonable rule (including the standard min
rule of fuzzy logic) for evaluating the conjunction." We run A0 under
every t-norm from the paper's catalogue plus the [TZZ79] means: the
sqrt(N) growth exponent holds for each (monotone + strict), while max
(monotone, NOT strict) escapes the lower bound via B0.
"""

from repro.algorithms.fa import FaginA0
from repro.analysis.experiments import measure_costs
from repro.analysis.fitting import fit_power_law
from repro.analysis.tables import format_table
from repro.core.means import ARITHMETIC_MEAN, GEOMETRIC_MEAN
from repro.core.tnorms import TNORMS
from repro.workloads.skeletons import independent_database

from conftest import print_experiment_header

K = 5
NS = (1000, 4000)
AGGREGATIONS = list(TNORMS.values()) + [ARITHMETIC_MEAN, GEOMETRIC_MEAN]


def test_e12_aggregation_robustness(benchmark, trials):
    print_experiment_header(
        "E12",
        "the Theta bound holds for every monotone+strict aggregation "
        "(all t-norms, arithmetic/geometric means)",
    )
    rows = []
    for agg in AGGREGATIONS:
        costs = []
        for n in NS:
            summary = measure_costs(
                lambda seed, n=n: independent_database(2, n, seed=seed),
                FaginA0(),
                agg,
                k=K,
                trials=trials,
            )
            costs.append(summary.mean_sum)
        exponent = fit_power_law(NS, costs).exponent
        rows.append((agg.name, agg.strict, costs[0], costs[1], exponent))
        assert 0.3 <= exponent <= 0.7, agg.name
    print(
        format_table(
            (
                "aggregation",
                "strict",
                f"S+R @N={NS[0]}",
                f"S+R @N={NS[1]}",
                "exponent",
            ),
            rows,
            title=f"\nA0 cost under each aggregation (m = 2, k = {K})",
        )
    )
    # A0's *cost* is aggregation-independent by construction (the
    # sorted phase never looks at grades): all rows must agree.
    base = rows[0][2]
    assert all(r[2] == base for r in rows)
    print(
        "note: A0's access pattern is aggregation-independent — its "
        "sorted phase depends only on the skeleton, exactly why the "
        "bounds are robust."
    )

    db = independent_database(2, 4000, seed=0)

    def run():
        return FaginA0().top_k(db.session(), TNORMS["algebraic-product"], K)

    benchmark(run)
