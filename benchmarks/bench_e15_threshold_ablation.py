"""E15 — extension ablation: Fagin's Algorithm vs the Threshold Algorithm.

TA (from the paper's successor line, [Fa98] -> Fagin-Lotem-Naor 2001)
replaces A0's wait-for-k-matches rule with a data-adaptive threshold.
The key structural difference the ablation exposes: **A0's access
pattern never looks at grades** (its stopping depth is a function of
the skeleton alone), while TA's threshold adapts to the grade scale.
So under *asymmetric* grade distributions — one subsystem capped at
0.3, one uniform, exactly a Section 8/9-style scale mismatch — TA
stops an order of magnitude earlier, whereas under uniform grades the
two are comparable, and on the hard query both are linear (nothing
escapes Theorem 7.1).
"""

import statistics

from repro.algorithms.fa import FaginA0
from repro.algorithms.threshold import ThresholdAlgorithm
from repro.analysis.tables import format_table
from repro.core.tnorms import MINIMUM
from repro.workloads.correlated import correlated_database, hard_query_database
from repro.workloads.distributions import Capped, Uniform
from repro.workloads.skeletons import independent_database

from conftest import print_experiment_header

N = 2000
K = 10
TRIALS = 8


def _mean_cost(alg, make_db):
    return statistics.fmean(
        alg.top_k(make_db(seed).session(), MINIMUM, K).stats.sum_cost
        for seed in range(TRIALS)
    )


def test_e15_fa_vs_ta(benchmark):
    print_experiment_header(
        "E15",
        "ablation: A0's wait-for-matches rule vs TA's adaptive "
        "threshold (the paper's successor line)",
    )
    workloads = (
        ("independent, uniform grades",
         lambda seed: independent_database(2, N, seed=seed)),
        ("asymmetric scales (cap 0.3 / uniform)",
         lambda seed: independent_database(
             2, N, seed=seed, distributions=[Capped(0.3), Uniform()]
         )),
        ("positively correlated (rho=0.9)",
         lambda seed: correlated_database(2, N, rho=0.9, seed=seed)),
        ("negatively correlated (rho=-0.9)",
         lambda seed: correlated_database(2, N, rho=-0.9, seed=seed)),
        ("hard query (Q AND NOT Q)",
         lambda seed: hard_query_database(N, seed=seed)),
    )
    rows = []
    for label, make_db in workloads:
        fa_cost = _mean_cost(FaginA0(), make_db)
        ta_cost = _mean_cost(ThresholdAlgorithm(), make_db)
        rows.append((label, fa_cost, ta_cost, fa_cost / ta_cost))
    print(
        format_table(
            ("workload", "A0 S+R", "TA S+R", "A0/TA"),
            rows,
            title=f"\nN = {N}, k = {K}, m = 2, {TRIALS} trials",
        )
    )
    by_label = {r[0]: r for r in rows}
    # Same ballpark under independence with uniform grades (TA pays
    # random accesses per round but stops earlier; neither dominates).
    indep = by_label["independent, uniform grades"]
    assert 0.3 <= indep[3] <= 4.0
    # TA wins decisively when the grade scales are asymmetric: A0's
    # grade-oblivious stopping rule cannot exploit the 0.3 ceiling.
    assert by_label["asymmetric scales (cap 0.3 / uniform)"][3] > 3.0
    # Nothing escapes the hard query: both linear.
    hard = by_label["hard query (Q AND NOT Q)"]
    assert hard[1] >= N and hard[2] >= N / 2

    db = independent_database(2, N, seed=0)

    def run():
        return ThresholdAlgorithm().top_k(db.session(), MINIMUM, K)

    benchmark(run)
