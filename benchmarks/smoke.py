"""Smoke benchmark: the whole engine surface, end to end, in ~30 s.

Exercises every execution path the unified Engine offers —

1. source-backed top-k with auto-selection and forced strategies,
   checked against ground truth;
2. cursor paging vs one-shot equivalence (Section 4's "continue where
   we left off");
3. batch execution over one shared session / cost tracker;
4. catalog-backed string queries over the federated CD store,
   including the filtered-conjunct and B0 plans, plus a batch with a
   shared atom cache;
5. the deprecation shims (Garlic.query / choose_algorithm) still
   answering correctly

— and prints a wall-clock + access-cost summary. Exits non-zero on any
check failure, so CI can run it as a cheap end-to-end gate:

    PYTHONPATH=src python benchmarks/smoke.py
"""

import sys
import time
import warnings

sys.path.insert(0, "src")

from repro import (  # noqa: E402
    ARITHMETIC_MEAN,
    Engine,
    Garlic,
    MAXIMUM,
    MINIMUM,
    is_valid_top_k,
)
from repro.engine import capable_strategies, select_strategy  # noqa: E402
from repro.subsystems import (  # noqa: E402
    QbicSubsystem,
    RelationalSubsystem,
)
from repro.workloads import cd_store, independent_database  # noqa: E402

N = 20_000
K = 10


def check(label: str, condition: bool, failures: list) -> None:
    mark = "ok  " if condition else "FAIL"
    print(f"  [{mark}] {label}")
    if not condition:
        failures.append(label)


def main() -> int:
    failures: list = []
    started = time.perf_counter()

    # ------------------------------------------------------------- 1
    print(f"1. source-backed engine (m=2, N={N}, k={K})")
    db = independent_database(2, N, seed=7)
    engine = Engine.over(db)
    truth = db.overall_grades(MINIMUM)

    auto = engine.query(MINIMUM).top(K)
    check(
        f"auto-selection picked A0' ({auto.algorithm}), "
        f"{auto.stats.sum_cost} accesses vs naive {2 * N}",
        auto.algorithm == "A0-prime"
        and is_valid_top_k(auto.items, truth, K)
        and auto.stats.sum_cost < 2 * N,
        failures,
    )
    for name in ("fagin", "nra", "threshold", "naive"):
        result = engine.query(MINIMUM).strategy(name).top(K)
        check(
            f"strategy {name!r} valid top-{K} "
            f"({result.stats.sum_cost} accesses)",
            is_valid_top_k(result.items, truth, K),
            failures,
        )

    # ------------------------------------------------------------- 2
    print("2. cursor paging vs one-shot")
    for k in (1, 5, 20):
        one_shot = engine.query(MINIMUM).top(k)
        cursor = engine.query(MINIMUM).cursor()
        paged = []
        while len(paged) < k:
            paged.extend(cursor.next_k(min(3, k - len(paged))).items)
        check(
            f"k={k}: paged set == one-shot set",
            {i.obj for i in paged} == {i.obj for i in one_shot.items},
            failures,
        )

    # ------------------------------------------------------------- 3
    print("3. batch execution (shared session/tracker)")
    batch = engine.run_many([MINIMUM, ARITHMETIC_MEAN, MAXIMUM], k=K)
    per_query = sum(a.stats.sum_cost for a in batch)
    check(
        f"batch total {batch.total_accesses} == sum of per-query costs "
        f"{per_query}",
        batch.total_accesses == per_query and len(batch) == 3,
        failures,
    )

    # ------------------------------------------------------------- 4
    print("4. catalog-backed engine (federated CD store)")
    albums = cd_store(300, seed=3)
    fed = Engine()
    fed.register(
        RelationalSubsystem(
            "store-db",
            {
                a.album_id: {"Artist": a.artist, "Genre": a.genre}
                for a in albums
            },
        )
    )
    fed.register(
        QbicSubsystem(
            "qbic",
            {"AlbumColor": {a.album_id: a.cover_rgb for a in albums}},
        )
    )
    beatles = fed.query(
        '(Artist = "Beatles") AND (AlbumColor ~ "red")'
    ).top(3)
    check(
        f"filtered-conjunct plan, k=3 "
        f"({beatles.result.stats.sum_cost} accesses)",
        type(beatles.plan).__name__ == "FilteredConjunctPlan"
        and beatles.result.k == 3,
        failures,
    )
    disj = fed.query(
        '(AlbumColor ~ "red") OR (AlbumColor ~ "blue")'
    ).top(5)
    check(
        "disjunction ran B0 at m*k sorted accesses",
        disj.result.algorithm == "B0" and disj.result.stats.sum_cost == 10,
        failures,
    )
    fed_batch = fed.run_many(
        [
            '(Artist = "Beatles") AND (AlbumColor ~ "red")',
            '(Genre = "jazz") AND (AlbumColor ~ "red")',
        ],
        k=3,
    )
    check(
        f"batch reused cached atoms "
        f"(evaluated {fed_batch.details['atom_evaluations']}, "
        f"reused {fed_batch.details['atom_reuses']})",
        fed_batch.details["atom_reuses"] >= 1,
        failures,
    )

    # ------------------------------------------------------------- 5
    print("5. deprecation shims")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        garlic = Garlic()
        garlic.register(
            QbicSubsystem(
                "qbic2",
                {"Color": {a.album_id: a.cover_rgb for a in albums}},
            )
        )
        old = garlic.query('Color ~ "red"', k=3)
        from repro import choose_algorithm

        choice = choose_algorithm(MINIMUM, 2)
    deprecations = [
        w
        for w in caught
        if issubclass(w.category, DeprecationWarning)
        and (
            "Garlic.query" in str(w.message)
            or "choose_algorithm" in str(w.message)
        )
    ]
    check(
        "Garlic.query/choose_algorithm answer correctly and warn",
        old.result.k == 3
        and choice.name == "A0-prime"
        and len(deprecations) >= 2,
        failures,
    )

    # registry sanity, no execution
    check(
        "registry: capability filter excludes RA strategies without RA",
        "fagin" not in capable_strategies(MINIMUM, 2, random_access=False)
        and select_strategy(MINIMUM, 2, random_access=False).name == "NRA",
        failures,
    )

    elapsed = time.perf_counter() - started
    print(f"\nsmoke finished in {elapsed:.1f}s — "
          f"{len(failures)} failure(s)")
    if failures:
        for f in failures:
            print(f"  FAILED: {f}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
