"""E17 — Theorem 6.6: A0's *sorted access cost* is essentially optimal.

    "except for algorithms with an extremely large random access cost
    (linear in the number of objects in the database), no correct
    algorithm can have a sorted access cost less than a constant times
    that of our algorithm A0."

We regenerate both sides: A0's sorted cost tracks the
N^((m-1)/m) k^(1/m) envelope with a flat ratio (upper), and the
theta-envelope Pr[sortedcost <= theta * bound] <= theta^m holds
empirically (lower) — while the naive-by-random-access loophole the
theorem carves out (zero sorted cost, linear random cost) is shown
explicitly.
"""

from repro.algorithms.fa import FaginA0
from repro.analysis.bounds import a0_cost_bound, lower_bound_probability
from repro.analysis.experiments import run_trials
from repro.analysis.tables import format_table
from repro.core.tnorms import MINIMUM
from repro.workloads.skeletons import independent_database

from conftest import print_experiment_header

M = 2
K = 5
NS = (500, 2000, 8000)
THETAS = (0.25, 0.5, 0.75)
TRIALS = 60


def test_e17_sorted_cost_optimality(benchmark):
    print_experiment_header(
        "E17",
        "A0's sorted access cost alone is Theta(N^((m-1)/m) k^(1/m)) "
        "(Theorem 6.6)",
    )
    rows, ratios = [], []
    per_n_results = {}
    for n in NS:
        results = run_trials(
            lambda seed, n=n: independent_database(M, n, seed=seed),
            FaginA0(),
            MINIMUM,
            K,
            trials=TRIALS if n == 2000 else 10,
        )
        per_n_results[n] = results
        mean_sorted = sum(r.stats.sorted_cost for r in results) / len(results)
        bound = a0_cost_bound(n, M, K)
        ratios.append(mean_sorted / bound)
        rows.append((n, mean_sorted, bound, mean_sorted / bound))
    print(
        format_table(
            ("N", "mean sorted cost S", "bound", "S/bound"),
            rows,
            title=f"\nm = {M}, k = {K}",
        )
    )
    assert max(ratios) / min(ratios) < 2.0

    sorted_costs = [r.stats.sorted_cost for r in per_n_results[2000]]
    bound = a0_cost_bound(2000, M, K)
    env_rows = []
    for theta in THETAS:
        frac = sum(s <= theta * bound for s in sorted_costs) / len(
            sorted_costs
        )
        limit = lower_bound_probability(theta, M)
        env_rows.append((theta, frac, limit))
        assert frac <= limit + 0.08
    print(
        format_table(
            ("theta", f"Pr[S <= theta*bound] (n={TRIALS})", "theta^m limit"),
            env_rows,
            title="\nsorted-cost lower-bound envelope at N = 2000",
        )
    )

    # The theorem's carve-out: zero sorted cost is possible, but only
    # by paying linear random access (grade every object directly).
    n = 2000
    db = independent_database(M, n, seed=1)
    session = db.session()
    scored = {
        obj: MINIMUM(
            *(session.sources[i].random_access(obj) for i in range(M))
        )
        for obj in db.objects
    }
    stats = session.tracker.snapshot()
    assert stats.sorted_cost == 0
    assert stats.random_cost == M * n
    best = max(scored.values())
    print(
        f"\ncarve-out check: all-random-access evaluation found the top "
        f"grade {best:.4f} with S = 0 but R = {stats.random_cost} "
        f"(linear, as Theorem 6.6 requires)"
    )

    def run():
        return FaginA0().top_k(db.session(), MINIMUM, K)

    benchmark(run)
