"""E3 — Section 5 tail bounds: Pr[sorted depth > c*sqrt(N*k)] is tiny.

The paper (citing Wimmers' refined m = 2 analysis, dominant term
e^(-c^2 k)): "the probability is less than 2 x 10^-8 that more than
2*sqrt(Nk) objects are accessed by sorted access in each list, and less
than 4 x 10^-27 [for] 3*sqrt(Nk)". At feasible trial counts we verify
the empirical exceedance rate is far below the loose c = 1 level and
exactly zero at c >= 1.5.
"""

import math

from repro.algorithms.fa import run_sorted_phase
from repro.analysis.bounds import WIMMERS_EXAMPLES, wimmers_tail_bound
from repro.analysis.tables import format_table
from repro.workloads.skeletons import independent_database

from conftest import print_experiment_header

N = 2500
K = 5
TRIALS = 300
CS = (1.0, 1.25, 1.5, 2.0, 3.0)


def _depths():
    depths = []
    for seed in range(TRIALS):
        db = independent_database(2, N, seed=seed)
        state = run_sorted_phase(db.session(), K)
        depths.append(state.depth)
    return depths


def test_e03_sorted_depth_tail(benchmark):
    print_experiment_header(
        "E3",
        "Pr[per-list sorted depth > c*sqrt(N*k)] collapses in c "
        "(Wimmers bound, dominant term e^(-c^2 k))",
    )
    depths = _depths()
    sqrt_nk = math.sqrt(N * K)
    rows = []
    for c in CS:
        exceed = sum(d > c * sqrt_nk for d in depths) / len(depths)
        envelope = wimmers_tail_bound(c, K)
        quoted = WIMMERS_EXAMPLES.get(int(c)) if c == int(c) else None
        rows.append(
            (c, c * sqrt_nk, exceed, envelope, quoted if quoted else "-")
        )
    print(
        format_table(
            (
                "c",
                "c*sqrt(Nk)",
                f"empirical Pr (n={TRIALS})",
                "e^(-c^2 k)",
                "paper's quoted bound",
            ),
            rows,
            title=f"\nN = {N}, k = {K}, m = 2",
        )
    )
    exceed_15 = sum(d > 1.5 * sqrt_nk for d in depths) / len(depths)
    exceed_20 = sum(d > 2.0 * sqrt_nk for d in depths) / len(depths)
    assert exceed_15 <= 0.05
    assert exceed_20 == 0.0  # 2e-8 probability: never at 300 trials

    db = independent_database(2, N, seed=0)

    def run():
        return run_sorted_phase(db.session(), K).depth

    benchmark(run)
