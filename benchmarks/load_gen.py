"""Closed-loop load generator for the repro.serving HTTP layer.

Drives ``POST /v1/query`` with ``--clients`` concurrent paced workers
targeting ``--target-qps`` aggregate, measures the end-to-end latency
distribution, and (optionally) writes the result into BENCH_topk.json
as an **informational** ``serve-`` lane — recorded for the throughput
trajectory, never hard-gated (wall-clock through a socket is machine
noise; the perf harness's access-count gates stay authoritative).

Modes::

    # Against a running server:
    PYTHONPATH=src python benchmarks/load_gen.py \\
        --url http://127.0.0.1:8000 --clients 8 --duration 5 \\
        --target-qps 200 --lane serve-N10000-m3-k10 \\
        --merge-into BENCH_topk.json

    # Self-booting (spawns `python -m repro.serving`, waits for
    # /healthz, loads, then SIGINTs and asserts a clean drain):
    PYTHONPATH=src python benchmarks/load_gen.py --boot \\
        --server-args "--n 10000 --m 3" --clients 8 --requests 400

    # CI smoke: low qps, exercises query + cursor paging + explain +
    # healthz + metrics, asserts invariants (identical answers across
    # clients, non-zero metrics, clean drain):
    PYTHONPATH=src python benchmarks/load_gen.py --boot --smoke \\
        --clients 4 --requests 120 --target-qps 60

Closed-loop means every client waits for its response before issuing
the next request (pacing sleeps keep the aggregate near the target
rate); overload therefore shows up as latency, and shed responses
(503) are counted, not retried — the back-off signal is the result.

Stdlib only (urllib + threads): the generator must run anywhere the
server does, including the Docker image and CI.
"""

from __future__ import annotations

import argparse
import json
import signal
import socket
import statistics
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

DEFAULT_TIMEOUT_S = 30.0

#: Histogram bucket upper bounds, ms (doubling; +inf overflow implicit).
HISTOGRAM_BOUNDS_MS = tuple(0.25 * (2.0 ** i) for i in range(16))


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------


def http_json(
    url: str,
    payload: dict | None = None,
    method: str | None = None,
    timeout: float = DEFAULT_TIMEOUT_S,
) -> tuple[int, dict]:
    """(status, parsed JSON body); error statuses are returned, not raised."""
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url,
        data=data,
        method=method or ("POST" if data is not None else "GET"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        body = exc.read()
        try:
            return exc.code, json.loads(body)
        except ValueError:
            return exc.code, {"raw": body.decode("latin-1", "replace")}


# ----------------------------------------------------------------------
# The closed loop
# ----------------------------------------------------------------------


class LoadStats:
    """Thread-safe accumulation of one run's observations."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.latencies_ms: list[float] = []
        self.by_status: dict[int, int] = {}
        self.answer_signatures: set[str] = set()
        self.errors: list[str] = []
        self.partial = 0
        self.uncertified = 0

    def record(
        self, status: int, latency_ms: float, body: dict | None
    ) -> None:
        signature = None
        partial = False
        uncertified = False
        if status == 200 and body is not None and "items" in body:
            partial = body.get("partial") is True
            if partial:
                # A certified prefix's length depends on where the
                # deadline landed, so partial answers are legitimately
                # run-to-run different — but each must carry its
                # guarantee block. They stay out of the determinism
                # check and are counted (and gated) separately.
                uncertified = body.get("guarantee") is None
            else:
                signature = json.dumps(body["items"], sort_keys=True)
        with self._lock:
            self.latencies_ms.append(latency_ms)
            self.by_status[status] = self.by_status.get(status, 0) + 1
            if partial:
                self.partial += 1
            if uncertified:
                self.uncertified += 1
            if signature is not None:
                self.answer_signatures.add(signature)

    def error(self, message: str) -> None:
        with self._lock:
            self.errors.append(message)

    @property
    def total(self) -> int:
        return sum(self.by_status.values())


def percentile(sorted_values: list[float], q: float) -> float | None:
    if not sorted_values:
        return None
    rank = max(1, -(-int(q * len(sorted_values)) // 100))  # nearest rank
    return sorted_values[rank - 1]


def histogram(latencies: list[float]) -> dict[str, int]:
    counts = [0] * (len(HISTOGRAM_BOUNDS_MS) + 1)
    for latency in latencies:
        for i, bound in enumerate(HISTOGRAM_BOUNDS_MS):
            if latency <= bound:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
    labels = [f"<={bound:g}ms" for bound in HISTOGRAM_BOUNDS_MS] + ["+inf"]
    return {
        label: count for label, count in zip(labels, counts) if count
    }


def run_load(args, payload: dict) -> tuple[LoadStats, float]:
    """The closed loop itself; returns (stats, wall seconds)."""
    stats = LoadStats()
    stop_at = time.monotonic() + args.duration if args.requests is None else None
    budget = threading.Semaphore(args.requests) if args.requests is not None else None
    interval = (
        args.clients / args.target_qps if args.target_qps else 0.0
    )
    url = f"{args.url}/v1/query"

    def worker(worker_index: int) -> None:
        # Stagger starts so clients do not phase-lock on the server.
        next_at = time.monotonic() + interval * worker_index / max(args.clients, 1)
        while True:
            if stop_at is not None and time.monotonic() >= stop_at:
                return
            if budget is not None and not budget.acquire(blocking=False):
                return
            if interval:
                delay = next_at - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                next_at += interval
            started = time.perf_counter()
            try:
                status, body = http_json(url, payload, timeout=args.timeout_s)
            except Exception as exc:  # noqa: BLE001 - network boundary
                stats.error(f"client {worker_index}: {type(exc).__name__}: {exc}")
                continue
            stats.record(status, (time.perf_counter() - started) * 1e3, body)

    started = time.perf_counter()
    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(args.clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return stats, time.perf_counter() - started


# ----------------------------------------------------------------------
# Smoke checks (the CI serving job's assertions)
# ----------------------------------------------------------------------


def smoke_check(args, payload: dict, failures: list[str]) -> dict:
    """Exercise every endpoint once and assert the serving invariants."""
    exercised: dict[str, object] = {}

    status, health = http_json(f"{args.url}/healthz")
    exercised["healthz"] = status
    if status != 200 or health.get("status") != "ok":
        failures.append(f"healthz unhealthy: {status} {health}")

    # Cursor lifecycle: open, page to completion (bounded), close.
    cursor_spec = dict(payload)
    cursor_spec.pop("k", None)
    cursor_spec["page_size"] = 25
    status, opened = http_json(f"{args.url}/v1/cursor", cursor_spec)
    exercised["cursor_open"] = status
    if status != 201:
        failures.append(f"cursor open failed: {status} {opened}")
    else:
        cursor_id = opened["cursor_id"]
        seen: set[str] = set()
        pages = 0
        done = False
        for _ in range(400):  # hard cap: a broken 'done' must not hang CI
            status, page = http_json(
                f"{args.url}/v1/cursor/{cursor_id}/next"
            )
            if (
                status == 400
                and "cursor" in page.get("error", {}).get("message", "")
            ):
                # Some plans (e.g. the filtered-conjunct strategy on
                # catalog backings) legitimately refuse incremental
                # cursors; the invariant is the structured 400, not
                # paging itself.
                exercised["cursor_unsupported"] = True
                done = True
                break
            if status != 200:
                failures.append(f"cursor next failed: {status} {page}")
                break
            pages += 1
            for item in page["items"]:
                key = json.dumps(item["obj"], default=str)
                if key in seen:
                    failures.append(
                        f"cursor returned duplicate object {item['obj']!r}"
                    )
                seen.add(key)
            if page["done"]:
                done = True
                break
        if not done:
            failures.append("cursor never reported done")
        exercised["cursor_pages"] = pages
        exercised["cursor_answers"] = len(seen)
        status, closed = http_json(
            f"{args.url}/v1/cursor/{cursor_id}", method="DELETE"
        )
        if status != 200:
            failures.append(f"cursor close failed: {status} {closed}")
        status, gone = http_json(f"{args.url}/v1/cursor/{cursor_id}/next")
        if status != 404:
            failures.append(f"closed cursor still pageable: {status}")

    # Explain: a strategy description on catalog backings, a clean
    # structured 400 on source backings — never a 500.
    if "query" in payload:
        status, explain = http_json(
            f"{args.url}/v1/explain?query="
            + urllib.request.quote(payload["query"])
        )
        exercised["explain"] = status
        if status != 200 or not explain.get("explain"):
            failures.append(f"explain failed: {status} {explain}")
    else:
        status, explain = http_json(f"{args.url}/v1/explain?query=x")
        exercised["explain"] = status
        if status != 400 or "error" not in explain:
            failures.append(
                f"explain on source backing should 400-envelope, "
                f"got {status} {explain}"
            )

    # Deadline: an unmeetable deadline must 504 and leave the engine
    # healthy for the very next request.
    deadline_spec = dict(payload)
    deadline_spec["deadline_ms"] = 1
    status, timed_out = http_json(f"{args.url}/v1/query", deadline_spec)
    exercised["deadline"] = status
    if status not in (504, 200):  # a very fast store may beat 1 ms
        failures.append(f"deadline_ms=1 gave {status} {timed_out}")
    elif status == 504 and timed_out["error"]["code"] != "deadline_exceeded":
        failures.append(f"504 without deadline_exceeded code: {timed_out}")
    status, after = http_json(f"{args.url}/v1/query", payload)
    if status != 200:
        failures.append(f"engine unhealthy after deadline: {status} {after}")

    # Certified partial answers: the same unmeetable deadline with
    # allow_partial must come back 200 with a guarantee block whenever
    # any page landed (504 stays legal when none did, and on backings
    # without the anytime cursor path), and never a 5xx.
    partial_spec = dict(payload)
    partial_spec["deadline_ms"] = 1
    partial_spec["allow_partial"] = True
    status, partial = http_json(f"{args.url}/v1/query", partial_spec)
    exercised["allow_partial"] = status
    if status not in (200, 504):
        failures.append(f"allow_partial deadline gave {status} {partial}")
    elif status == 200:
        guarantee = partial.get("guarantee")
        if guarantee is None:
            failures.append(f"partial 200 without guarantee: {partial}")
        elif partial.get("partial") is True:
            if guarantee.get("kind") != "anytime" or "bounds" not in partial:
                failures.append(
                    f"partial answer lacks anytime certificate: {partial}"
                )
            exercised["partial_answers"] = len(partial.get("items", []))
    status, after = http_json(f"{args.url}/v1/query", payload)
    if status != 200:
        failures.append(f"engine unhealthy after partial: {status} {after}")

    status, metrics = http_json(f"{args.url}/metrics")
    exercised["metrics"] = status
    if status != 200:
        failures.append(f"metrics failed: {status}")
    else:
        server = metrics["server"]
        engine = metrics["engine"]
        if not server["requests_total"] or not server["qps"]:
            failures.append(f"metrics report zero traffic: {server}")
        if server["latency"]["p50_ms"] is None or server["latency"]["p99_ms"] is None:
            failures.append("metrics missing latency percentiles")
        if engine["access"]["total"] <= 0:
            failures.append(f"metrics report zero engine accesses: {engine}")
        exercised["server_qps"] = server["qps"]
    return exercised


# ----------------------------------------------------------------------
# BENCH_topk.json merge
# ----------------------------------------------------------------------


def merge_lane(path: Path, lane: dict) -> None:
    """Insert/replace the lane in the bench file, touching nothing else."""
    report = json.loads(path.read_text()) if path.exists() else {
        "schema": "bench-topk/v3",
        "configs": [],
    }
    configs = report.setdefault("configs", [])
    report["configs"] = [
        c for c in configs if c.get("config") != lane["config"]
    ] + [lane]
    path.write_text(json.dumps(report, indent=2) + "\n")


# ----------------------------------------------------------------------
# Server boot (self-contained smoke / bench runs)
# ----------------------------------------------------------------------


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def boot_server(args) -> subprocess.Popen:
    port = free_port()
    command = [
        sys.executable, "-m", "repro.serving",
        "--host", "127.0.0.1", "--port", str(port),
    ] + (args.server_args.split() if args.server_args else [])
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    args.url = f"http://127.0.0.1:{port}"
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if process.poll() is not None:
            output = process.stdout.read() if process.stdout else ""
            raise SystemExit(f"server exited during boot:\n{output}")
        try:
            status, _ = http_json(f"{args.url}/healthz", timeout=2.0)
            if status == 200:
                return process
        except Exception:  # noqa: BLE001 - not accepting yet
            pass
        time.sleep(0.05)
    process.kill()
    raise SystemExit("server did not become healthy within 30 s")


def stop_server(process: subprocess.Popen, failures: list[str]) -> None:
    """SIGINT, then assert the drain was clean (exit 0, drain log line)."""
    process.send_signal(signal.SIGINT)
    try:
        process.wait(timeout=30.0)
    except subprocess.TimeoutExpired:
        process.kill()
        failures.append("server did not drain within 30 s of SIGINT")
        return
    output = process.stdout.read() if process.stdout else ""
    if process.returncode != 0:
        failures.append(
            f"server exited {process.returncode} on SIGINT:\n{output}"
        )
    if "drained" not in output:
        failures.append(f"no drain summary in server output:\n{output}")


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", default="http://127.0.0.1:8000")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument(
        "--duration", type=float, default=5.0,
        help="seconds of load (ignored when --requests is given)",
    )
    parser.add_argument(
        "--requests", type=int, default=None,
        help="total request budget instead of a duration",
    )
    parser.add_argument(
        "--target-qps", type=float, default=None,
        help="aggregate pacing target; omit for as-fast-as-possible",
    )
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument(
        "--aggregation", default="min",
        help="named aggregation for source-backed servers",
    )
    parser.add_argument(
        "--query", default=None,
        help="query string for catalog-backed servers (overrides "
        "--aggregation)",
    )
    parser.add_argument(
        "--deadline-ms", type=float, default=None,
        help="per-request deadline_ms field (the serving deadline lane)",
    )
    parser.add_argument(
        "--allow-partial", action="store_true",
        help="set allow_partial so deadline expiries return certified "
        "prefixes (200 + guarantee block) instead of 504",
    )
    parser.add_argument("--timeout-s", type=float, default=DEFAULT_TIMEOUT_S)
    parser.add_argument(
        "--lane", default=None,
        help="config name for the bench lane (default serve-<agg>-k<k>)",
    )
    parser.add_argument(
        "--merge-into", default=None, metavar="BENCH_JSON",
        help="write the lane into this bench file (other lanes untouched)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="exercise cursor/explain/healthz/metrics and assert invariants",
    )
    parser.add_argument(
        "--boot", action="store_true",
        help="spawn `python -m repro.serving` first, drain it after",
    )
    parser.add_argument(
        "--server-args", default="",
        help="extra arguments for the booted server (with --boot)",
    )
    parser.add_argument(
        "--allow-shed", action="store_true",
        help="tolerate 503s in the run (overload experiments)",
    )
    args = parser.parse_args(argv)

    payload: dict = {"k": args.k}
    if args.query:
        payload["query"] = args.query
    else:
        payload["aggregation"] = args.aggregation
    if args.deadline_ms is not None:
        payload["deadline_ms"] = args.deadline_ms
    if args.allow_partial:
        payload["allow_partial"] = True

    failures: list[str] = []
    process = boot_server(args) if args.boot else None
    try:
        stats, wall_s = run_load(args, payload)
        exercised = smoke_check(args, payload, failures) if args.smoke else {}
        status, metrics = http_json(f"{args.url}/metrics")
        server_metrics = metrics if status == 200 else {}
    finally:
        if process is not None:
            stop_server(process, failures)

    latencies = sorted(stats.latencies_ms)
    ok = stats.by_status.get(200, 0)
    shed = stats.by_status.get(503, 0)
    lane = {
        "config": args.lane
        or f"serve-{args.aggregation if not args.query else 'query'}-k{args.k}",
        "workload": "serving",
        "informational": True,
        "clients": args.clients,
        "target_qps": args.target_qps,
        "requests": stats.total,
        "ok": ok,
        "shed": shed,
        "by_status": {str(k): v for k, v in sorted(stats.by_status.items())},
        "wall_s": round(wall_s, 3),
        "achieved_qps": round(stats.total / wall_s, 1) if wall_s else 0.0,
        "latency_ms": {
            "p50": round(percentile(latencies, 50), 3) if latencies else None,
            "p90": round(percentile(latencies, 90), 3) if latencies else None,
            "p99": round(percentile(latencies, 99), 3) if latencies else None,
            "mean": round(statistics.fmean(latencies), 3) if latencies else None,
            "max": round(latencies[-1], 3) if latencies else None,
        },
        "histogram": histogram(latencies),
        "distinct_answers": len(stats.answer_signatures),
        "partial": stats.partial,
        "deadline_ms": args.deadline_ms,
        "allow_partial": args.allow_partial,
    }
    if server_metrics:
        engine = server_metrics.get("engine", {})
        lane["server"] = {
            "qps": server_metrics.get("server", {}).get("qps"),
            "p99_ms": server_metrics.get("server", {})
            .get("latency", {})
            .get("p99_ms"),
            "shed_total": server_metrics.get("server", {}).get("shed_total"),
            "engine_queries": engine.get("queries"),
            "engine_accesses": engine.get("access", {}).get("total"),
            "cache_hits": engine.get("cache_totals", {}).get("hits"),
        }
    if exercised:
        lane["smoke"] = exercised

    print(json.dumps(lane, indent=2))

    # Invariants of every run (smoke or bench): the server answered,
    # deterministically, and nothing failed server-side.
    if stats.errors:
        failures.extend(stats.errors[:5])
    if ok == 0:
        failures.append("no successful responses at all")
    if len(stats.answer_signatures) > 1:
        failures.append(
            f"non-deterministic answers: {len(stats.answer_signatures)} "
            "distinct top-k payloads for one fixed query"
        )
    if stats.uncertified:
        failures.append(
            f"{stats.uncertified} partial responses arrived without a "
            "guarantee block"
        )
    server_errors = sum(
        count
        for status_code, count in stats.by_status.items()
        if status_code >= 500 and status_code not in (503, 504)
    )
    if server_errors:
        failures.append(f"{server_errors} 5xx responses")
    if shed and not args.allow_shed:
        failures.append(
            f"{shed} requests shed (503) — raise capacity or pass "
            "--allow-shed for overload experiments"
        )

    if args.merge_into and not failures:
        merge_lane(Path(args.merge_into), lane)
        print(f"merged lane {lane['config']!r} into {args.merge_into}")

    if failures:
        print("\nLOAD GEN FAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
