"""E6 — Remark 6.1: the median (m = 3) is solvable in O(sqrt(N*k)).

The median is monotone but not strict, so the Omega(N^(2/3)) lower
bound does not apply — and indeed the subset-min construction (three
pairwise A0 runs + identity (13)) grows like sqrt(N), while generic A0
on the same median query grows like N^(2/3).
"""

from repro.algorithms.fa import FaginA0
from repro.algorithms.median import MedianTopK
from repro.analysis.experiments import measure_costs
from repro.analysis.fitting import fit_power_law
from repro.analysis.tables import format_table
from repro.core.means import MEDIAN
from repro.workloads.skeletons import independent_database

from conftest import print_experiment_header

K = 5
NS = (500, 1000, 2000, 4000, 8000)


def test_e06_median_construction(benchmark, trials):
    print_experiment_header(
        "E6",
        "median via max-of-pairwise-mins: O(sqrt(Nk)) vs A0's N^(2/3) "
        "(Remark 6.1, identity (13))",
    )
    rows, med_costs, a0_costs = [], [], []
    for n in NS:
        med = measure_costs(
            lambda seed, n=n: independent_database(3, n, seed=seed),
            MedianTopK(),
            MEDIAN,
            k=K,
            trials=trials,
        )
        a0 = measure_costs(
            lambda seed, n=n: independent_database(3, n, seed=seed),
            FaginA0(),
            MEDIAN,
            k=K,
            trials=max(3, trials // 2),
        )
        med_costs.append(med.mean_sum)
        a0_costs.append(a0.mean_sum)
        rows.append((n, med.mean_sum, a0.mean_sum, a0.mean_sum / med.mean_sum))
    med_fit = fit_power_law(NS, med_costs)
    a0_fit = fit_power_law(NS, a0_costs)
    print(
        format_table(
            ("N", "median-alg S+R", "A0-on-median S+R", "A0/median-alg"),
            rows,
            title=f"\nm = 3, k = {K}",
        )
    )
    print(
        f"median-alg exponent: {med_fit.exponent:.3f} (predicts 0.5); "
        f"A0 exponent: {a0_fit.exponent:.3f} (predicts 0.667)"
    )
    assert med_fit.exponent < a0_fit.exponent - 0.05
    assert abs(med_fit.exponent - 0.5) < 0.15

    db = independent_database(3, 4000, seed=0)

    def run():
        return MedianTopK().top_k(db.session(), MEDIAN, K)

    benchmark(run)
