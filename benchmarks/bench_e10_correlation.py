"""E10 — Section 7 intro: correlation between conjuncts and A0's cost.

"If the conjuncts are positively correlated, this can only help the
efficiency. What if the conjuncts are negatively correlated?" — the
sweep shows cost decreasing monotonically in rho, collapsing to ~m*k
at rho -> 1 and degrading towards the linear hard-query regime at
rho -> -1.
"""

import statistics

from repro.algorithms.fa import FaginA0
from repro.analysis.tables import format_table
from repro.core.tnorms import MINIMUM
from repro.workloads.correlated import correlated_database, spearman_rho

from conftest import print_experiment_header

N = 2000
K = 5
RHOS = (-1.0, -0.75, -0.4, 0.0, 0.4, 0.75, 1.0)
TRIALS = 8


def test_e10_correlation_sweep(benchmark):
    print_experiment_header(
        "E10",
        "positive correlation helps A0, negative hurts "
        "(Section 7's motivating question)",
    )
    rows, mean_costs = [], []
    for rho in RHOS:
        costs, realised = [], []
        for seed in range(TRIALS):
            db = correlated_database(2, N, rho=rho, seed=seed)
            realised.append(spearman_rho(db.skeleton()))
            costs.append(
                FaginA0().top_k(db.session(), MINIMUM, K).stats.sum_cost
            )
        mean_cost = statistics.fmean(costs)
        mean_costs.append(mean_cost)
        rows.append(
            (rho, statistics.fmean(realised), mean_cost, mean_cost / N)
        )
    print(
        format_table(
            ("rho (copula)", "realised Spearman", "mean S+R", "cost/N"),
            rows,
            title=f"\nN = {N}, k = {K}, m = 2, {TRIALS} trials per rho",
        )
    )
    # Monotone decreasing cost in rho (allow small sampling wiggle).
    for lo, hi in zip(mean_costs, mean_costs[1:]):
        assert hi <= lo * 1.15
    assert mean_costs[0] >= N  # rho=-1: the linear hard-query regime
    assert mean_costs[-1] <= 4 * K  # rho=1: matches arrive immediately

    db = correlated_database(2, N, rho=-0.75, seed=0)

    def run():
        return FaginA0().top_k(db.session(), MINIMUM, K)

    benchmark(run)
