"""E5 — Theorem 4.5 / Remark 6.1: B0 evaluates max in m*k accesses.

"Algorithm B0 of Theorem 4.5 has middleware cost only mk, independent
of the size N of the database!" — the lower bound fails because max is
not strict. The table shows B0's dead-flat cost curve next to A0
evaluating the same (monotone) max query sublinearly-but-growing.
"""

from repro.algorithms.disjunction import DisjunctionB0
from repro.algorithms.fa import FaginA0
from repro.analysis.experiments import measure_costs
from repro.analysis.tables import format_table
from repro.core.tconorms import MAXIMUM
from repro.workloads.skeletons import independent_database

from conftest import print_experiment_header

M = 2
K = 10
NS = (500, 2000, 8000, 32000)


def test_e05_b0_flat_cost(benchmark, trials):
    print_experiment_header(
        "E5", "B0 cost = m*k independent of N; strict lower bound fails for max"
    )
    rows = []
    for n in NS:
        b0 = measure_costs(
            lambda seed, n=n: independent_database(M, n, seed=seed),
            DisjunctionB0(),
            MAXIMUM,
            k=K,
            trials=trials,
        )
        a0 = measure_costs(
            lambda seed, n=n: independent_database(M, n, seed=seed),
            FaginA0(),
            MAXIMUM,
            k=K,
            trials=max(3, trials // 2),
        )
        assert b0.mean_sum == M * K  # exactly, every trial, every N
        assert b0.mean_random == 0.0
        rows.append((n, b0.mean_sum, a0.mean_sum, a0.mean_sum / b0.mean_sum))
    print(
        format_table(
            ("N", "B0 S+R (= m*k)", "A0-on-max S+R", "A0/B0"),
            rows,
            title=f"\nm = {M}, k = {K}",
        )
    )

    db = independent_database(M, 32000, seed=0)

    def run():
        return DisjunctionB0().top_k(db.session(), MAXIMUM, K)

    benchmark(run)
