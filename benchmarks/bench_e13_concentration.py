"""E13 — Lemma 5.1: concentration of random-set intersections.

"Let B1 be a set of l1 members of {1..N}, and let B2 be a random set
of l2 members … The expected size of B = B1 ∩ B2 is M = l1*l2/N.
Assume that l1 <= N/10. Then Pr[|B| <= M/2] < e^(-M/10)."

We sample the process directly and compare the empirical undershoot
rate with the Chernoff envelope.
"""

import random
import statistics

import pytest

from repro.analysis.bounds import expected_intersection, lemma51_bound
from repro.analysis.tables import format_table

from conftest import print_experiment_header

CASES = (
    # (N, l1, l2) with l1 <= N/10, chosen so M spans ~5 to ~50.
    (2000, 200, 50),
    (2000, 200, 200),
    (5000, 500, 250),
    (5000, 500, 500),
)
TRIALS = 400


def _undershoot_rate(n, l1, l2, rng):
    m_expected = expected_intersection(l1, l2, n)
    b1 = set(range(1, l1 + 1))
    hits = 0
    for __ in range(TRIALS):
        b2 = rng.sample(range(1, n + 1), l2)
        if len(b1.intersection(b2)) <= m_expected / 2:
            hits += 1
    return hits / TRIALS, m_expected


def test_e13_lemma51_concentration(benchmark):
    print_experiment_header(
        "E13", "Lemma 5.1: Pr[|B1 ∩ B2| <= M/2] < e^(-M/10)"
    )
    rng = random.Random(99)
    rows = []
    for n, l1, l2 in CASES:
        rate, m_expected = _undershoot_rate(n, l1, l2, rng)
        envelope = lemma51_bound(m_expected)
        rows.append((n, l1, l2, m_expected, rate, envelope))
        assert rate <= envelope + 0.05, (
            f"N={n}, l1={l1}, l2={l2}: empirical {rate} exceeds "
            f"envelope {envelope}"
        )
    print(
        format_table(
            ("N", "l1", "l2", "M = l1*l2/N",
             f"empirical Pr (n={TRIALS})", "e^(-M/10)"),
            rows,
        )
    )
    # Also verify the expectation itself (the easy half of the lemma).
    sizes = [
        len(set(range(1, 201)).intersection(rng.sample(range(1, 2001), 200)))
        for __ in range(TRIALS)
    ]
    assert statistics.fmean(sizes) == pytest.approx(20.0, rel=0.15)

    def run():
        sampler = random.Random(1)
        b1 = set(range(1, 201))
        return len(b1.intersection(sampler.sample(range(1, 2001), 200)))

    benchmark(run)
