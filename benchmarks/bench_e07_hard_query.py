"""E7 — Theorem 7.1: the query Q AND NOT Q costs Theta(N).

The extreme negative correlation of the self-negated pair forces every
correct algorithm to touch a linear fraction of the database: A0's
match depth is exactly ceil((N+k)/2), the naive scan pays 2N, and even
the negation-aware single-list scan pays N — all linear, as the
theorem proves unavoidable.
"""

from repro.algorithms.fa import FaginA0
from repro.algorithms.hard_query import SelfNegatedScan, hard_query_depth
from repro.algorithms.naive import NaiveAlgorithm
from repro.analysis.bounds import hard_query_lower_bound
from repro.analysis.fitting import fit_power_law
from repro.analysis.tables import format_table
from repro.core.tnorms import MINIMUM
from repro.workloads.correlated import hard_query_database

from conftest import print_experiment_header

NS = (250, 500, 1000, 2000, 4000)


def test_e07_hard_query_linear(benchmark):
    print_experiment_header(
        "E7",
        "Q AND NOT Q is provably hard: every algorithm pays Theta(N) "
        "(Theorem 7.1)",
    )
    rows, a0_costs = [], []
    for n in NS:
        db = hard_query_database(n, seed=n)
        a0 = FaginA0().top_k(db.session(), MINIMUM, 1)
        naive = NaiveAlgorithm().top_k(db.session(), MINIMUM, 1)
        scan = SelfNegatedScan().top_k(db.session(), MINIMUM, 1)
        a0_costs.append(a0.stats.sum_cost)
        assert a0.details["T"] == hard_query_depth(n, 1)
        assert scan.stats.sum_cost >= hard_query_lower_bound(n)
        rows.append(
            (
                n,
                a0.stats.sum_cost,
                naive.stats.sum_cost,
                scan.stats.sum_cost,
                a0.stats.sum_cost / n,
            )
        )
    fit = fit_power_law(NS, a0_costs)
    print(
        format_table(
            ("N", "A0 S+R", "naive S+R", "negation-aware scan", "A0 cost/N"),
            rows,
            title="\ntop-1 on the self-negated pair (fully fuzzy Q)",
        )
    )
    print(f"A0 growth exponent on the hard query: {fit.exponent:.3f} (linear = 1.0)")
    assert fit.exponent > 0.9  # linear, not sqrt

    db = hard_query_database(4000, seed=0)

    def run():
        return SelfNegatedScan().top_k(db.session(), MINIMUM, 1)

    benchmark(run)
